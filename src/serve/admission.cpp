#include "serve/admission.hpp"

#include <algorithm>
#include <cmath>

namespace nacu::serve {
namespace {

std::size_t limit_for(double fraction, std::size_t capacity) {
  const double clamped = std::clamp(fraction, 0.0, 1.0);
  const auto limit = static_cast<std::size_t>(
      std::floor(clamped * static_cast<double>(capacity)));
  // A priority class can be throttled hard but never configured out: one
  // slot always remains, so a lone best-effort request on an idle server
  // is admitted no matter the fraction.
  return std::max<std::size_t>(1, limit);
}

}  // namespace

AdmissionController::AdmissionController(AdmissionOptions options,
                                         std::size_t shard_capacity)
    : options_{std::move(options)},
      shard_capacity_{std::max<std::size_t>(1, shard_capacity)} {
  limits_[static_cast<std::size_t>(Priority::High)] =
      limit_for(options_.high_depth_fraction, shard_capacity_);
  limits_[static_cast<std::size_t>(Priority::Normal)] =
      limit_for(options_.normal_depth_fraction, shard_capacity_);
  limits_[static_cast<std::size_t>(Priority::BestEffort)] =
      limit_for(options_.best_effort_depth_fraction, shard_capacity_);
  for (const auto& [tenant, quota] : options_.quotas) {
    buckets_[tenant] = TokenBucket{quota, now()};  // buckets start full
  }
}

std::chrono::steady_clock::time_point AdmissionController::now() const {
  return options_.clock ? options_.clock() : std::chrono::steady_clock::now();
}

AdmissionController::Verdict AdmissionController::preadmit(
    const SubmitOptions& options) {
  // Deadline first: an already-expired request must never consume a
  // quota token — it could not have been served at any load.
  const bool needs_clock = options.deadline.has_value() || !buckets_.empty();
  if (!needs_clock) {
    return Verdict::Admit;  // the common unmetered, undeadlined fast path
  }
  const auto at = now();
  if (options.deadline.has_value() && *options.deadline <= at) {
    return Verdict::RejectDeadline;
  }
  if (!buckets_.empty()) {
    const std::lock_guard<std::mutex> lock{mutex_};
    const auto it = buckets_.find(options.tenant);
    if (it != buckets_.end() && !it->second.try_draw(at)) {
      return Verdict::RejectQuota;
    }
  }
  return Verdict::Admit;
}

}  // namespace nacu::serve
