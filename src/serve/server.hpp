// Sharded asynchronous inference server over the NACU batch engine.
//
// The missing piece between "a fast datapath" and "a system that serves
// traffic": many concurrent clients submit per-request work — an
// element-wise activation batch, a softmax row, a whole QuantizedMlp or
// LstmFixed forward pass — and get std::futures back. Where the first
// serving layer funnelled every submitter through one mutex into one
// dispatcher thread (the measured scaling ceiling: requests/s *fell* as
// clients grew), this server scales out:
//
//   * sharded ingress — N dispatcher shards, each owning a bounded MPSC
//     ShardQueue, its own core::BatchNacu engine, its own MicroBatcher,
//     and its own concat scratch. A cheap shard picker (round-robin with
//     per-thread affinity) sends each submitting thread to its home
//     shard, so S shards divide submission-lock contention by S; a full
//     home shard spills to the next before rejecting;
//   * work stealing — an idle shard steals the oldest queued ingress of
//     the most loaded neighbour, so one bursty client cannot strand work
//     behind a single dispatcher while others sit idle;
//   * admission control (admission.hpp) — priority classes with
//     per-class depth limits (best-effort sheds before high), deadline
//     checks at submit *and* dispatch (an expired request is never
//     executed), and per-tenant token-bucket quotas, all layered above
//     the exact OverloadedError backpressure.
//
// Contracts, each proven by tests/test_serving.cpp and
// tests/test_admission.cpp:
//
//  * bit-identity — results equal direct BatchNacu/model calls raw-for-raw
//    no matter the shard count, the stealing schedule, or how requests
//    were coalesced into groups. Element-wise activations are concatenated
//    and sliced (position-independent by construction); softmax rows and
//    model passes run one engine call per request inside the group; every
//    shard's engine builds identical tables from the same scalar datapath;
//  * backpressure — at most queue_capacity requests sit accepted-but-
//    undispatched across all shards; past a priority's depth limit submit
//    throws OverloadedError and enqueues nothing (reject-with-error, never
//    silent drops or unbounded queues);
//  * graceful shutdown — shutdown() (and the destructor) stops admission
//    (further submits throw ShutdownError), drains every accepted request
//    across every shard, fulfils its future, then joins the dispatchers. A
//    returned future is therefore always eventually ready — deadline-shed
//    requests become ready with DeadlineExpiredError;
//  * per-request error isolation — a request with bad inputs (e.g. a Fixed
//    outside the datapath format) gets the exception on its own future; the
//    other requests of the same coalesced group still complete correctly;
//  * observability — per-stage obs:: metrics: serve.* admission counters
//    and latency histograms (log2 buckets give p50/p99 through
//    Registry::to_json()), serve.shard.* steal counters, and
//    serve.admission.* shed/quota counters.
#pragma once

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "serve/admission.hpp"
#include "serve/micro_batcher.hpp"
#include "serve/request.hpp"
#include "serve/shard_queue.hpp"

namespace nacu::serve {

struct ServerOptions {
  /// Micro-batching policy: group size, age-based flush, high-water mark.
  /// queue_capacity is the *total* backpressure bound; each shard's queue
  /// gets ceil(queue_capacity / shards).
  BatcherOptions batcher{};
  /// Engine knobs forwarded to every shard's core::BatchNacu (thread
  /// pool, kernel backend, table/parallel thresholds).
  core::BatchNacu::Options batch_options{};
  /// Build the σ/tanh/exp dense tables at construction (when the format is
  /// table-cacheable) so the first requests are not taxed with the lazy
  /// full-domain sweeps.
  bool warm_tables = true;
  /// Dispatcher shards. 1 (the default) reproduces the single-dispatcher
  /// behaviour exactly; 0 picks one shard per hardware thread, clamped to
  /// [1, 8].
  std::size_t shards = 1;
  /// Idle shards steal queued ingress from the most loaded neighbour.
  bool work_stealing = true;
  /// How often an idle shard re-polls neighbours for stealable work (it
  /// has no other wake-up source for work that never touches its queue).
  std::chrono::microseconds steal_poll{100};
  /// Priority depth limits, deadline policy, per-tenant quotas.
  AdmissionOptions admission{};
};

class InferenceServer {
 public:
  using Function = core::BatchNacu::Function;

  explicit InferenceServer(const core::NacuConfig& config,
                           ServerOptions options = {});
  ~InferenceServer();  ///< shutdown(): drains accepted work, then joins.

  InferenceServer(const InferenceServer&) = delete;
  InferenceServer& operator=(const InferenceServer&) = delete;

  /// Element-wise activation batch: future resolves to f(input) in order.
  /// Throws OverloadedError / ShutdownError / QuotaExceededError /
  /// DeadlineExpiredError instead of enqueueing.
  [[nodiscard]] std::future<std::vector<fp::Fixed>> submit(
      Function f, std::vector<fp::Fixed> input,
      const SubmitOptions& submit_options = {});

  /// One Eq. 13 softmax row over @p logits.
  [[nodiscard]] std::future<std::vector<fp::Fixed>> submit_softmax(
      std::vector<fp::Fixed> logits, const SubmitOptions& submit_options = {});

  /// Full forward pass: future resolves to model.predict_proba(input).
  /// @p model is borrowed — keep it alive until the future resolves.
  [[nodiscard]] std::future<std::vector<double>> submit_mlp(
      const nn::QuantizedMlp& model, std::vector<double> input,
      const SubmitOptions& submit_options = {});

  /// One LSTM cell step: future resolves to model.step(state, x).
  /// @p model is borrowed — keep it alive until the future resolves.
  [[nodiscard]] std::future<nn::LstmFixed::State> submit_lstm(
      const nn::LstmFixed& model, nn::LstmFixed::State state,
      std::vector<double> x, const SubmitOptions& submit_options = {});

  /// Stop admission, drain every accepted request across every shard,
  /// join the dispatchers. Idempotent and safe from several threads.
  void shutdown();

  /// Whether submissions are still admitted.
  [[nodiscard]] bool accepting() const;
  /// Requests accepted but not yet taken into a dispatch group, summed
  /// over all shards.
  [[nodiscard]] std::size_t pending() const;

  /// Shard 0's engine (all shards are configured identically and produce
  /// identical bits).
  [[nodiscard]] const core::BatchNacu& engine() const noexcept;
  [[nodiscard]] std::size_t shard_count() const noexcept {
    return shards_.size();
  }
  [[nodiscard]] const ServerOptions& options() const noexcept {
    return options_;
  }

  /// Per-server admission/completion tallies — unlike the obs:: registry
  /// these are always on and scoped to this instance, so tests can assert
  /// exact counts without toggling the global metrics switch. Invariant
  /// after shutdown(): accepted == completed, and
  /// accepted + rejected_* + shed_priority == submissions attempted.
  struct Counters {
    std::uint64_t accepted = 0;
    std::uint64_t rejected_overload = 0;  ///< full at the capacity limit
    std::uint64_t rejected_shutdown = 0;
    std::uint64_t rejected_quota = 0;     ///< tenant bucket empty
    std::uint64_t rejected_deadline = 0;  ///< expired already at submit
    std::uint64_t shed_priority = 0;  ///< full at a sub-capacity class limit
    std::uint64_t shed_deadline = 0;  ///< accepted, expired before dispatch
    std::uint64_t completed = 0;  ///< futures fulfilled (value or exception)
    std::uint64_t dispatches = 0;  ///< dispatch groups executed
    std::uint64_t steals = 0;          ///< successful steal operations
    std::uint64_t stolen_requests = 0;  ///< requests moved by stealing
  };
  [[nodiscard]] Counters counters() const;

 private:
  /// Everything one dispatcher shard owns. Engines are per-shard so group
  /// execution never shares mutable state across shards; configured
  /// identically, they produce identical bits by the dense-table
  /// construction argument.
  struct Shard {
    Shard(const core::NacuConfig& config,
          const core::BatchNacu::Options& batch_options,
          const BatcherOptions& batcher_options, std::size_t capacity);

    core::BatchNacu engine;
    ShardQueue queue;
    MicroBatcher batcher;  ///< dispatcher-private; fed by queue.drain_into

    /// Dispatcher-thread-only scratch for coalesced evaluation, reused
    /// across dispatch groups so the steady-state hot path allocates only
    /// the per-request result vectors.
    std::vector<fp::Fixed> scratch_in;
    std::vector<fp::Fixed> scratch_out;
    std::vector<std::size_t> scratch_members;

    std::thread dispatcher;  ///< started after every shard exists
  };

  /// Admission: preadmit (deadline/quota), stamp, then push into the home
  /// shard or — when it is full — probe the others once around. Returns
  /// the future tied to the enqueued promise; throws instead of enqueueing
  /// on any rejection.
  template <typename Result, typename Payload>
  [[nodiscard]] std::future<Result> enqueue(Payload payload,
                                            const SubmitOptions& submit_options);

  /// Round-robin with per-thread affinity: each submitting thread keeps
  /// hitting the same shard (its producer lock stays warm and uncontended
  /// until thread count exceeds shard count).
  [[nodiscard]] std::size_t home_shard() const noexcept;

  void dispatcher_loop(std::size_t shard_index);
  /// Steal from the most loaded other shard into @p shard_index's batcher.
  [[nodiscard]] bool try_steal(std::size_t shard_index);
  /// Execute one dispatch group on @p shard: shed expired deadlines,
  /// coalesce activations per function, run everything else per request,
  /// fulfil every promise exactly once.
  void execute_group(Shard& shard, std::vector<Request> group);
  /// Non-coalesced execution of one request (also the error-isolation
  /// fallback when a coalesced evaluation throws).
  void execute_one(Shard& shard, Request& request);
  /// Record completion metrics and the enqueue→complete latency.
  void finish(const Request& request);

  ServerOptions options_;
  AdmissionController admission_;
  std::size_t per_shard_capacity_ = 0;
  bool stamp_enqueue_time_ = false;  ///< max_wait > 0 needs the age stamp
  std::vector<std::unique_ptr<Shard>> shards_;

  std::atomic<bool> stopping_{false};
  std::once_flag join_once_;

  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> rejected_overload_{0};
  std::atomic<std::uint64_t> rejected_shutdown_{0};
  std::atomic<std::uint64_t> rejected_quota_{0};
  std::atomic<std::uint64_t> rejected_deadline_{0};
  std::atomic<std::uint64_t> shed_priority_{0};
  std::atomic<std::uint64_t> shed_deadline_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> dispatches_{0};
  std::atomic<std::uint64_t> steals_{0};
  std::atomic<std::uint64_t> stolen_requests_{0};
};

}  // namespace nacu::serve
