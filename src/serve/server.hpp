// Asynchronous inference server over the NACU batch engine.
//
// The missing piece between "a fast datapath" and "a system that serves
// traffic": many concurrent clients submit per-request work — an
// element-wise activation batch, a softmax row, a whole QuantizedMlp or
// LstmFixed forward pass — through a lock-guarded API and get
// std::futures back. A single dispatcher thread coalesces pending
// requests in a dynamic micro-batcher (flush on max_batch or max_wait_us,
// whichever fires first) and executes each dispatch group through the
// shared core::BatchNacu engine, whose dense-table/SIMD kernels and
// core::ThreadPool fan-out do the heavy lifting.
//
// Contracts, each proven by tests/test_serving.cpp:
//
//  * bit-identity — results equal direct BatchNacu/model calls raw-for-raw
//    no matter how requests were coalesced into groups. Element-wise
//    activations are concatenated and sliced (position-independent by
//    construction); softmax rows and model passes run one engine call per
//    request inside the group;
//  * backpressure — at most queue_capacity requests sit accepted-but-
//    undispatched; the next submit throws OverloadedError and enqueues
//    nothing (reject-with-error, never silent drops or unbounded queues);
//  * graceful shutdown — shutdown() (and the destructor) stops admission
//    (further submits throw ShutdownError), drains every accepted request,
//    fulfils its future, then joins the dispatcher. A returned future is
//    therefore always eventually ready;
//  * per-request error isolation — a request with bad inputs (e.g. a Fixed
//    outside the datapath format) gets the exception on its own future; the
//    other requests of the same coalesced group still complete correctly;
//  * observability — per-stage obs:: metrics: admission counters, queue
//    depth high-water, dispatch group size/element histograms, dispatch
//    execution time, and the enqueue→complete latency histogram whose
//    log2 buckets give p50/p99 through Registry::to_json().
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "serve/micro_batcher.hpp"
#include "serve/request.hpp"

namespace nacu::serve {

struct ServerOptions {
  /// Micro-batching policy: group size, age-based flush, high-water mark.
  BatcherOptions batcher{};
  /// Engine knobs forwarded to the owned core::BatchNacu (thread pool,
  /// kernel backend, table/parallel thresholds).
  core::BatchNacu::Options batch_options{};
  /// Build the σ/tanh/exp dense tables at construction (when the format is
  /// table-cacheable) so the first requests are not taxed with the lazy
  /// full-domain sweeps.
  bool warm_tables = true;
};

class InferenceServer {
 public:
  using Function = core::BatchNacu::Function;

  explicit InferenceServer(const core::NacuConfig& config,
                           ServerOptions options = {});
  ~InferenceServer();  ///< shutdown(): drains accepted work, then joins.

  InferenceServer(const InferenceServer&) = delete;
  InferenceServer& operator=(const InferenceServer&) = delete;

  /// Element-wise activation batch: future resolves to f(input) in order.
  /// Throws OverloadedError / ShutdownError instead of enqueueing.
  [[nodiscard]] std::future<std::vector<fp::Fixed>> submit(
      Function f, std::vector<fp::Fixed> input);

  /// One Eq. 13 softmax row over @p logits.
  [[nodiscard]] std::future<std::vector<fp::Fixed>> submit_softmax(
      std::vector<fp::Fixed> logits);

  /// Full forward pass: future resolves to model.predict_proba(input).
  /// @p model is borrowed — keep it alive until the future resolves.
  [[nodiscard]] std::future<std::vector<double>> submit_mlp(
      const nn::QuantizedMlp& model, std::vector<double> input);

  /// One LSTM cell step: future resolves to model.step(state, x).
  /// @p model is borrowed — keep it alive until the future resolves.
  [[nodiscard]] std::future<nn::LstmFixed::State> submit_lstm(
      const nn::LstmFixed& model, nn::LstmFixed::State state,
      std::vector<double> x);

  /// Stop admission, drain every accepted request, join the dispatcher.
  /// Idempotent and safe to call from several threads.
  void shutdown();

  /// Whether submissions are still admitted.
  [[nodiscard]] bool accepting() const;
  /// Requests accepted but not yet taken into a dispatch group.
  [[nodiscard]] std::size_t pending() const;

  [[nodiscard]] const core::BatchNacu& engine() const noexcept {
    return engine_;
  }
  [[nodiscard]] const ServerOptions& options() const noexcept {
    return options_;
  }

  /// Per-server admission/completion tallies — unlike the obs:: registry
  /// these are always on and scoped to this instance, so tests can assert
  /// exact counts without toggling the global metrics switch.
  struct Counters {
    std::uint64_t accepted = 0;
    std::uint64_t rejected_overload = 0;
    std::uint64_t rejected_shutdown = 0;
    std::uint64_t completed = 0;  ///< futures fulfilled (value or exception)
    std::uint64_t dispatches = 0;  ///< dispatch groups executed
  };
  [[nodiscard]] Counters counters() const;

 private:
  /// Admission: lock, reject on stop/high-water, stamp, enqueue, wake the
  /// dispatcher. Returns the future tied to the enqueued promise.
  template <typename Result, typename Payload>
  [[nodiscard]] std::future<Result> enqueue(Payload payload);

  void dispatcher_loop();
  /// Execute one dispatch group: coalesce activations per function, run
  /// everything else per request, fulfil every promise exactly once.
  void execute_group(std::vector<Request> group);
  /// Non-coalesced execution of one request (also the error-isolation
  /// fallback when a coalesced evaluation throws).
  void execute_one(Request& request);
  /// Record completion metrics and the enqueue→complete latency.
  void finish(const Request& request);

  core::BatchNacu engine_;
  ServerOptions options_;

  /// Dispatcher-thread-only scratch for coalesced evaluation, reused
  /// across dispatch groups so the steady-state hot path allocates only
  /// the per-request result vectors.
  std::vector<fp::Fixed> scratch_in_;
  std::vector<fp::Fixed> scratch_out_;
  std::vector<std::size_t> scratch_members_;

  mutable std::mutex mutex_;
  std::condition_variable work_ready_;
  MicroBatcher batcher_;
  bool stopping_ = false;
  std::once_flag join_once_;

  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> rejected_overload_{0};
  std::atomic<std::uint64_t> rejected_shutdown_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> dispatches_{0};

  std::thread dispatcher_;  ///< last member: started after all state exists
};

}  // namespace nacu::serve
