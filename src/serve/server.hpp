// Sharded asynchronous inference server over the NACU batch engine.
//
// The missing piece between "a fast datapath" and "a system that serves
// traffic": many concurrent clients submit per-request work — an
// element-wise activation batch, a softmax row, a whole QuantizedMlp or
// LstmFixed forward pass — and get std::futures back. Where the first
// serving layer funnelled every submitter through one mutex into one
// dispatcher thread (the measured scaling ceiling: requests/s *fell* as
// clients grew), this server scales out:
//
//   * sharded ingress — N dispatcher shards, each owning a bounded MPSC
//     ShardQueue, its own core::BatchNacu engine, its own MicroBatcher,
//     and its own concat scratch. A cheap shard picker (round-robin with
//     per-thread affinity) sends each submitting thread to its home
//     shard, so S shards divide submission-lock contention by S; a full
//     home shard spills to the next before rejecting;
//   * work stealing — an idle shard steals the oldest queued ingress of
//     the most loaded neighbour, so one bursty client cannot strand work
//     behind a single dispatcher while others sit idle;
//   * admission control (admission.hpp) — priority classes with
//     per-class depth limits (best-effort sheds before high), deadline
//     checks at submit *and* dispatch (an expired request is never
//     executed), and per-tenant token-bucket quotas, all layered above
//     the exact OverloadedError backpressure;
//   * self-healing (resilience.hpp) — per-shard supervision with
//     heartbeat watchdog, crash respawn and stall redistribution;
//     per-shard circuit breaking that routes traffic away from unhealthy
//     shards; budgeted transparent retries and tail-latency hedging; and
//     live SEU scrub-and-recover: with a fault port armed, every
//     table-path result is parity-verified before release, a detection
//     quarantines the function onto the bit-identical scalar path while
//     the supervisor scrub-rebuilds the table off the hot path.
//
// Contracts, each proven by tests/test_serving.cpp, tests/
// test_admission.cpp, and tests/test_resilience.cpp:
//
//  * bit-identity — results equal direct BatchNacu/model calls raw-for-raw
//    no matter the shard count, the stealing schedule, how requests were
//    coalesced into groups, whether a retry or hedge copy won, or whether
//    the serving path was quarantined down to the scalar unit. Every
//    shard's engine builds identical tables from the same scalar datapath,
//    and the scalar datapath *is* the table's source — so every schedule
//    and every degradation yields the same bits;
//  * backpressure — at most queue_capacity requests sit accepted-but-
//    undispatched across all shards; past a priority's depth limit submit
//    throws OverloadedError and enqueues nothing (reject-with-error, never
//    silent drops or unbounded queues);
//  * graceful shutdown — shutdown() (and the destructor) stops admission
//    (further submits throw ShutdownError), drains every accepted request
//    across every shard, fulfils its future, then joins the dispatchers. A
//    returned future is therefore always eventually ready — deadline-shed
//    requests become ready with DeadlineExpiredError, requests orphaned by
//    a shard failure with no retry credit with ShardFailedError;
//  * per-request error isolation — a request with bad inputs (e.g. a Fixed
//    outside the datapath format) gets the exception on its own future; the
//    other requests of the same coalesced group still complete correctly;
//  * observability — per-stage obs:: metrics: serve.* admission counters
//    and latency histograms (log2 buckets give p50/p99 through
//    Registry::to_json()), serve.shard.* steal counters, serve.admission.*
//    shed/quota counters, and serve.resilience.* detection/recovery
//    counters.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "serve/admission.hpp"
#include "serve/micro_batcher.hpp"
#include "serve/request.hpp"
#include "serve/resilience.hpp"
#include "serve/shard_queue.hpp"

namespace nacu::serve {

struct ServerOptions {
  /// Micro-batching policy: group size, age-based flush, high-water mark.
  /// queue_capacity is the *total* backpressure bound; each shard's queue
  /// gets ceil(queue_capacity / shards).
  BatcherOptions batcher{};
  /// Engine knobs forwarded to every shard's core::BatchNacu (thread
  /// pool, kernel backend, table/parallel thresholds, table layout mode
  /// and cache budget). Every shard shares one policy; with the default
  /// TableMode::Auto the shards' σ/tanh tables come up half-range and
  /// collapse to the PWL form only once the process-wide working set
  /// (live_table_bytes, exported as serve.table.resident_bytes) crosses
  /// cache_budget_bytes.
  core::BatchNacu::Options batch_options{};
  /// Build the σ/tanh/exp activation tables at construction (when the
  /// format is table-cacheable) so the first requests are not taxed with
  /// the lazy full-domain sweeps.
  bool warm_tables = true;
  /// Dispatcher shards. 1 (the default) reproduces the single-dispatcher
  /// behaviour exactly; 0 picks one shard per hardware thread, clamped to
  /// [1, 8].
  std::size_t shards = 1;
  /// Idle shards steal queued ingress from the most loaded neighbour.
  bool work_stealing = true;
  /// How often an idle shard re-polls neighbours for stealable work (it
  /// has no other wake-up source for work that never touches its queue).
  std::chrono::microseconds steal_poll{100};
  /// Priority depth limits, deadline policy, per-tenant quotas.
  AdmissionOptions admission{};
  /// Supervision, circuit breaking, retry/hedge budgets, live SEU
  /// verification (resilience.hpp).
  ResilienceOptions resilience{};
  /// The serving layer's single time source (empty = steady_clock). Every
  /// time read in the layer — the enqueued_at stamp, the max_wait flush
  /// check, dispatch-time deadline shedding, the completion-latency
  /// histogram, circuit cooldowns, hedge fire times — goes through this
  /// one seam: at construction it is propagated into admission.clock and
  /// resilience.clock wherever those are unset, so injecting a fake clock
  /// here puts the whole layer on fake time. (Before this seam existed,
  /// the flush and latency paths read steady_clock directly and were
  /// silently exempt from the fake-clock test discipline.)
  std::function<std::chrono::steady_clock::time_point()> clock{};
};

class InferenceServer {
 public:
  using Function = core::BatchNacu::Function;

  explicit InferenceServer(const core::NacuConfig& config,
                           ServerOptions options = {});
  ~InferenceServer();  ///< shutdown(): drains accepted work, then joins.

  InferenceServer(const InferenceServer&) = delete;
  InferenceServer& operator=(const InferenceServer&) = delete;

  /// Element-wise activation batch: future resolves to f(input) in order.
  /// Throws OverloadedError / ShutdownError / QuotaExceededError /
  /// DeadlineExpiredError instead of enqueueing.
  [[nodiscard]] std::future<std::vector<fp::Fixed>> submit(
      Function f, std::vector<fp::Fixed> input,
      const SubmitOptions& submit_options = {});

  /// One Eq. 13 softmax row over @p logits.
  [[nodiscard]] std::future<std::vector<fp::Fixed>> submit_softmax(
      std::vector<fp::Fixed> logits, const SubmitOptions& submit_options = {});

  /// Full forward pass: future resolves to model.predict_proba(input).
  /// @p model is borrowed — keep it alive until the future resolves.
  [[nodiscard]] std::future<std::vector<double>> submit_mlp(
      const nn::QuantizedMlp& model, std::vector<double> input,
      const SubmitOptions& submit_options = {});

  /// One LSTM cell step: future resolves to model.step(state, x).
  /// @p model is borrowed — keep it alive until the future resolves.
  [[nodiscard]] std::future<nn::LstmFixed::State> submit_lstm(
      const nn::LstmFixed& model, nn::LstmFixed::State state,
      std::vector<double> x, const SubmitOptions& submit_options = {});

  /// Stop admission, drain every accepted request across every shard,
  /// join the supervisor and dispatchers, fail-or-finish any orphans.
  /// Idempotent and safe from several threads.
  void shutdown();

  /// Whether submissions are still admitted.
  [[nodiscard]] bool accepting() const;
  /// Requests accepted but not yet taken into a dispatch group, summed
  /// over all shards.
  [[nodiscard]] std::size_t pending() const;

  /// Shard 0's engine (all shards are configured identically and produce
  /// identical bits).
  [[nodiscard]] const core::BatchNacu& engine() const noexcept;
  [[nodiscard]] std::size_t shard_count() const noexcept {
    return shards_.size();
  }
  [[nodiscard]] const ServerOptions& options() const noexcept {
    return options_;
  }

  /// Now on the serving clock (ServerOptions::clock, steady_clock when
  /// unset). Request stamping, flush ageing, and latency accounting all
  /// read this; admission_.now() and resilience_now() agree with it by
  /// the propagation in ServerOptions::clock's contract.
  [[nodiscard]] std::chrono::steady_clock::time_point now() const {
    return options_.clock ? options_.clock()
                          : std::chrono::steady_clock::now();
  }

  /// Run one supervisor pass now, on the resilience clock: recover dead
  /// dispatchers, detect stalls, perform requested scrubs, advance circuit
  /// cooldowns, fire due hedges. The watchdog thread calls this on its
  /// interval; fake-clock tests (and the chaos bench) call it directly for
  /// deterministic recovery. Serialised against the watchdog; a no-op
  /// once shutdown has begun.
  void poke_supervisor();

  /// Point-in-time health of shard @p shard_index.
  [[nodiscard]] ShardHealthSnapshot shard_health(std::size_t shard_index) const;

  /// Per-server admission/completion tallies — unlike the obs:: registry
  /// these are always on and scoped to this instance, so tests can assert
  /// exact counts without toggling the global metrics switch. Invariant
  /// after shutdown(): accepted == completed (hedge copies are not client
  /// work and count toward neither), and
  /// accepted + rejected_* + shed_priority == submissions attempted.
  struct Counters {
    std::uint64_t accepted = 0;
    std::uint64_t rejected_overload = 0;  ///< full at the capacity limit
    std::uint64_t rejected_shutdown = 0;
    std::uint64_t rejected_quota = 0;     ///< tenant bucket empty
    std::uint64_t rejected_deadline = 0;  ///< expired already at submit
    std::uint64_t shed_priority = 0;  ///< full at a sub-capacity class limit
    std::uint64_t shed_deadline = 0;  ///< accepted, expired before dispatch
    std::uint64_t completed = 0;  ///< futures fulfilled (value or exception)
    std::uint64_t dispatches = 0;  ///< dispatch groups executed
    std::uint64_t steals = 0;          ///< successful steal operations
    std::uint64_t stolen_requests = 0;  ///< requests moved by stealing
    // Resilience (serve/resilience.hpp):
    std::uint64_t detections = 0;  ///< verify-before-release parity hits
    std::uint64_t degraded_requests = 0;  ///< served on the scalar path
    std::uint64_t scrubs = 0;           ///< successful scrub-and-reverify
    std::uint64_t scrub_failures = 0;   ///< table still corrupt after scrub
    std::uint64_t respawns = 0;  ///< dispatcher threads rebuilt after death
    std::uint64_t stalls = 0;    ///< frozen-heartbeat redistributions
    std::uint64_t retried = 0;   ///< transparent requeues after shard loss
    std::uint64_t retry_exhausted = 0;  ///< futures failed ShardFailedError
    std::uint64_t hedges = 0;      ///< duplicate dispatches launched
    std::uint64_t hedge_wins = 0;  ///< races won by the hedge copy
    std::uint64_t circuit_opens = 0;
    std::uint64_t circuit_closes = 0;
  };
  [[nodiscard]] Counters counters() const;

 private:
  /// Propagate ServerOptions::clock into admission.clock and
  /// resilience.clock wherever those are unset, so one injected clock
  /// covers the whole layer (a sub-option clock set explicitly still
  /// wins). Runs before any member reads options_.
  [[nodiscard]] static ServerOptions normalize(ServerOptions options);

  /// Everything one dispatcher shard owns. Engines are per-shard so group
  /// execution never shares mutable state across shards; configured
  /// identically, they produce identical bits by the dense-table
  /// construction argument. The engine lives behind a unique_ptr so the
  /// supervisor can rebuild it wholesale after a dispatcher death.
  struct Shard {
    Shard(const core::NacuConfig& config,
          const core::BatchNacu::Options& batch_options,
          const BatcherOptions& batcher_options, std::size_t capacity);

    std::unique_ptr<core::BatchNacu> engine;
    ShardQueue queue;
    MicroBatcher batcher;  ///< dispatcher-private; fed by queue.drain_into

    ShardHealth health;
    /// Fault port re-attached to every rebuilt engine (nullptr = unarmed).
    fault::BitFaultPort* fault_port = nullptr;
    /// Parity-verify every table-path dispatch before release (armed port
    /// or ResilienceOptions::verify_dispatches, and a cacheable format).
    bool verify = false;
    /// Dispatcher-thread-only: detections in the current dispatch group,
    /// used to decide record_success at group end.
    std::uint64_t group_detections = 0;

    /// Dispatcher-thread-only scratch for coalesced evaluation, reused
    /// across dispatch groups so the steady-state hot path allocates only
    /// the per-request result vectors.
    std::vector<fp::Fixed> scratch_in;
    std::vector<fp::Fixed> scratch_out;
    std::vector<std::size_t> scratch_members;

    std::thread dispatcher;  ///< started after every shard exists
  };

  /// A supervisor-armed duplicate dispatch waiting for its fire time.
  struct PendingHedge {
    std::chrono::steady_clock::time_point fire_at{};
    std::size_t origin = 0;  ///< shard the original was accepted into
    Request request;         ///< hedge_copy = true, shares the SharedResult
  };

  /// Admission: preadmit (deadline/quota), stamp, then push into the home
  /// shard or — when it is full — probe the others once around, skipping
  /// shards whose circuit refuses (falling back to ignoring circuit state
  /// when every healthy shard is full — fail-static). Returns the future
  /// tied to the enqueued promise; throws instead of enqueueing on any
  /// rejection.
  template <typename Result, typename Payload>
  [[nodiscard]] std::future<Result> enqueue(Payload payload,
                                            const SubmitOptions& submit_options);

  /// Round-robin with per-thread affinity: each submitting thread keeps
  /// hitting the same shard (its producer lock stays warm and uncontended
  /// until thread count exceeds shard count).
  [[nodiscard]] std::size_t home_shard() const noexcept;

  /// Now on the resilience clock (injected fake in tests, steady_clock
  /// otherwise). Circuit cooldowns, stall timing, hedge fire times, and
  /// the retry budget all read this clock.
  [[nodiscard]] std::chrono::steady_clock::time_point resilience_now() const;

  /// Crash barrier around dispatcher_run: an escaped exception marks the
  /// shard dead for the supervisor instead of terminating the process.
  void dispatcher_loop(std::size_t shard_index);
  void dispatcher_run(std::size_t shard_index);
  /// Steal from the most loaded other shard into @p shard_index's batcher.
  [[nodiscard]] bool try_steal(std::size_t shard_index);
  /// Execute one dispatch group on @p shard: shed expired deadlines,
  /// coalesce activations per function, run everything else per request,
  /// verify table-path results when armed, fulfil every promise exactly
  /// once (first completed copy wins).
  void execute_group(Shard& shard, std::vector<Request> group);
  /// Non-coalesced execution of one request (also the error-isolation
  /// fallback when a coalesced evaluation throws).
  void execute_one(Shard& shard, Request& request);
  /// A verify-before-release check failed on @p shard: quarantine the
  /// function, request a scrub, record the failure against the circuit.
  void on_detection(Shard& shard, std::size_t function_index);
  /// Record completion metrics and the enqueue→complete latency. Hedge
  /// copies are not client work — they are skipped entirely.
  void finish(const Request& request);

  // -- supervisor (watchdog thread or poke_supervisor) ---------------------
  void supervisor_loop();
  /// One pass; caller holds supervisor_mutex_.
  void supervisor_pass(std::chrono::steady_clock::time_point now);
  /// Join a dead dispatcher, sweep its orphans, rebuild its engine,
  /// respawn the thread, requeue-or-fail the orphans.
  void recover_dead_shard(std::size_t shard_index,
                          std::chrono::steady_clock::time_point now);
  /// Scrub-rebuild every quarantined table of @p shard_index, re-verify
  /// through the armed read path, clear quarantine / close the circuit on
  /// success; keep stuck-at functions quarantined (still serving, scalar).
  void scrub_shard(std::size_t shard_index,
                   std::chrono::steady_clock::time_point now);
  /// Launch hedge copies whose fire time has passed (budget-capped, to a
  /// healthy non-origin shard); drop hedges whose original completed.
  void fire_due_hedges(std::chrono::steady_clock::time_point now);
  /// Transparently re-enqueue an orphaned request if it has retry credit
  /// and the budget admits; otherwise fail its future (ShardFailedError).
  /// Hedge copies are silently dropped.
  void requeue_or_fail(Request&& request);
  /// Post-join shutdown sweep: fail-or-finish anything a dead shard left
  /// behind, drop pending hedges.
  void sweep_leftovers();

  ServerOptions options_;
  core::NacuConfig config_;  ///< kept for supervisor engine rebuilds
  AdmissionController admission_;
  std::size_t per_shard_capacity_ = 0;
  bool stamp_enqueue_time_ = false;  ///< max_wait > 0 needs the age stamp
  std::vector<std::unique_ptr<Shard>> shards_;

  /// Golden parity signatures + calibrated ranges shared by every shard's
  /// verify path (read-only after construction). Built only when some
  /// shard verifies and the format is table-cacheable.
  std::unique_ptr<fault::InvariantChecker> checker_;
  std::unique_ptr<RetryBudget> retry_budget_;

  std::thread supervisor_;
  std::mutex supervisor_mutex_;  ///< serialises passes (watchdog vs poke)
  std::mutex supervisor_wake_mutex_;
  std::condition_variable supervisor_wake_;
  /// Supervisor-pass state (guarded by supervisor_mutex_): last observed
  /// heartbeat and when it last advanced, per shard.
  std::vector<std::uint64_t> last_heartbeat_;
  std::vector<std::chrono::steady_clock::time_point> last_progress_;

  std::mutex hedges_mutex_;
  std::vector<PendingHedge> hedges_;

  std::atomic<bool> stopping_{false};
  std::once_flag join_once_;

  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> rejected_overload_{0};
  std::atomic<std::uint64_t> rejected_shutdown_{0};
  std::atomic<std::uint64_t> rejected_quota_{0};
  std::atomic<std::uint64_t> rejected_deadline_{0};
  std::atomic<std::uint64_t> shed_priority_{0};
  std::atomic<std::uint64_t> shed_deadline_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> dispatches_{0};
  std::atomic<std::uint64_t> steals_{0};
  std::atomic<std::uint64_t> stolen_requests_{0};
  std::atomic<std::uint64_t> detections_{0};
  std::atomic<std::uint64_t> degraded_requests_{0};
  std::atomic<std::uint64_t> scrubs_{0};
  std::atomic<std::uint64_t> scrub_failures_{0};
  std::atomic<std::uint64_t> respawns_{0};
  std::atomic<std::uint64_t> stalls_{0};
  std::atomic<std::uint64_t> retried_{0};
  std::atomic<std::uint64_t> retry_exhausted_{0};
  std::atomic<std::uint64_t> hedges_launched_{0};
  std::atomic<std::uint64_t> hedge_wins_{0};
  std::atomic<std::uint64_t> circuit_opens_{0};
  std::atomic<std::uint64_t> circuit_closes_{0};
};

}  // namespace nacu::serve
