#include "serve/micro_batcher.hpp"

#include <algorithm>
#include <utility>

namespace nacu::serve {

MicroBatcher::MicroBatcher(BatcherOptions options) : options_{options} {
  options_.max_batch = std::max<std::size_t>(1, options_.max_batch);
  options_.queue_capacity = std::max<std::size_t>(1, options_.queue_capacity);
  if (options_.max_wait.count() < 0) {
    options_.max_wait = std::chrono::microseconds{0};
  }
}

void MicroBatcher::push(Request request) {
  pending_.push_back(std::move(request));
}

bool MicroBatcher::should_flush(
    std::chrono::steady_clock::time_point now) const noexcept {
  if (pending_.empty()) {
    return false;
  }
  if (pending_.size() >= options_.max_batch) {
    return true;
  }
  return now - pending_.front().enqueued_at >= options_.max_wait;
}

std::optional<std::chrono::steady_clock::time_point>
MicroBatcher::flush_deadline() const {
  if (pending_.empty()) {
    return std::nullopt;
  }
  return pending_.front().enqueued_at + options_.max_wait;
}

std::vector<Request> MicroBatcher::take_group() {
  const std::size_t count = std::min(pending_.size(), options_.max_batch);
  std::vector<Request> group;
  group.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    group.push_back(std::move(pending_.front()));
    pending_.pop_front();
  }
  return group;
}

}  // namespace nacu::serve
