// Cycle-accurate softmax engine (paper §V.B + Eq. 13).
//
// Sequences the full hardware softmax over one NACU pipeline:
//   phase 1  streaming max search over the logits (one compare per cycle),
//   phase 2  stream x_i − x_max into the exp pipeline (one issue per
//            cycle); as each e_i retires it is stored and MAC-accumulated
//            into the denominator register — the dual use of the
//            multiply-add the paper describes,
//   phase 3  stream each e_i through the pipelined divider against the
//            accumulated denominator (one issue per cycle).
//
// The probabilities are bit-identical to core::Nacu::softmax (tested); the
// cycle count is what the paper's throughput discussion (§VII.C pipeline
// fill) translates to for a softmax of N classes.
#pragma once

#include <cstdint>
#include <vector>

#include "core/batch_nacu.hpp"
#include "hwmodel/nacu_rtl.hpp"

namespace nacu::hw {

class SoftmaxEngine {
 public:
  explicit SoftmaxEngine(const core::NacuConfig& config);

  struct Result {
    std::vector<std::int64_t> probs_raw;  ///< datapath-format probabilities
    std::uint64_t cycles = 0;             ///< total engine cycles
    std::uint64_t max_phase_cycles = 0;
    std::uint64_t exp_phase_cycles = 0;
    std::uint64_t divide_phase_cycles = 0;
  };

  /// Run one softmax over @p logits_raw (datapath-format raw values).
  [[nodiscard]] Result run(const std::vector<std::int64_t>& logits_raw);

  /// Value-only softmax through the batched engine (core::BatchNacu):
  /// bit-identical probabilities to run().probs_raw with no cycle
  /// simulation — the path bulk consumers (CGRA inference accuracy sweeps)
  /// take when they only need numbers, not timing.
  [[nodiscard]] std::vector<std::int64_t> values(
      const std::vector<std::int64_t>& logits_raw) const;

  [[nodiscard]] const core::Nacu& unit() const noexcept {
    return rtl_.unit();
  }
  [[nodiscard]] const core::BatchNacu& batch_unit() const noexcept {
    return batch_;
  }

 private:
  core::NacuConfig config_;
  NacuRtl rtl_;
  core::BatchNacu batch_;
};

}  // namespace nacu::hw
