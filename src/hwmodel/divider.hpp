// Restoring division — the pipelined divider that dominates NACU's area
// (paper §VII: "The area of NACU is dominated by a pipelined divider").
//
// `restoring_divide` is the bit-level reference algorithm (one
// conditional-subtract per quotient bit, exactly what each pipeline stage's
// hardware row does). `PipelinedDivider` spreads those rows across a
// configurable number of stages and accepts one operation per cycle — the
// throughput the paper buys with the divider's area.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "hwmodel/sim.hpp"

namespace nacu::hw {

/// Bit-serial restoring division: floor(numerator / denominator) for
/// non-negative numerator, positive denominator. Matches built-in integer
/// division exactly (tested); exists to mirror the hardware row-by-row.
///
/// A zero denominator does what the gates do, not what C++ does: every
/// conditional subtract of 0 "fits", so every quotient bit comes out 1 and
/// the result saturates to all-ones over @p quotient_bits. No trap, no UB —
/// the same saturating answer a real divider array would produce (tested).
[[nodiscard]] std::uint64_t restoring_divide(std::uint64_t numerator,
                                             std::uint64_t denominator,
                                             int quotient_bits) noexcept;

/// Number of quotient bits needed for numerator < 2^n_bits.
[[nodiscard]] int quotient_bits_for(std::uint64_t numerator) noexcept;

class PipelinedDivider final : public Module {
 public:
  struct Result {
    std::uint64_t quotient = 0;
    std::uint64_t tag = 0;  ///< issue tag, for matching against inputs
  };

  /// @p quotient_bits total bits produced per op, spread over @p stages.
  PipelinedDivider(int quotient_bits, int stages);

  /// Present a new operand pair this cycle (at most one per cycle).
  /// Throws std::domain_error on a zero denominator — the module models a
  /// datapath whose control logic is required to never issue x/0 (NACU's
  /// Eq. 14 denominator σ(−x) is clamped positive upstream); the check
  /// turns a protocol violation into a loud failure instead of the silent
  /// all-ones word restoring_divide would return.
  void issue(std::uint64_t numerator, std::uint64_t denominator,
             std::uint64_t tag);

  void tick() override;
  [[nodiscard]] std::string name() const override { return "pipe_divider"; }

  /// Result emerging this cycle, if any.
  [[nodiscard]] std::optional<Result> output() const;

  [[nodiscard]] int stages() const noexcept {
    return static_cast<int>(stage_regs_.size());
  }
  [[nodiscard]] int latency() const noexcept { return stages(); }

 private:
  struct StageState {
    bool valid = false;
    std::uint64_t remainder = 0;
    std::uint64_t numerator = 0;   ///< unconsumed numerator bits
    std::uint64_t denominator = 0;
    std::uint64_t quotient = 0;
    int bits_done = 0;
    std::uint64_t tag = 0;
  };

  /// Run this stage's share of conditional-subtract rows.
  [[nodiscard]] StageState advance(StageState state, int bits) const;

  int quotient_bits_;
  int bits_per_stage_;
  std::vector<Reg<StageState>> stage_regs_;
  StageState input_;  ///< operand presented for the next edge
  bool input_valid_ = false;
};

}  // namespace nacu::hw
