// Cycle-accurate NACU pipeline (paper Fig. 2), RTL-faithful structure:
//
//   S1  input register, magnitude, σ-LUT segment select (tanh: at 2|x|)
//   S2  Fig. 3 coefficient/bias morphing + multiplier
//   S3  adder + output rounding  → σ and tanh retire here (3-cycle latency)
//   D1..Dk  pipelined restoring divider (k = divider_stages, default 4)
//   DEC decrementor (Fig. 3b wiring) + output quantisation
//                                     → exp retires here (3+k+1 = 8 cycles)
//
// One operation can be issued per cycle; σ/tanh and exp flows share S1–S3
// exactly as the real unit shares its multiply-add. Numerical behaviour is
// bit-identical to core::Nacu (tested exhaustively): both sides call the
// same LUT, the same Fig. 3 units, and the same quantisation points.
//
// When NacuConfig::approximate_reciprocal is set (the §VIII future-work
// divider), the divider stages disappear: a completed σ(−x) re-enters
// S1–S3 as a reciprocal pass (leading-one detect → PWL (m,q) lookup →
// the same multiply-add), then hits DEC — 3+3+1 = 7-cycle exp latency.
// The re-entry occupies the S1 issue slot; an external issue in that cycle
// is a structural hazard and throws (a real sequencer would stall).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/nacu.hpp"
#include "hwmodel/divider.hpp"
#include "hwmodel/sim.hpp"

namespace nacu::hw {

enum class Func { Sigmoid, Tanh, Exp };

class NacuRtl final : public Module {
 public:
  struct Output {
    Func func = Func::Sigmoid;
    std::uint64_t tag = 0;
    std::int64_t value_raw = 0;
  };

  explicit NacuRtl(const core::NacuConfig& config);
  /// Same pipeline wrapped around a copy of an already-constructed unit —
  /// skips the LUT refit (fault campaigns build thousands of pipelines).
  explicit NacuRtl(core::Nacu unit);

  /// Present one operation for the next clock edge (at most one per cycle).
  void issue(Func func, fp::Fixed x, std::uint64_t tag);

  void tick() override;
  [[nodiscard]] std::string name() const override { return "nacu_rtl"; }

  /// Results that retired on the last edge (σ/tanh port and exp port can
  /// both fire in the same cycle).
  [[nodiscard]] const std::vector<Output>& outputs() const noexcept {
    return retired_;
  }

  /// Issue-to-retire latency in cycles: 3 for σ/tanh, 3 + stages + 1 for exp
  /// (the paper's "3, 3, 8" Table I row with 4 divider stages).
  [[nodiscard]] int latency(Func func) const noexcept;

  [[nodiscard]] const core::Nacu& unit() const noexcept { return unit_; }
  [[nodiscard]] fp::Format format() const noexcept { return unit_.format(); }

  /// Total bit toggles observed in the S1–S3 stage registers since
  /// construction — the switching activity a post-layout power simulation
  /// would annotate (paper §VII: power numbers from simulation). Divide by
  /// (cycles × register bits) for an activity factor.
  [[nodiscard]] std::uint64_t register_toggles() const noexcept {
    return register_toggles_;
  }
  [[nodiscard]] std::uint64_t cycles() const noexcept { return cycles_; }

  /// Convenience: run one operation to completion on a private clock and
  /// return (value, cycles-taken). Used by tests and latency benches.
  struct SingleResult {
    fp::Fixed value;
    int cycles;
  };
  [[nodiscard]] SingleResult run_single(Func func, fp::Fixed x);

  /// Fault injection (fault/fault_port.hpp, surface RtlPipeline): every
  /// clock edge, the value written into each S1–S3 stage-register datapath
  /// field passes through @p port. Word addressing is stage-major:
  ///   word = stage * 4 + field,  stage ∈ {0:S1, 1:S2, 2:S3},
  ///   field ∈ {0: magnitude, 1: product, 2: bias, 3: result}.
  /// A transient upset therefore corrupts exactly one cycle's flop state
  /// (the injector spends it on first read); stuck-ats apply every cycle.
  /// nullptr disarms (the default; the hook is one branch per tick).
  void attach_fault_port(fault::BitFaultPort* port) noexcept {
    fault_port_ = port;
  }
  static constexpr std::size_t kFaultWordsPerStage = 4;
  static constexpr std::size_t kFaultWords = 3 * kFaultWordsPerStage;
  /// Physical width in bits of the flop field behind @p word (for normal
  /// σ/tanh/exp ops; a §VIII reciprocal pass carries its result at the
  /// wider quotient format).
  [[nodiscard]] int fault_word_width(std::size_t word) const;

 private:
  struct StageOp {
    bool valid = false;
    Func func = Func::Sigmoid;
    bool negative = false;         ///< sign of the (possibly negated) input
    bool recip_pass = false;       ///< re-entrant reciprocal pass (§VIII)
    std::int64_t magnitude_raw = 0;
    std::size_t segment = 0;
    std::int64_t product_raw = 0;  ///< coeff × magnitude, full precision
    std::int64_t bias_raw = 0;     ///< morphed bias, coefficient grid
    std::int64_t result_raw = 0;   ///< S3 output (σ/tanh final; σ for exp)
    std::uint64_t tag = 0;
  };

  [[nodiscard]] StageOp stage1(Func func, fp::Fixed x,
                               std::uint64_t tag) const;
  [[nodiscard]] StageOp stage2(StageOp op) const;
  [[nodiscard]] StageOp stage3(StageOp op) const;
  [[nodiscard]] std::int64_t decrement_stage(std::uint64_t quotient) const;
  /// Route @p op's datapath fields (next state of the stage whose first
  /// fault word is @p base) through the armed fault port.
  void apply_fault_port(StageOp& op, std::size_t base);

  core::Nacu unit_;
  fp::Format quotient_fmt_;
  int numerator_shift_;  ///< numerator = 1 << numerator_shift_
  int quotient_bits_;

  fp::Format product_fmt_;

  Reg<StageOp> s1_, s2_, s3_;
  PipelinedDivider divider_;
  Reg<StageOp> recip_result_;  ///< reciprocal pass leaving S3 (→ DEC)
  StageOp pending_issue_;
  bool issue_valid_ = false;
  std::vector<Output> retired_;
  std::uint64_t register_toggles_ = 0;
  std::uint64_t cycles_ = 0;
  std::uint64_t next_tag_ = 1;  ///< run_single tags (per instance)
  fault::BitFaultPort* fault_port_ = nullptr;
};

}  // namespace nacu::hw
