#include "hwmodel/divider.hpp"

#include <stdexcept>

namespace nacu::hw {

std::uint64_t restoring_divide(std::uint64_t numerator,
                               std::uint64_t denominator,
                               int quotient_bits) noexcept {
  // Classic restoring scheme: shift a numerator bit into the partial
  // remainder, subtract the denominator if it fits, emit the quotient bit.
  std::uint64_t remainder = 0;
  std::uint64_t quotient = 0;
  for (int i = quotient_bits - 1; i >= 0; --i) {
    remainder = (remainder << 1) | ((numerator >> i) & 1u);
    quotient <<= 1;
    if (remainder >= denominator) {
      remainder -= denominator;
      quotient |= 1u;
    }
  }
  return quotient;
}

int quotient_bits_for(std::uint64_t numerator) noexcept {
  int bits = 0;
  while (numerator != 0) {
    numerator >>= 1;
    ++bits;
  }
  return bits == 0 ? 1 : bits;
}

PipelinedDivider::PipelinedDivider(int quotient_bits, int stages)
    : quotient_bits_{quotient_bits} {
  if (quotient_bits < 1 || stages < 1) {
    throw std::invalid_argument(
        "PipelinedDivider needs quotient_bits >= 1 and stages >= 1");
  }
  bits_per_stage_ = (quotient_bits + stages - 1) / stages;
  stage_regs_.resize(static_cast<std::size_t>(stages));
}

void PipelinedDivider::issue(std::uint64_t numerator,
                             std::uint64_t denominator, std::uint64_t tag) {
  if (denominator == 0) {
    throw std::domain_error("PipelinedDivider: division by zero");
  }
  input_ = StageState{.valid = true,
                      .remainder = 0,
                      .numerator = numerator,
                      .denominator = denominator,
                      .quotient = 0,
                      .bits_done = 0,
                      .tag = tag};
  input_valid_ = true;
}

PipelinedDivider::StageState PipelinedDivider::advance(StageState state,
                                                       int bits) const {
  for (int step = 0; step < bits && state.bits_done < quotient_bits_;
       ++step) {
    const int bit_index = quotient_bits_ - 1 - state.bits_done;
    state.remainder =
        (state.remainder << 1) | ((state.numerator >> bit_index) & 1u);
    state.quotient <<= 1;
    if (state.remainder >= state.denominator) {
      state.remainder -= state.denominator;
      state.quotient |= 1u;
    }
    ++state.bits_done;
  }
  return state;
}

void PipelinedDivider::tick() {
  // Shift the pipeline: stage i's next state is stage i-1's current state
  // advanced by this stage's rows; stage 0 takes the presented input.
  for (std::size_t i = stage_regs_.size(); i-- > 0;) {
    const StageState prev =
        i == 0 ? (input_valid_ ? input_ : StageState{})
               : stage_regs_[i - 1].get();
    stage_regs_[i].set(prev.valid ? advance(prev, bits_per_stage_)
                                  : StageState{});
  }
  for (auto& reg : stage_regs_) {
    reg.commit();
  }
  input_valid_ = false;
}

std::optional<PipelinedDivider::Result> PipelinedDivider::output() const {
  const StageState& last = stage_regs_.back().get();
  if (!last.valid) {
    return std::nullopt;
  }
  return Result{.quotient = last.quotient, .tag = last.tag};
}

}  // namespace nacu::hw
