#include "hwmodel/softmax_engine.hpp"

#include <algorithm>

#include "hwmodel/divider.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace nacu::hw {

namespace {

/// Exports the three phase cycle counters the engine already computes —
/// the measured counterpart to the streaming-softmax accounting in the
/// fixed-point exp literature (see DESIGN.md §3e).
void export_phase_counters(const SoftmaxEngine::Result& result) {
  static obs::Counter& runs = obs::counter("hw.softmax_engine.runs");
  static obs::Counter& elems = obs::counter("hw.softmax_engine.elems");
  static obs::Counter& max_cycles =
      obs::counter("hw.softmax_engine.max_phase_cycles");
  static obs::Counter& exp_cycles =
      obs::counter("hw.softmax_engine.exp_phase_cycles");
  static obs::Counter& divide_cycles =
      obs::counter("hw.softmax_engine.divide_phase_cycles");
  runs.add();
  elems.add(result.probs_raw.size());
  max_cycles.add(result.max_phase_cycles);
  exp_cycles.add(result.exp_phase_cycles);
  divide_cycles.add(result.divide_phase_cycles);
}

}  // namespace

SoftmaxEngine::SoftmaxEngine(const core::NacuConfig& config)
    : config_{config}, rtl_{config}, batch_{config} {}

std::vector<std::int64_t> SoftmaxEngine::values(
    const std::vector<std::int64_t>& logits_raw) const {
  return batch_.softmax_raw(logits_raw);
}

SoftmaxEngine::Result SoftmaxEngine::run(
    const std::vector<std::int64_t>& logits_raw) {
  Result result;
  if (logits_raw.empty()) {
    return result;
  }
  const obs::TraceSpan span{"SoftmaxEngine::run"};
  const fp::Format fmt = config_.format;
  const std::size_t n = logits_raw.size();

  // Phase 1 — streaming max: one comparator pass, one logit per cycle.
  std::int64_t max_raw = logits_raw[0];
  for (std::size_t i = 1; i < n; ++i) {
    max_raw = std::max(max_raw, logits_raw[i]);
  }
  result.max_phase_cycles = n;

  // Accumulator format: identical to core::Nacu::softmax so the MAC
  // truncation sequence matches bit-for-bit.
  int sum_ib = 1;
  while ((std::size_t{1} << sum_ib) < n + 1) {
    ++sum_ib;
  }
  const fp::Format sum_fmt{sum_ib + 1, fmt.fractional_bits()};
  const fp::Fixed x_max = fp::Fixed::from_raw(max_raw, fmt);
  const fp::Fixed one = fp::Fixed::from_double(1.0, fmt);
  fp::Fixed denom = fp::Fixed::zero(sum_fmt);

  // Phase 2 — exp streaming + denominator MAC. One issue per cycle in the
  // exact-divider configuration; in the approximate-reciprocal mode (§VIII)
  // each exp's reciprocal re-enters S1 and would collide with the issue
  // three slots later, so the sequencer issues in bursts of three with
  // three-cycle gaps.
  const bool approximate = rtl_.unit().config().approximate_reciprocal;
  std::vector<std::int64_t> exps(n, 0);
  std::size_t issued = 0;
  std::size_t retired = 0;
  std::uint64_t step = 0;
  while (retired < n) {
    const bool slot_free = !approximate || (step % 6) < 3;
    if (issued < n && slot_free) {
      const fp::Fixed diff =
          fp::Fixed::from_raw(logits_raw[issued], fmt).sub(x_max, fmt);
      rtl_.issue(Func::Exp, diff, issued);
      ++issued;
    }
    rtl_.tick();
    ++step;
    ++result.exp_phase_cycles;
    for (const NacuRtl::Output& out : rtl_.outputs()) {
      exps[out.tag] = out.value_raw;
      denom = rtl_.unit().mac(
          denom, fp::Fixed::from_raw(out.value_raw, fmt), one);
      ++retired;
    }
  }
  if (denom.is_zero()) {
    denom = fp::Fixed::from_raw(1, sum_fmt);
  }

  if (approximate) {
    // Phase 3 (§VIII) — one reciprocal pass of the shared denominator
    // (3 cycles through the multiply-add), then one multiply per element
    // on the MAC. Matches core::Nacu::softmax bit-for-bit.
    const fp::Format recip_fmt{1, fmt.fractional_bits() +
                                      config_.divider_guard_bits + 2};
    const fp::Fixed denom_recip =
        rtl_.unit().reciprocal_unit()->reciprocal(denom, recip_fmt);
    result.divide_phase_cycles = 3;  // the reciprocal pass
    for (std::size_t i = 0; i < n; ++i) {
      result.probs_raw.push_back(
          fp::Fixed::from_raw(exps[i], fmt)
              .mul(denom_recip, fmt, fp::Rounding::Truncate,
                   fp::Overflow::Saturate)
              .raw());
      ++result.divide_phase_cycles;  // one MAC multiply per element
    }
    result.cycles = result.max_phase_cycles + result.exp_phase_cycles +
                    result.divide_phase_cycles;
    export_phase_counters(result);
    return result;
  }

  // Phase 3 — one divider pass per element against the shared denominator.
  // quotient = floor((e << fb) / denom): same scale as Fixed::div since all
  // operands share the datapath fb.
  const int shift = fmt.fractional_bits();
  const int quotient_bits = fmt.width() + shift;
  PipelinedDivider divider{quotient_bits, 4};
  result.probs_raw.assign(n, 0);
  issued = 0;
  retired = 0;
  while (retired < n) {
    if (issued < n) {
      divider.issue(static_cast<std::uint64_t>(exps[issued]) << shift,
                    static_cast<std::uint64_t>(denom.raw()), issued);
      ++issued;
    }
    divider.tick();
    ++result.divide_phase_cycles;
    if (const auto out = divider.output()) {
      const std::int64_t q = std::min<std::int64_t>(
          static_cast<std::int64_t>(out->quotient), fmt.max_raw());
      result.probs_raw[out->tag] = q;
      ++retired;
    }
  }
  result.cycles = result.max_phase_cycles + result.exp_phase_cycles +
                  result.divide_phase_cycles;
  export_phase_counters(result);
  return result;
}

}  // namespace nacu::hw
