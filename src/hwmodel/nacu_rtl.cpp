#include "hwmodel/nacu_rtl.hpp"

#include <bit>
#include <stdexcept>
#include <utility>

#include "core/bias_units.hpp"

namespace nacu::hw {

namespace {
constexpr int kDividerStages = 4;  // 3 (S1–S3) + 4 + 1 (DEC) = 8 cycles

/// Hamming distance between the datapath fields of two stage snapshots.
std::uint64_t stage_toggles(const auto& a, const auto& b) {
  const auto bits = [](std::int64_t x, std::int64_t y) {
    return static_cast<std::uint64_t>(std::popcount(
        static_cast<std::uint64_t>(x) ^ static_cast<std::uint64_t>(y)));
  };
  return bits(a.magnitude_raw, b.magnitude_raw) +
         bits(a.product_raw, b.product_raw) + bits(a.bias_raw, b.bias_raw) +
         bits(a.result_raw, b.result_raw) +
         (a.valid != b.valid ? 1u : 0u);
}
}  // namespace

NacuRtl::NacuRtl(const core::NacuConfig& config)
    : NacuRtl{core::Nacu{config}} {}

NacuRtl::NacuRtl(core::Nacu unit)
    : unit_{std::move(unit)},
      quotient_fmt_{unit_.config().format.integer_bits() + 1,
                    unit_.config().format.fractional_bits() +
                        unit_.config().divider_guard_bits},
      numerator_shift_{unit_.config().format.fractional_bits() +
                       quotient_fmt_.fractional_bits()},
      quotient_bits_{numerator_shift_ + 1},
      product_fmt_{unit_.config().format.integer_bits() + 2 + 1,
                   unit_.config().format.fractional_bits() +
                       unit_.config().coeff_format.fractional_bits()},
      divider_{quotient_bits_, kDividerStages} {}

int NacuRtl::fault_word_width(std::size_t word) const {
  switch (word % kFaultWordsPerStage) {
    case 0:  // magnitude
      return unit_.format().width();
    case 1:  // product
      return product_fmt_.width();
    case 2:  // bias (coeff_wide = Q2.fb_c)
      return 1 + 2 + unit_.config().coeff_format.fractional_bits();
    default:  // result
      return unit_.format().width();
  }
}

void NacuRtl::apply_fault_port(StageOp& op, std::size_t base) {
  constexpr auto kSurface = fault::Surface::RtlPipeline;
  op.magnitude_raw = fault_port_->read(kSurface, base + 0, op.magnitude_raw,
                                       fault_word_width(0));
  op.product_raw = fault_port_->read(kSurface, base + 1, op.product_raw,
                                     fault_word_width(1));
  op.bias_raw =
      fault_port_->read(kSurface, base + 2, op.bias_raw, fault_word_width(2));
  // A reciprocal pass (§VIII) carries its S3 result on the quotient grid.
  op.result_raw = fault_port_->read(
      kSurface, base + 3, op.result_raw,
      op.recip_pass ? quotient_fmt_.width() : fault_word_width(3));
}

void NacuRtl::issue(Func func, fp::Fixed x, std::uint64_t tag) {
  if (issue_valid_) {
    throw std::logic_error("NacuRtl accepts at most one issue per cycle");
  }
  pending_issue_ = stage1(func, x, tag);
  issue_valid_ = true;
}

NacuRtl::StageOp NacuRtl::stage1(Func func, fp::Fixed x,
                                 std::uint64_t tag) const {
  // Exp evaluates σ(−x) (Eq. 14): the negation happens at the input mux.
  const fp::Fixed effective = func == Func::Exp ? x.negate() : x;
  const fp::Fixed magnitude = effective.abs();
  StageOp op;
  op.valid = true;
  op.func = func;
  op.negative = effective.is_negative();
  op.magnitude_raw = magnitude.raw();
  op.segment = unit_.segment_for_magnitude(magnitude, func == Func::Tanh);
  op.tag = tag;
  return op;
}

NacuRtl::StageOp NacuRtl::stage2(StageOp op) const {
  if (!op.valid || op.recip_pass) {
    // Reciprocal passes carry the σ operand through; their arithmetic is
    // modelled at S3 (the values of the intermediate mantissa product are
    // not architecturally visible).
    return op;
  }
  using Mode = core::Nacu::Mode;
  const Mode mode =
      op.func == Func::Tanh
          ? (op.negative ? Mode::TanhNeg : Mode::TanhPos)
          : (op.negative ? Mode::SigmoidNeg : Mode::SigmoidPos);
  const core::Nacu::Coefficients c =
      unit_.morph_coefficients(op.segment, mode);
  const fp::Fixed magnitude =
      fp::Fixed::from_raw(op.magnitude_raw, unit_.format());
  op.product_raw = magnitude.mul_full(c.coeff).raw();
  op.bias_raw = c.bias.raw();
  return op;
}

NacuRtl::StageOp NacuRtl::stage3(StageOp op) const {
  if (!op.valid) {
    return op;
  }
  if (op.recip_pass) {
    // §VIII reciprocal pass: leading-one detect + PWL (m,q) + the shared
    // multiply-add produce σ' = 1/σ on the quotient grid. The operand is
    // unsigned hardware-side: a fault-corrupted non-positive σ clamps to
    // one LSB, same as the issue-side clamp below.
    const fp::Fixed sigma = fp::Fixed::from_raw(
        op.magnitude_raw <= 0 ? 1 : op.magnitude_raw, unit_.format());
    op.result_raw =
        unit_.reciprocal_unit()->reciprocal(sigma, quotient_fmt_).raw();
    return op;
  }
  const fp::Format coeff_wide{2,
                              unit_.config().coeff_format.fractional_bits()};
  const fp::Fixed product = fp::Fixed::from_raw(op.product_raw, product_fmt_);
  const fp::Fixed bias = fp::Fixed::from_raw(op.bias_raw, coeff_wide);
  op.result_raw = product.add_full(bias)
                      .requantize(unit_.format(),
                                  unit_.config().output_rounding,
                                  fp::Overflow::Saturate)
                      .raw();
  return op;
}

std::int64_t NacuRtl::decrement_stage(std::uint64_t quotient) const {
  const int fb = quotient_fmt_.fractional_bits();
  const auto sp_raw = static_cast<std::int64_t>(quotient);
  std::int64_t r_raw;
  if (unit_.config().use_bit_trick_units &&
      sp_raw >= (std::int64_t{1} << fb) &&
      sp_raw <= (std::int64_t{1} << (fb + 1))) {
    r_raw = core::fig3b_minus_one(sp_raw, fb);
  } else {
    r_raw = sp_raw - (std::int64_t{1} << fb);
  }
  const std::int64_t clamped =
      fp::apply_overflow(r_raw, quotient_fmt_, fp::Overflow::Saturate);
  return fp::Fixed::from_raw(clamped, quotient_fmt_)
      .requantize(unit_.format(), unit_.config().output_rounding,
                  fp::Overflow::Saturate)
      .raw();
}

void NacuRtl::tick() {
  retired_.clear();
  const bool approximate = unit_.config().approximate_reciprocal;

  // DEC stage: consume either the divider result (exact mode) or the
  // reciprocal pass that left S3 (approximate mode, §VIII) — both were
  // committed on the previous edge.
  if (approximate) {
    const StageOp rr = recip_result_.get();
    if (rr.valid) {
      retired_.push_back(Output{
          .func = Func::Exp,
          .tag = rr.tag,
          .value_raw = decrement_stage(
              static_cast<std::uint64_t>(rr.result_raw))});
    }
  } else if (const auto div_result = divider_.output()) {
    retired_.push_back(Output{.func = Func::Exp,
                              .tag = div_result->tag,
                              .value_raw = decrement_stage(
                                  div_result->quotient)});
  }

  // A σ(−x) that completed S3 on the previous edge enters the divider
  // (exact) or re-enters S1 as a reciprocal pass (approximate).
  const StageOp s3_prev = s3_.get();
  StageOp reentry;
  if (s3_prev.valid && s3_prev.func == Func::Exp && !s3_prev.recip_pass) {
    // The divider/reciprocal operand is unsigned: clamp a zero or
    // rounded-negative σ to one LSB (mirrors core::Nacu::exp).
    const std::int64_t denom =
        s3_prev.result_raw <= 0 ? 1 : s3_prev.result_raw;
    if (approximate) {
      reentry.valid = true;
      reentry.func = Func::Exp;
      reentry.recip_pass = true;
      reentry.magnitude_raw = denom;
      reentry.tag = s3_prev.tag;
    } else {
      divider_.issue(std::uint64_t{1} << numerator_shift_,
                     static_cast<std::uint64_t>(denom), s3_prev.tag);
    }
  }
  divider_.tick();

  // S3: compute from S2's previous state; σ/tanh retire here. Faults land
  // on the value being clocked into the S3 register, *before* the retire
  // port reads it — a corrupted flop is architecturally visible.
  StageOp s3_next = stage3(s2_.get());
  if (fault_port_ != nullptr) {
    apply_fault_port(s3_next, 2 * kFaultWordsPerStage);
  }
  if (s3_next.valid && s3_next.func != Func::Exp) {
    retired_.push_back(Output{.func = s3_next.func,
                              .tag = s3_next.tag,
                              .value_raw = s3_next.result_raw});
  }
  // Reciprocal pass leaving S3 heads for DEC next edge.
  recip_result_.set(s3_next.valid && s3_next.recip_pass ? s3_next
                                                        : StageOp{});
  recip_result_.commit();

  // S1 intake: a reciprocal re-entry owns the slot; colliding with an
  // external issue is a structural hazard a real sequencer would stall on.
  StageOp s1_next;
  if (reentry.valid) {
    if (issue_valid_) {
      throw std::logic_error(
          "NacuRtl: structural hazard — reciprocal re-entry collided with "
          "an external issue (space exp issues >= 4 cycles apart, or "
          "interleave bubbles)");
    }
    s1_next = reentry;
  } else if (issue_valid_) {
    s1_next = pending_issue_;
  }
  StageOp s2_next = stage2(s1_.get());
  if (fault_port_ != nullptr) {
    apply_fault_port(s1_next, 0);
    apply_fault_port(s2_next, kFaultWordsPerStage);
  }
  register_toggles_ += stage_toggles(s1_.get(), s1_next) +
                       stage_toggles(s2_.get(), s2_next) +
                       stage_toggles(s3_.get(), s3_next);
  s3_.set(s3_next);
  s2_.set(s2_next);
  s1_.set(s1_next);
  s1_.commit();
  s2_.commit();
  s3_.commit();
  issue_valid_ = false;
  ++cycles_;
}

int NacuRtl::latency(Func func) const noexcept {
  if (func != Func::Exp) {
    return 3;
  }
  // Exact: σ pass + divider + DEC. Approximate (§VIII): σ pass + one more
  // multiply-add pass + DEC.
  return unit_.config().approximate_reciprocal
             ? 3 + 3 + 1
             : 3 + divider_.stages() + 1;
}

NacuRtl::SingleResult NacuRtl::run_single(Func func, fp::Fixed x) {
  // Per-instance tag counter: a process-wide static would race when fault
  // campaigns drive private pipelines from many pool threads at once.
  const std::uint64_t tag = next_tag_++;
  issue(func, x, tag);
  for (int cycle = 1; cycle <= 64; ++cycle) {
    tick();
    for (const Output& out : retired_) {
      if (out.tag == tag) {
        return SingleResult{
            .value = fp::Fixed::from_raw(out.value_raw, unit_.format()),
            .cycles = cycle};
      }
    }
  }
  throw std::logic_error("NacuRtl: operation did not retire within 64 cycles");
}

}  // namespace nacu::hw
