// Minimal cycle-accurate simulation framework.
//
// A Module owns registered state; on each clock edge (tick) it computes its
// next state from the *current* registered state of everything it reads and
// commits. The Simulator advances a set of modules one clock at a time and
// counts cycles — enough to model the NACU pipeline faithfully (issue one
// operation per cycle, observe results emerge 3 or 8 cycles later) without
// dragging in a full event-driven HDL kernel.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace nacu::hw {

class Module {
 public:
  virtual ~Module() = default;

  /// Clock edge: read current registered state, commit next state.
  virtual void tick() = 0;

  [[nodiscard]] virtual std::string name() const { return "module"; }
};

/// A two-field register: writes land in `next` and become visible in
/// `current` after commit(). Using this for every piece of inter-stage state
/// makes tick() order-independent.
template <typename T>
class Reg {
 public:
  Reg() = default;
  explicit Reg(const T& reset) : current_{reset}, next_{reset} {}

  [[nodiscard]] const T& get() const noexcept { return current_; }
  void set(const T& value) { next_ = value; }
  void commit() { current_ = next_; }

 private:
  T current_{};
  T next_{};
};

class Simulator {
 public:
  void add(Module& module) { modules_.push_back(&module); }

  /// One clock edge for every module.
  void step() {
    for (Module* m : modules_) {
      m->tick();
    }
    ++cycle_;
  }

  void run(std::uint64_t cycles) {
    for (std::uint64_t i = 0; i < cycles; ++i) {
      step();
    }
  }

  [[nodiscard]] std::uint64_t cycle() const noexcept { return cycle_; }

 private:
  std::vector<Module*> modules_;
  std::uint64_t cycle_ = 0;
};

}  // namespace nacu::hw
