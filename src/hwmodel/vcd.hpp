// Minimal VCD (Value Change Dump) writer — waveforms from the cycle model.
//
// Lets any cycle-accurate run (NacuRtl streams, fabric executions) be
// inspected in GTKWave or any VCD viewer, the way the paper's RTL artifact
// would be debugged. Signals register once, then each cycle's values are
// sampled; only changes are emitted, per the IEEE-1364 dump format.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace nacu::hw {

class VcdWriter {
 public:
  /// @p timescale_ns nanoseconds per timestep (NACU's clock: 3.75 ns,
  /// emitted as picoseconds to stay integral).
  explicit VcdWriter(std::ostream& out, double timescale_ns = 3.75);

  /// Register a signal before the first sample. Returns its handle.
  int add_signal(const std::string& name, int width);

  /// Set a signal's value for the current timestep.
  void set(int handle, std::uint64_t value);

  /// Emit the current timestep: writes the header on first call, then a
  /// #<time> marker and every changed signal.
  void step();

  [[nodiscard]] std::uint64_t steps() const noexcept { return time_; }

 private:
  struct Signal {
    std::string name;
    int width;
    std::string id;        ///< VCD short identifier
    std::uint64_t value = 0;
    std::uint64_t last_emitted = 0;
    // The "never emitted" state needs its own flag: a sentinel raw value
    // collides with a real 64-bit all-ones initial value and would
    // suppress its time-0 dump.
    bool emitted = false;
  };

  void write_header();
  void write_value(const Signal& signal);
  static std::string identifier_for(int index);

  std::ostream& out_;
  double timescale_ns_;
  std::vector<Signal> signals_;
  bool header_written_ = false;
  std::uint64_t time_ = 0;
};

}  // namespace nacu::hw
