#include "fault/fault_injector.hpp"

#include <stdexcept>

namespace nacu::fault {

void FaultInjector::arm(const Fault& fault) {
  if (fault.bit < 0 || fault.bit >= 64) {
    throw std::invalid_argument("FaultInjector: bit index out of range");
  }
  const std::lock_guard<std::mutex> lock{mutex_};
  faults_.push_back(Armed{.fault = fault, .spent = false});
}

void FaultInjector::disarm_all() noexcept {
  const std::lock_guard<std::mutex> lock{mutex_};
  faults_.clear();
}

bool FaultInjector::transient_live() const noexcept {
  const std::lock_guard<std::mutex> lock{mutex_};
  for (const Armed& a : faults_) {
    if (a.fault.model == FaultModel::TransientSeu && !a.spent) {
      return true;
    }
  }
  return false;
}

std::int64_t FaultInjector::apply(const Fault& fault, std::int64_t clean,
                                  int width) noexcept {
  if (fault.bit >= width) {
    return clean;  // the targeted cell does not exist at this word's width
  }
  const std::uint64_t value_mask =
      width >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << width) - 1;
  const std::uint64_t bit_mask = std::uint64_t{1} << fault.bit;
  std::uint64_t u = static_cast<std::uint64_t>(clean) & value_mask;
  switch (fault.model) {
    case FaultModel::TransientSeu:
      u ^= bit_mask;
      break;
    case FaultModel::StuckAt0:
      u &= ~bit_mask;
      break;
    case FaultModel::StuckAt1:
      u |= bit_mask;
      break;
  }
  // Sign-extend the width-bit two's-complement word back to int64.
  if (width < 64 && (u & (std::uint64_t{1} << (width - 1))) != 0) {
    u |= ~value_mask;
  }
  return static_cast<std::int64_t>(u);
}

std::int64_t FaultInjector::read(Surface surface, std::size_t word,
                                 std::int64_t clean, int width) noexcept {
  std::int64_t value = clean;
  {
    const std::lock_guard<std::mutex> lock{mutex_};
    for (Armed& a : faults_) {
      if (a.fault.surface != surface || a.fault.word != word || a.spent) {
        continue;
      }
      value = apply(a.fault, value, width);
      if (a.fault.model == FaultModel::TransientSeu &&
          surface == Surface::RtlPipeline) {
        // A flop upset corrupts exactly one clocking of the register; the
        // next cycle's write overwrites it.
        a.spent = true;
      }
    }
  }
  if (value != clean) {
    reads_faulted_.fetch_add(1, std::memory_order_relaxed);
  }
  return value;
}

void FaultInjector::on_rewrite(Surface surface, std::size_t word) noexcept {
  const std::lock_guard<std::mutex> lock{mutex_};
  for (Armed& a : faults_) {
    if (a.fault.surface == surface && a.fault.word == word &&
        a.fault.model == FaultModel::TransientSeu) {
      a.spent = true;  // the rewrite stored a clean value over the upset
    }
  }
}

}  // namespace nacu::fault
