// Single-bit fault models over the NACU state surfaces.
//
// A FaultInjector is a BitFaultPort holding a set of armed faults. Each
// fault targets one (surface, word, bit) and follows one of three models:
//
//  * TransientSeu — a soft-error bit flip. In SRAM surfaces (LUT words,
//    dense tables) the flipped bit persists until the word is rewritten
//    (on_rewrite — a scrub); in the pipeline-register surface the upset
//    lasts exactly one clocking of the flop (the next cycle overwrites it),
//    so the injector spends it after its first applied read.
//  * StuckAt0 / StuckAt1 — a permanent defect: the bit is forced on every
//    read and survives any scrub.
//
// Faults are applied within the word's physical bit-width (two's
// complement, sign-extended), so a corrupted word is always representable
// in the format the clean word came from — corruption propagates as wrong
// *values*, never as out-of-range crashes.
//
// Thread-safe: the armed-fault list is mutex-guarded and the faulted-read
// counter is atomic, so one injector may be armed on a BatchNacu whose
// evaluations fan out across the thread pool, or on a serving shard whose
// supervisor arms/scrubs while the dispatcher serves reads (the live-SEU
// chaos path, serve/resilience.hpp). The disarmed fast path in the hooked
// units is still a single pointer compare — the lock is only ever taken
// while a port is attached and a read is intercepted.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "fault/fault_port.hpp"

namespace nacu::fault {

enum class FaultModel : std::uint8_t { TransientSeu, StuckAt0, StuckAt1 };

[[nodiscard]] constexpr const char* fault_model_name(FaultModel m) noexcept {
  switch (m) {
    case FaultModel::TransientSeu: return "transient-seu";
    case FaultModel::StuckAt0: return "stuck-at-0";
    case FaultModel::StuckAt1: return "stuck-at-1";
  }
  return "?";
}

struct Fault {
  Surface surface = Surface::LutSlope;
  std::size_t word = 0;
  int bit = 0;  ///< bit position within the word's physical width
  FaultModel model = FaultModel::TransientSeu;
};

class FaultInjector final : public BitFaultPort {
 public:
  FaultInjector() = default;

  /// Arm @p fault; multiple armed faults compose (applied in arm order).
  void arm(const Fault& fault);
  void disarm_all() noexcept;
  [[nodiscard]] std::size_t armed_count() const noexcept {
    const std::lock_guard<std::mutex> lock{mutex_};
    return faults_.size();
  }

  /// Number of reads whose returned value differed from the clean word.
  [[nodiscard]] std::size_t reads_faulted() const noexcept {
    return reads_faulted_.load(std::memory_order_relaxed);
  }
  /// Whether any armed TransientSeu is still live (not spent / scrubbed).
  [[nodiscard]] bool transient_live() const noexcept;

  /// Pure fault application: @p clean with @p fault applied, within
  /// @p width bits. read() matches this bit-for-bit for a live fault; a
  /// bit index outside the word's width is a no-op (the flop/cell does not
  /// exist), mirroring read().
  [[nodiscard]] static std::int64_t apply(const Fault& fault,
                                          std::int64_t clean,
                                          int width) noexcept;

  // BitFaultPort:
  [[nodiscard]] std::int64_t read(Surface surface, std::size_t word,
                                  std::int64_t clean,
                                  int width) noexcept override;
  void on_rewrite(Surface surface, std::size_t word) noexcept override;

 private:
  struct Armed {
    Fault fault;
    bool spent = false;  ///< transient already healed (scrub / flop re-clock)
  };
  mutable std::mutex mutex_;  ///< guards faults_ (arm/read/rewrite/query)
  std::vector<Armed> faults_;
  std::atomic<std::size_t> reads_faulted_{0};
};

}  // namespace nacu::fault
