// Invariant-based online fault detectors for the NACU datapath.
//
// Every check is derived from algebra the paper itself establishes, so a
// deployed controller can run them with no golden reference model:
//
//   CoefficientRange  m1 ∈ [0, 0.25], q ∈ [0.5, 1]            (§V.A)
//   OutputRange       σ ∈ [0, 1], tanh ∈ [−1, 1], e^x ∈ (0, 1] for x ≤ 0
//   CentroSymmetry    σ(x) + σ(−x) = 1                        (Eq. 9)
//   TanhOddness       tanh(x) + tanh(−x) = 0                  (Eq. 11)
//   Monotonicity      σ, tanh, e^x nondecreasing over the domain
//   Continuity        |Δf| ≤ slope-bound · Δx (σ' ≤ 1/4, tanh' ≤ 1, e^x ≤ 1
//                     on x ≤ 0) plus quantisation slack
//   SoftmaxSum        Eq. 13 outputs sum to 1; shifted σ operands ≤ 0.5
//   TableParity       even parity per cached word (σ-LUT coefficients and
//                     BatchNacu dense tables), captured from clean state —
//                     the classic SRAM guard; catches every single-bit flip
//   TemporalVote      2-of-3 re-evaluation disagreement — the only check
//                     that can see a single-cycle pipeline-flop upset
//
// Fixed-point quantisation makes none of the algebraic identities exact, so
// the checker *calibrates* its tolerances on the clean unit at construction
// (measured clean deviation + margin_lsb). That guarantees zero false
// positives on the calibration config by construction while keeping the
// detection threshold as tight as the format allows.
//
// An interesting consequence of the shared-LUT architecture, exposed by the
// campaign: CentroSymmetry and TanhOddness largely *cannot* catch σ-LUT
// coefficient faults — σ(x) and σ(−x) morph the same corrupted (m1, q)
// words, so slope corruption cancels exactly in the sum (Eqs. 9, 11), and
// bias corruption cancels while the corrupted q stays inside (0, 1] (beyond
// that the Fig. 3a fractional complement wraps and the identity breaks by a
// whole integer, which *is* caught). They do catch dense-table and pipeline
// faults, where the two reads are independent.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/batch_nacu.hpp"
#include "hwmodel/nacu_rtl.hpp"

namespace nacu::fault {

enum class Detector : std::uint8_t {
  CoefficientRange = 0,
  OutputRange,
  CentroSymmetry,
  TanhOddness,
  Monotonicity,
  Continuity,
  SoftmaxSum,
  TableParity,
  TemporalVote,
};
inline constexpr std::size_t kDetectorCount = 9;

[[nodiscard]] const char* detector_name(Detector d) noexcept;

/// Which detectors flagged, as a bitmask (bit = enum value).
struct DetectionReport {
  std::uint32_t flags = 0;

  [[nodiscard]] bool flagged() const noexcept { return flags != 0; }
  [[nodiscard]] bool flagged(Detector d) const noexcept {
    return (flags & (1u << static_cast<unsigned>(d))) != 0;
  }
  void flag(Detector d) noexcept {
    flags |= 1u << static_cast<unsigned>(d);
  }
  void merge(const DetectionReport& other) noexcept { flags |= other.flags; }
  /// "centro-symmetry|table-parity" style list ("-" when clean).
  [[nodiscard]] std::string to_string() const;
};

/// 2-of-3 temporal redundancy: evaluate three times, majority-vote the raw
/// result. Any disagreement is a detection; the majority value is the
/// recovered output (a single-cycle transient can corrupt at most one run).
struct VoteResult {
  std::int64_t majority = 0;
  bool disagreed = false;
};
[[nodiscard]] VoteResult temporal_vote3(
    const std::function<std::int64_t()>& evaluate);

struct CheckerOptions {
  /// Extra output-grid LSBs of slack on top of each measured clean
  /// deviation. 1 keeps thresholds tight; raise to trade coverage for
  /// robustness against untested configs.
  std::int64_t margin_lsb = 1;
  /// Stride through the probe list for pipeline (run_single) checks, which
  /// cost ~8 cycles per probe instead of one table read. 1 gives the full
  /// grid (best stuck-at coverage); larger trades coverage for speed.
  std::size_t rtl_probe_stride = 1;
};

class InvariantChecker {
 public:
  using Function = core::BatchNacu::Function;

  /// Builds the golden unit, the probe grid (segment boundaries, segment
  /// midpoints, format extremes, mirrored), the dense golden tables (when
  /// the format is table-cacheable) with their parity signatures, and
  /// calibrates every tolerance on the clean unit.
  explicit InvariantChecker(const core::NacuConfig& config,
                            CheckerOptions options = {});

  [[nodiscard]] const core::Nacu& golden() const noexcept { return golden_; }
  [[nodiscard]] const std::vector<std::int64_t>& probes() const noexcept {
    return probes_;
  }
  /// Dense golden table for @p f (raw outputs, index = raw − min_raw);
  /// empty when the format is wider than BatchNacu::kMaxTableWidth.
  [[nodiscard]] const std::vector<std::int16_t>& golden_table(
      Function f) const noexcept {
    return golden_tables_[static_cast<std::size_t>(f)];
  }

  /// Whether @p f has dense-table parity signatures (table-cacheable
  /// format). word_intact can only detect when this holds.
  [[nodiscard]] bool has_table_signatures(Function f) const noexcept {
    return !table_parity_[static_cast<std::size_t>(f)].empty();
  }

  /// O(1) per-word serving guard. @p entry is the value of table word
  /// @p word *as read* — equivalently, the activation output raw the word
  /// produced, since a table-path evaluation returns the entry unchanged.
  /// Returns false when the entry fails the word's captured parity
  /// signature or the calibrated output range — any single-bit corruption
  /// of a stored word flips its parity, so checking every served word
  /// gives the TableParity coverage guarantee *before* the result is
  /// released to a client. Returns true (no detection possible) when the
  /// format has no signatures or @p word is out of range.
  [[nodiscard]] bool word_intact(Function f, std::size_t word,
                                 std::int64_t entry) const noexcept;

  /// Scalar-unit battery: σ-LUT word checks (coefficient range + parity)
  /// and the full probe battery (range, symmetry, oddness, monotonicity,
  /// continuity, softmax) evaluated through @p unit — which may have a
  /// fault port armed on its LUT.
  [[nodiscard]] DetectionReport check_unit(const core::Nacu& unit) const;

  /// Dense-table battery over one function's table, read through
  /// @p read_word (word = raw − min_raw): parity, range, monotonicity, and
  /// the symmetry/oddness pairing for σ/tanh. Requires a cacheable format.
  [[nodiscard]] DetectionReport check_table(
      Function f,
      const std::function<std::int64_t(std::size_t)>& read_word) const;

  /// Convenience: run check_table over every built table of @p batch,
  /// reading entries through its (possibly fault-armed) evaluate_raw path.
  /// Evaluates in small serial chunks — safe for non-thread-safe ports as
  /// long as batch.options().parallel_threshold > 1024.
  [[nodiscard]] DetectionReport check_batch(
      const core::BatchNacu& batch) const;

  /// Pipeline battery: the probe grid (strided) driven through @p rtl with
  /// run_single; range, symmetry, oddness and monotonicity on the retired
  /// values. Catches persistent (stuck-at) pipeline defects; single-cycle
  /// transients need temporal_vote3 at the moment of the computation.
  [[nodiscard]] DetectionReport check_rtl(hw::NacuRtl& rtl) const;

 private:
  struct FunctionCal {
    std::int64_t range_lo = 0;     ///< min legal raw output
    std::int64_t range_hi = 0;     ///< max legal raw output
    std::int64_t mono_tol = 0;     ///< max legal backstep, raw
    std::int64_t cont_slack = 0;   ///< slack beyond slope-bound · Δx, raw
  };

  [[nodiscard]] std::int64_t scalar_raw(const core::Nacu& unit, Function f,
                                        std::int64_t raw) const;
  /// Range/monotonicity/continuity/symmetry sweep over one function's
  /// outputs at the probe rows; shared by check_unit and check_rtl.
  void probe_battery(Function f,
                     const std::function<std::int64_t(std::int64_t)>& eval,
                     std::size_t stride, DetectionReport& report) const;
  void calibrate();

  core::NacuConfig config_;
  CheckerOptions options_;
  core::Nacu golden_;
  std::vector<std::int64_t> probes_;  ///< sorted raw inputs, mirrored
  std::array<std::vector<std::int16_t>, core::BatchNacu::kFunctionCount>
      golden_tables_;
  std::array<std::vector<bool>, core::BatchNacu::kFunctionCount>
      table_parity_;
  std::vector<bool> lut_slope_parity_;
  std::vector<bool> lut_bias_parity_;
  std::int64_t slope_hi_ = 0;  ///< max legal m1 raw (0.25 on the coeff grid)
  std::int64_t bias_lo_ = 0;   ///< 0.5 on the coefficient grid
  std::int64_t bias_hi_ = 0;   ///< 1.0 on the coefficient grid
  std::array<FunctionCal, core::BatchNacu::kFunctionCount> cal_;
  std::int64_t sym_tol_ = 0;   ///< |σ(x)+σ(−x)−1| clean max + margin, raw
  std::int64_t odd_tol_ = 0;   ///< |tanh(x)+tanh(−x)| clean max + margin
  std::vector<std::int64_t> softmax_probe_;  ///< fixed probe vector, raw
  std::int64_t softmax_sum_tol_ = 0;
  std::int64_t softmax_elem_lo_ = 0;  ///< §VIII reciprocal bias can dip <0
  std::int64_t softmax_elem_hi_ = 0;
  std::int64_t softmax_half_hi_ = 0;  ///< Eq. 13 operand guard: σ(x≤0) bound
};

}  // namespace nacu::fault
