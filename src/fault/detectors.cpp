#include "fault/detectors.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

namespace nacu::fault {

namespace {

/// Even parity of the low @p width bits of @p word.
bool parity_of(std::int64_t word, int width) {
  const std::uint64_t mask =
      width >= 64 ? ~std::uint64_t{0}
                  : (std::uint64_t{1} << width) - 1;
  return (std::popcount(static_cast<std::uint64_t>(word) & mask) & 1) != 0;
}

/// Continuity slope bound in raw LSBs for a raw input gap: σ' ≤ 1/4,
/// tanh' ≤ 1, (e^x)' ≤ 1 on x ≤ 0. Input and output share the datapath
/// grid, so the bound is a shift of the gap.
std::int64_t slope_bound(core::BatchNacu::Function f, std::int64_t dx) {
  return f == core::BatchNacu::Function::Sigmoid ? dx >> 2 : dx;
}

/// Whether the continuity bound applies to the pair (a, b): everywhere for
/// σ/tanh; only on the x ≤ 0 half for e^x (its slope is unbounded above 0).
bool continuity_applies(core::BatchNacu::Function f, std::int64_t a,
                        std::int64_t b) {
  return f != core::BatchNacu::Function::Exp || (a <= 0 && b <= 0);
}

}  // namespace

const char* detector_name(Detector d) noexcept {
  switch (d) {
    case Detector::CoefficientRange:
      return "coeff-range";
    case Detector::OutputRange:
      return "output-range";
    case Detector::CentroSymmetry:
      return "centro-symmetry";
    case Detector::TanhOddness:
      return "tanh-oddness";
    case Detector::Monotonicity:
      return "monotonicity";
    case Detector::Continuity:
      return "continuity";
    case Detector::SoftmaxSum:
      return "softmax-sum";
    case Detector::TableParity:
      return "table-parity";
    case Detector::TemporalVote:
      return "temporal-vote";
  }
  return "?";
}

std::string DetectionReport::to_string() const {
  if (!flagged()) {
    return "-";
  }
  std::string out;
  for (std::size_t d = 0; d < kDetectorCount; ++d) {
    if (flagged(static_cast<Detector>(d))) {
      if (!out.empty()) {
        out += '|';
      }
      out += detector_name(static_cast<Detector>(d));
    }
  }
  return out;
}

VoteResult temporal_vote3(const std::function<std::int64_t()>& evaluate) {
  const std::int64_t a = evaluate();
  const std::int64_t b = evaluate();
  const std::int64_t c = evaluate();
  VoteResult vote;
  vote.disagreed = !(a == b && b == c);
  // A single-cycle upset corrupts at most one of the three runs, so two
  // always agree; a three-way split (multi-fault) falls back to the first.
  vote.majority = (a == b || a == c) ? a : (b == c ? b : a);
  return vote;
}

InvariantChecker::InvariantChecker(const core::NacuConfig& config,
                                   CheckerOptions options)
    : config_{config}, options_{options}, golden_{config} {
  if (options_.rtl_probe_stride == 0) {
    options_.rtl_probe_stride = 1;
  }
  calibrate();
}

std::int64_t InvariantChecker::scalar_raw(const core::Nacu& unit, Function f,
                                          std::int64_t raw) const {
  const fp::Fixed x = fp::Fixed::from_raw(raw, config_.format);
  switch (f) {
    case Function::Sigmoid:
      return unit.sigmoid(x).raw();
    case Function::Tanh:
      return unit.tanh(x).raw();
    case Function::Exp:
      return unit.exp(x).raw();
  }
  throw std::logic_error("InvariantChecker: unknown function");
}

void InvariantChecker::calibrate() {
  const fp::Format fmt = config_.format;
  const std::int64_t max_raw = fmt.max_raw();
  const std::int64_t min_raw = fmt.min_raw();
  const std::int64_t one = std::int64_t{1} << fmt.fractional_bits();

  // --- Probe grid: σ segment boundaries (and the half positions tanh's
  // 2|x| stretch lands on), segment midpoints, format extremes; mirrored.
  {
    std::vector<std::int64_t> grid;
    const auto entries = static_cast<std::int64_t>(config_.lut_entries);
    for (std::int64_t i = 0; i <= entries; ++i) {
      const std::int64_t b = max_raw * i / entries;
      const std::int64_t b_next = max_raw * std::min(i + 1, entries) / entries;
      grid.push_back(b);
      grid.push_back(std::min(b + 1, max_raw));
      grid.push_back((b + b_next) / 2);
      grid.push_back(b / 2);
      grid.push_back(std::min(b / 2 + 1, max_raw));
    }
    grid.push_back(0);
    grid.push_back(max_raw);
    const std::size_t positive = grid.size();
    for (std::size_t k = 0; k < positive; ++k) {
      if (grid[k] > 0) {
        grid.push_back(-grid[k]);
      }
    }
    grid.push_back(min_raw);
    std::sort(grid.begin(), grid.end());
    grid.erase(std::unique(grid.begin(), grid.end()), grid.end());
    probes_ = std::move(grid);
  }

  // --- σ-LUT word signatures and §V.A coefficient bounds.
  const core::SigmoidLut& lut = golden_.lut();
  const int coeff_width = config_.coeff_format.width();
  const int coeff_fb = config_.coeff_format.fractional_bits();
  slope_hi_ = std::int64_t{1} << (coeff_fb - 2);  // m1 ≤ 0.25
  bias_lo_ = std::int64_t{1} << (coeff_fb - 1);   // q ≥ 0.5
  bias_hi_ = std::int64_t{1} << coeff_fb;         // q ≤ 1
  lut_slope_parity_.resize(lut.entries());
  lut_bias_parity_.resize(lut.entries());
  for (std::size_t i = 0; i < lut.entries(); ++i) {
    const std::int64_t m = lut.slope_raw(i);
    const std::int64_t q = lut.bias_raw(i);
    lut_slope_parity_[i] = parity_of(m, coeff_width);
    lut_bias_parity_[i] = parity_of(q, coeff_width);
    slope_hi_ = std::max(slope_hi_, m);
    bias_lo_ = std::min(bias_lo_, q);
    bias_hi_ = std::max(bias_hi_, q);
  }

  // --- Dense golden tables + parity signatures (cacheable formats).
  const bool cacheable = fmt.width() <= core::BatchNacu::kMaxTableWidth;
  if (cacheable) {
    const auto entries = static_cast<std::size_t>(max_raw - min_raw + 1);
    for (std::size_t fi = 0; fi < core::BatchNacu::kFunctionCount; ++fi) {
      const auto f = static_cast<Function>(fi);
      std::vector<std::int16_t> table(entries);
      std::vector<bool> parity(entries);
      for (std::size_t w = 0; w < entries; ++w) {
        const std::int64_t v =
            scalar_raw(golden_, f, min_raw + static_cast<std::int64_t>(w));
        table[w] = static_cast<std::int16_t>(v);
        parity[w] = parity_of(v, fmt.width());
      }
      golden_tables_[fi] = std::move(table);
      table_parity_[fi] = std::move(parity);
    }
  }

  // --- Tolerance calibration: measure the clean unit's worst deviation
  // from each ideal invariant, over the dense domain when available and
  // the probe grid always, then add margin_lsb.
  const std::int64_t margin = options_.margin_lsb;
  for (std::size_t fi = 0; fi < core::BatchNacu::kFunctionCount; ++fi) {
    const auto f = static_cast<Function>(fi);
    FunctionCal& cal = cal_[fi];
    // Theoretical output envelopes; widened below by anything the clean
    // unit actually produces.
    switch (f) {
      case Function::Sigmoid:
        cal.range_lo = 0;
        cal.range_hi = one;
        break;
      case Function::Tanh:
        cal.range_lo = -one;
        cal.range_hi = one;
        break;
      case Function::Exp:
        cal.range_lo = 0;
        cal.range_hi = max_raw;  // positive inputs saturate
        break;
    }
    std::int64_t backstep = 0;
    std::int64_t cont = 0;

    std::vector<std::int64_t> vals(probes_.size());
    for (std::size_t k = 0; k < probes_.size(); ++k) {
      vals[k] = scalar_raw(golden_, f, probes_[k]);
      cal.range_lo = std::min(cal.range_lo, vals[k]);
      cal.range_hi = std::max(cal.range_hi, vals[k]);
    }
    // All ordered probe pairs, so any stride's adjacency is covered.
    for (std::size_t i = 0; i < probes_.size(); ++i) {
      for (std::size_t j = i + 1; j < probes_.size(); ++j) {
        backstep = std::max(backstep, vals[i] - vals[j]);
        if (continuity_applies(f, probes_[i], probes_[j])) {
          cont = std::max(cont, vals[j] - vals[i] -
                                    slope_bound(f, probes_[j] - probes_[i]));
        }
      }
    }
    if (cacheable) {
      const std::vector<std::int16_t>& table = golden_tables_[fi];
      for (std::size_t w = 0; w < table.size(); ++w) {
        const std::int64_t v = table[w];
        const std::int64_t x = min_raw + static_cast<std::int64_t>(w);
        cal.range_lo = std::min(cal.range_lo, v);
        cal.range_hi = std::max(cal.range_hi, v);
        if (w > 0) {
          backstep = std::max(backstep, std::int64_t{table[w - 1]} - v);
          if (continuity_applies(f, x - 1, x)) {
            cont = std::max(cont, v - table[w - 1] - slope_bound(f, 1));
          }
        }
      }
    }
    cal.mono_tol = backstep + margin;
    cal.cont_slack = cont + margin;
  }

  // Symmetry/oddness deviations over mirrored pairs (probes + table).
  std::int64_t sym = 0;
  std::int64_t odd = 0;
  std::int64_t half_hi = one / 2;  // σ(x ≤ 0) ≤ 0.5 — the Eq. 13 operand
  for (const std::int64_t p : probes_) {
    if (p < 0 || -p < min_raw) {
      continue;
    }
    const std::int64_t sp = scalar_raw(golden_, Function::Sigmoid, p);
    const std::int64_t sn = scalar_raw(golden_, Function::Sigmoid, -p);
    sym = std::max(sym, std::abs(sp + sn - one));
    const std::int64_t tp = scalar_raw(golden_, Function::Tanh, p);
    const std::int64_t tn = scalar_raw(golden_, Function::Tanh, -p);
    odd = std::max(odd, std::abs(tp + tn));
    half_hi = std::max(half_hi, sn);
  }
  if (cacheable) {
    const std::vector<std::int16_t>& sig =
        golden_tables_[static_cast<std::size_t>(Function::Sigmoid)];
    const std::vector<std::int16_t>& tnh =
        golden_tables_[static_cast<std::size_t>(Function::Tanh)];
    for (std::int64_t r = 0; r <= max_raw; ++r) {
      const auto wp = static_cast<std::size_t>(r - min_raw);
      const auto wn = static_cast<std::size_t>(-r - min_raw);
      sym = std::max(sym, std::abs(std::int64_t{sig[wp]} +
                                   std::int64_t{sig[wn]} - one));
      odd = std::max(odd,
                     std::abs(std::int64_t{tnh[wp]} + std::int64_t{tnh[wn]}));
      half_hi = std::max(half_hi, std::int64_t{sig[wn]});
    }
  }
  sym_tol_ = sym + margin;
  odd_tol_ = odd + margin;

  // --- Softmax probe vector and its clean sum deviation (Eq. 13).
  softmax_probe_ = {0,           max_raw / 2, -max_raw / 2, max_raw / 4,
                    -max_raw / 4, max_raw / 8, -max_raw / 8, -max_raw};
  std::vector<fp::Fixed> sm_in;
  sm_in.reserve(softmax_probe_.size());
  for (const std::int64_t r : softmax_probe_) {
    sm_in.push_back(fp::Fixed::from_raw(r, fmt));
  }
  const std::vector<fp::Fixed> sm_out = golden_.softmax(sm_in);
  std::int64_t sum = 0;
  std::int64_t elem_lo = 0;  // §VIII approximate reciprocal can dip below 0
  std::int64_t elem_hi = one;
  for (const fp::Fixed& p : sm_out) {
    sum += p.raw();
    elem_lo = std::min(elem_lo, p.raw());
    elem_hi = std::max(elem_hi, p.raw());
  }
  softmax_sum_tol_ = std::abs(sum - one) + margin;
  softmax_elem_lo_ = elem_lo - margin;
  softmax_elem_hi_ = elem_hi + margin;
  softmax_half_hi_ = half_hi + margin;
}

void InvariantChecker::probe_battery(
    Function f, const std::function<std::int64_t(std::int64_t)>& eval,
    std::size_t stride, DetectionReport& report) const {
  const FunctionCal& cal = cal_[static_cast<std::size_t>(f)];
  std::vector<std::int64_t> xs;
  std::vector<std::int64_t> vals;
  xs.reserve(probes_.size() / stride + 1);
  vals.reserve(probes_.size() / stride + 1);
  for (std::size_t k = 0; k < probes_.size(); k += stride) {
    xs.push_back(probes_[k]);
    vals.push_back(eval(probes_[k]));
  }
  for (std::size_t k = 0; k < xs.size(); ++k) {
    if (vals[k] < cal.range_lo || vals[k] > cal.range_hi) {
      report.flag(Detector::OutputRange);
    }
    if (f == Function::Sigmoid && xs[k] <= 0 && vals[k] > softmax_half_hi_) {
      report.flag(Detector::SoftmaxSum);  // Eq. 13 operand guard
    }
    if (k > 0) {
      if (vals[k - 1] - vals[k] > cal.mono_tol) {
        report.flag(Detector::Monotonicity);
      }
      if (continuity_applies(f, xs[k - 1], xs[k]) &&
          vals[k] - vals[k - 1] >
              slope_bound(f, xs[k] - xs[k - 1]) + cal.cont_slack) {
        report.flag(Detector::Continuity);
      }
    }
  }
  if (f == Function::Exp) {
    return;
  }
  // Mirrored pairs via two pointers over the sorted grid.
  const std::int64_t one = std::int64_t{1} << config_.format.fractional_bits();
  std::size_t i = 0;
  std::size_t j = xs.size();
  while (j > 0 && i < j - 1) {
    const std::int64_t s = xs[i] + xs[j - 1];
    if (s < 0) {
      ++i;
    } else if (s > 0) {
      --j;
    } else {
      const std::int64_t pair = vals[i] + vals[j - 1];
      if (f == Function::Sigmoid && std::abs(pair - one) > sym_tol_) {
        report.flag(Detector::CentroSymmetry);
      }
      if (f == Function::Tanh && std::abs(pair) > odd_tol_) {
        report.flag(Detector::TanhOddness);
      }
      ++i;
      --j;
    }
  }
}

DetectionReport InvariantChecker::check_unit(const core::Nacu& unit) const {
  DetectionReport report;
  // σ-LUT word scan: §V.A coefficient bounds + parity signatures. Reads go
  // through the unit's LUT accessors, i.e. through any armed fault port.
  const core::SigmoidLut& lut = unit.lut();
  const int coeff_width = config_.coeff_format.width();
  for (std::size_t i = 0; i < lut.entries(); ++i) {
    const std::int64_t m = lut.slope_raw(i);
    const std::int64_t q = lut.bias_raw(i);
    if (m < 0 || m > slope_hi_ || q < bias_lo_ || q > bias_hi_) {
      report.flag(Detector::CoefficientRange);
    }
    if (i < lut_slope_parity_.size() &&
        (parity_of(m, coeff_width) != lut_slope_parity_[i] ||
         parity_of(q, coeff_width) != lut_bias_parity_[i])) {
      report.flag(Detector::TableParity);
    }
  }
  // Probe battery through the full scalar datapath.
  for (std::size_t fi = 0; fi < core::BatchNacu::kFunctionCount; ++fi) {
    const auto f = static_cast<Function>(fi);
    probe_battery(
        f, [&](std::int64_t raw) { return scalar_raw(unit, f, raw); }, 1,
        report);
  }
  // Eq. 13 sum check through the unit's full softmax path.
  std::vector<fp::Fixed> sm_in;
  sm_in.reserve(softmax_probe_.size());
  for (const std::int64_t r : softmax_probe_) {
    sm_in.push_back(fp::Fixed::from_raw(r, config_.format));
  }
  const std::vector<fp::Fixed> sm_out = unit.softmax(sm_in);
  std::int64_t sum = 0;
  const std::int64_t one = std::int64_t{1} << config_.format.fractional_bits();
  for (const fp::Fixed& p : sm_out) {
    if (p.raw() < softmax_elem_lo_ || p.raw() > softmax_elem_hi_) {
      report.flag(Detector::SoftmaxSum);
    }
    sum += p.raw();
  }
  if (std::abs(sum - one) > softmax_sum_tol_) {
    report.flag(Detector::SoftmaxSum);
  }
  return report;
}

bool InvariantChecker::word_intact(Function f, std::size_t word,
                                   std::int64_t entry) const noexcept {
  const auto fi = static_cast<std::size_t>(f);
  const std::vector<bool>& parity = table_parity_[fi];
  if (word >= parity.size()) {
    return true;  // no signature for this word — nothing to check against
  }
  if (parity_of(entry, config_.format.width()) != parity[word]) {
    return false;
  }
  const FunctionCal& cal = cal_[fi];
  return entry >= cal.range_lo && entry <= cal.range_hi;
}

DetectionReport InvariantChecker::check_table(
    Function f,
    const std::function<std::int64_t(std::size_t)>& read_word) const {
  const auto fi = static_cast<std::size_t>(f);
  const std::vector<std::int16_t>& golden = golden_tables_[fi];
  if (golden.empty()) {
    throw std::logic_error(
        "InvariantChecker::check_table: format has no dense table");
  }
  DetectionReport report;
  const FunctionCal& cal = cal_[fi];
  const fp::Format fmt = config_.format;
  const std::int64_t min_raw = fmt.min_raw();
  const std::int64_t max_raw = fmt.max_raw();
  const std::int64_t one = std::int64_t{1} << fmt.fractional_bits();
  std::int64_t prev = 0;
  for (std::size_t w = 0; w < golden.size(); ++w) {
    const std::int64_t v = read_word(w);
    const std::int64_t x = min_raw + static_cast<std::int64_t>(w);
    if (parity_of(v, fmt.width()) != table_parity_[fi][w]) {
      report.flag(Detector::TableParity);
    }
    if (v < cal.range_lo || v > cal.range_hi) {
      report.flag(Detector::OutputRange);
    }
    if (f == Function::Sigmoid && x <= 0 && v > softmax_half_hi_) {
      report.flag(Detector::SoftmaxSum);
    }
    if (w > 0) {
      if (prev - v > cal.mono_tol) {
        report.flag(Detector::Monotonicity);
      }
      if (continuity_applies(f, x - 1, x) &&
          v - prev > slope_bound(f, 1) + cal.cont_slack) {
        report.flag(Detector::Continuity);
      }
    }
    prev = v;
  }
  if (f == Function::Exp) {
    return report;
  }
  for (std::int64_t r = 0; r <= max_raw; ++r) {
    const std::int64_t vp = read_word(static_cast<std::size_t>(r - min_raw));
    const std::int64_t vn = read_word(static_cast<std::size_t>(-r - min_raw));
    if (f == Function::Sigmoid && std::abs(vp + vn - one) > sym_tol_) {
      report.flag(Detector::CentroSymmetry);
    }
    if (f == Function::Tanh && std::abs(vp + vn) > odd_tol_) {
      report.flag(Detector::TanhOddness);
    }
  }
  return report;
}

DetectionReport InvariantChecker::check_batch(
    const core::BatchNacu& batch) const {
  DetectionReport report;
  const std::int64_t min_raw = config_.format.min_raw();
  for (std::size_t fi = 0; fi < core::BatchNacu::kFunctionCount; ++fi) {
    const auto f = static_cast<Function>(fi);
    if (!batch.table_built(f)) {
      continue;
    }
    report.merge(check_table(f, [&](std::size_t w) {
      const std::int64_t in = min_raw + static_cast<std::int64_t>(w);
      std::int64_t out = 0;
      batch.evaluate_raw(f, std::span<const std::int64_t>{&in, 1},
                         std::span<std::int64_t>{&out, 1});
      return out;
    }));
  }
  return report;
}

DetectionReport InvariantChecker::check_rtl(hw::NacuRtl& rtl) const {
  DetectionReport report;
  const fp::Format fmt = config_.format;
  const auto hw_func = [](Function f) {
    switch (f) {
      case Function::Sigmoid:
        return hw::Func::Sigmoid;
      case Function::Tanh:
        return hw::Func::Tanh;
      case Function::Exp:
        return hw::Func::Exp;
    }
    return hw::Func::Sigmoid;
  };
  for (std::size_t fi = 0; fi < core::BatchNacu::kFunctionCount; ++fi) {
    const auto f = static_cast<Function>(fi);
    probe_battery(
        f,
        [&](std::int64_t raw) {
          return rtl.run_single(hw_func(f), fp::Fixed::from_raw(raw, fmt))
              .value.raw();
        },
        options_.rtl_probe_stride, report);
  }
  return report;
}

}  // namespace nacu::fault
