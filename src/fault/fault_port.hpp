// Fault-injection port — the seam between the NACU state surfaces and the
// resilience subsystem.
//
// Deployed NACU state is SRAM and flops: the σ coefficient LUT words, the
// S1–S3 pipeline registers of the cycle-accurate model, and BatchNacu's
// dense activation tables. Each of those classes owns an optional, non-owned
// `BitFaultPort*` (nullptr by default) and routes every architectural read
// of a state word through it when armed. With no port attached the hook is
// a single pointer compare — the fault machinery costs nothing in the
// fault-free fast path and the numerical behaviour is exactly the seed's.
//
// This header is deliberately dependency-free (interface only) so that
// nacu_core / nacu_hwmodel can include it without linking the fault library;
// the concrete FaultInjector lives in fault_injector.hpp and links the other
// way around.
#pragma once

#include <cstddef>
#include <cstdint>

namespace nacu::fault {

/// One word-addressable state surface of the NACU datapath.
enum class Surface : std::uint8_t {
  LutSlope,      ///< core::SigmoidLut m1 words, word = segment index
  LutBias,       ///< core::SigmoidLut q words, word = segment index
  RtlPipeline,   ///< hw::NacuRtl S1–S3 stage-register fields (see NacuRtl)
  TableSigmoid,  ///< core::BatchNacu σ table, word = raw − min_raw
  TableTanh,     ///< core::BatchNacu tanh table, word = raw − min_raw
  TableExp,      ///< core::BatchNacu e^x table, word = raw − min_raw
};
inline constexpr std::size_t kSurfaceCount = 6;

[[nodiscard]] constexpr const char* surface_name(Surface s) noexcept {
  switch (s) {
    case Surface::LutSlope: return "lut-slope";
    case Surface::LutBias: return "lut-bias";
    case Surface::RtlPipeline: return "rtl-pipeline";
    case Surface::TableSigmoid: return "table-sigmoid";
    case Surface::TableTanh: return "table-tanh";
    case Surface::TableExp: return "table-exp";
  }
  return "?";
}

/// Read-interception interface. The stored state is never mutated; faults
/// live in the port and are applied on the way out of the "SRAM"/flop —
/// which is also what makes stuck-at faults survive a scrub naturally.
class BitFaultPort {
 public:
  virtual ~BitFaultPort() = default;

  /// A state word is being read. @p clean is the stored (golden) value as a
  /// sign-extended two's-complement integer occupying @p width bits; the
  /// returned value must also fit @p width bits (fault application flips or
  /// forces bits *within* the physical word, so it cannot escape the range
  /// a downstream fp::Fixed::from_raw accepts).
  [[nodiscard]] virtual std::int64_t read(Surface surface, std::size_t word,
                                          std::int64_t clean,
                                          int width) noexcept = 0;

  /// The word was rewritten with a freshly computed value (a controller
  /// scrub, or a pipeline flop clocking in its next state). Transient upsets
  /// on the word are healed; stuck-at defects persist.
  virtual void on_rewrite(Surface /*surface*/, std::size_t /*word*/) noexcept {
  }
};

}  // namespace nacu::fault
