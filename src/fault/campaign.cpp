#include "fault/campaign.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace nacu::fault {

namespace {

using Function = InvariantChecker::Function;

std::int64_t eval_scalar(const core::Nacu& unit, Function f, std::int64_t raw,
                         fp::Format fmt) {
  const fp::Fixed x = fp::Fixed::from_raw(raw, fmt);
  switch (f) {
    case Function::Sigmoid:
      return unit.sigmoid(x).raw();
    case Function::Tanh:
      return unit.tanh(x).raw();
    case Function::Exp:
      return unit.exp(x).raw();
  }
  throw std::logic_error("campaign: unknown function");
}

hw::Func hw_func(Function f) {
  switch (f) {
    case Function::Sigmoid:
      return hw::Func::Sigmoid;
    case Function::Tanh:
      return hw::Func::Tanh;
    case Function::Exp:
      return hw::Func::Exp;
  }
  return hw::Func::Sigmoid;
}

Outcome classify(const TrialResult& t) {
  if (!t.corrupted) {
    return t.detection.flagged() ? Outcome::DetectedBenign : Outcome::Masked;
  }
  if (!t.detection.flagged()) {
    return Outcome::SilentCorruption;
  }
  return t.recovered ? Outcome::DetectedCorrected
                     : Outcome::DetectedUnrecoverable;
}

/// Counter-based per-trial seed: identical streams regardless of which pool
/// thread runs the trial (splitmix64-style mixing).
std::mt19937_64 trial_rng(std::uint64_t seed, std::uint64_t index) {
  std::uint64_t z = (seed + 0x9E3779B97F4A7C15ull) +
                    index * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return std::mt19937_64{z ^ (z >> 31)};
}

/// Modulo draw: biased by < 2^-50 for our ranges, and — unlike
/// std::uniform_int_distribution — bit-identical across standard libraries.
std::size_t draw_below(std::mt19937_64& rng, std::size_t n) {
  return static_cast<std::size_t>(rng() % n);
}

void fnv_mix(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xFF;
    h *= 1099511628211ull;
  }
}

}  // namespace

std::vector<FaultModel> all_fault_models() {
  return {FaultModel::TransientSeu, FaultModel::StuckAt0,
          FaultModel::StuckAt1};
}

const char* outcome_name(Outcome o) noexcept {
  switch (o) {
    case Outcome::Masked:
      return "masked";
    case Outcome::DetectedBenign:
      return "detected-benign";
    case Outcome::DetectedCorrected:
      return "detected-corrected";
    case Outcome::DetectedUnrecoverable:
      return "detected-unrecoverable";
    case Outcome::SilentCorruption:
      return "silent-corruption";
  }
  return "?";
}

std::size_t CampaignReport::corrupted_trials() const noexcept {
  return by_outcome[static_cast<std::size_t>(Outcome::DetectedCorrected)] +
         by_outcome[static_cast<std::size_t>(
             Outcome::DetectedUnrecoverable)] +
         by_outcome[static_cast<std::size_t>(Outcome::SilentCorruption)];
}

std::size_t CampaignReport::detected_corrupted() const noexcept {
  return by_outcome[static_cast<std::size_t>(Outcome::DetectedCorrected)] +
         by_outcome[static_cast<std::size_t>(Outcome::DetectedUnrecoverable)];
}

double CampaignReport::detection_coverage() const noexcept {
  const std::size_t corrupted = corrupted_trials();
  if (corrupted == 0) {
    return 1.0;
  }
  return static_cast<double>(detected_corrupted()) /
         static_cast<double>(corrupted);
}

std::uint64_t CampaignReport::fingerprint() const noexcept {
  std::uint64_t h = 14695981039346656037ull;
  for (const TrialResult& t : results) {
    fnv_mix(h, static_cast<std::uint64_t>(t.fault.surface));
    fnv_mix(h, t.fault.word);
    fnv_mix(h, static_cast<std::uint64_t>(t.fault.bit));
    fnv_mix(h, static_cast<std::uint64_t>(t.fault.model));
    fnv_mix(h, static_cast<std::uint64_t>(t.outcome));
    fnv_mix(h, t.detection.flags);
    fnv_mix(h, (t.corrupted ? 1u : 0u) | (t.recovered ? 2u : 0u));
  }
  return h;
}

std::string CampaignReport::summary() const {
  static constexpr const char* kShortOutcome[kOutcomeCount] = {
      "masked", "benign", "corrected", "unrecov", "sdc"};
  std::ostringstream out;
  out << "fault campaign: " << trials << " trials\n";
  out << std::left << std::setw(16) << "surface";
  for (std::size_t o = 0; o < kOutcomeCount; ++o) {
    out << std::right << std::setw(12) << kShortOutcome[o];
  }
  out << std::right << std::setw(12) << "trials" << "\n";
  for (std::size_t s = 0; s < kSurfaceCount; ++s) {
    if (surface_trials[s] == 0) {
      continue;
    }
    out << std::left << std::setw(16)
        << surface_name(static_cast<Surface>(s));
    for (std::size_t o = 0; o < kOutcomeCount; ++o) {
      out << std::right << std::setw(12) << by_surface[s][o];
    }
    out << std::right << std::setw(12) << surface_trials[s] << "\n";
  }
  out << std::left << std::setw(16) << "total";
  for (std::size_t o = 0; o < kOutcomeCount; ++o) {
    out << std::right << std::setw(12) << by_outcome[o];
  }
  out << std::right << std::setw(12) << trials << "\n";
  out << "corrupting injections: " << corrupted_trials() << ", detected: "
      << detected_corrupted() << " (coverage "
      << std::fixed << std::setprecision(2) << 100.0 * detection_coverage()
      << "%)\n";
  out << "detector hits on corrupting trials:";
  for (std::size_t d = 0; d < kDetectorCount; ++d) {
    if (detector_hits[d] != 0) {
      out << ' ' << detector_name(static_cast<Detector>(d)) << '='
          << detector_hits[d];
    }
  }
  out << "\n";
  return out.str();
}

CampaignRunner::CampaignRunner(CampaignConfig config)
    : config_{std::move(config)},
      checker_{config_.unit, config_.checker},
      pool_{config_.pool != nullptr ? config_.pool
                                    : &core::ThreadPool::shared()} {
  if (config_.trials == 0) {
    throw std::invalid_argument("CampaignRunner: trials must be > 0");
  }
  if (config_.models.empty()) {
    throw std::invalid_argument("CampaignRunner: no fault models enabled");
  }
  const fp::Format fmt = config_.unit.format;
  const bool cacheable = fmt.width() <= core::BatchNacu::kMaxTableWidth;
  for (std::size_t s = 0; s < kSurfaceCount; ++s) {
    const auto surface = static_cast<Surface>(s);
    bool enabled = config_.surfaces[s];
    const bool is_table = surface == Surface::TableSigmoid ||
                          surface == Surface::TableTanh ||
                          surface == Surface::TableExp;
    if (is_table && !cacheable) {
      enabled = false;  // no dense table exists for this format
    }
    if (enabled) {
      active_surfaces_.push_back(surface);
    }
  }
  if (active_surfaces_.empty()) {
    throw std::invalid_argument("CampaignRunner: no target surfaces enabled");
  }

  // Inverse segment maps: the exact input set each LUT word can influence
  // (σ and e^x read the segment of |x|; tanh reads the segment of 2|x|).
  // Exhaustive for cacheable formats, probe-grid otherwise.
  const core::Nacu& golden = checker_.golden();
  sigma_affected_.resize(golden.lut().entries());
  tanh_affected_.resize(golden.lut().entries());
  const auto map_input = [&](std::int64_t raw) {
    const fp::Fixed mag = fp::Fixed::from_raw(raw, fmt).abs();
    sigma_affected_[golden.segment_for_magnitude(mag, false)].push_back(
        static_cast<std::int32_t>(raw));
    tanh_affected_[golden.segment_for_magnitude(mag, true)].push_back(
        static_cast<std::int32_t>(raw));
  };
  if (cacheable) {
    for (std::int64_t raw = fmt.min_raw(); raw <= fmt.max_raw(); ++raw) {
      map_input(raw);
    }
  } else {
    for (const std::int64_t raw : checker_.probes()) {
      map_input(raw);
    }
  }

  // Steady-state pipeline workload: ~pipeline_ops probes, the three
  // functions interleaved so every stage stays busy.
  const std::vector<std::int64_t>& probes = checker_.probes();
  const std::size_t per_func =
      std::max<std::size_t>(1, config_.pipeline_ops / 3);
  const std::size_t stride = std::max<std::size_t>(1, probes.size() / per_func);
  for (std::size_t k = 0; k < probes.size(); k += stride) {
    for (std::size_t fi = 0; fi < core::BatchNacu::kFunctionCount; ++fi) {
      const auto f = static_cast<Function>(fi);
      stream_ops_.push_back(StreamOp{hw_func(f), probes[k],
                                     golden_scalar(f, probes[k])});
    }
  }

  hw::NacuRtl width_probe{core::Nacu{golden}};
  for (std::size_t w = 0; w < hw::NacuRtl::kFaultWords; ++w) {
    pipeline_widths_[w] = width_probe.fault_word_width(w);
  }
}

std::int64_t CampaignRunner::golden_scalar(Function f,
                                           std::int64_t raw) const {
  const std::vector<std::int16_t>& table = checker_.golden_table(f);
  if (!table.empty()) {
    return table[static_cast<std::size_t>(raw -
                                          config_.unit.format.min_raw())];
  }
  return eval_scalar(checker_.golden(), f, raw, config_.unit.format);
}

std::size_t CampaignRunner::surface_words(Surface s) const {
  switch (s) {
    case Surface::LutSlope:
    case Surface::LutBias:
      return checker_.golden().lut().entries();
    case Surface::RtlPipeline:
      return hw::NacuRtl::kFaultWords;
    case Surface::TableSigmoid:
      return checker_.golden_table(Function::Sigmoid).size();
    case Surface::TableTanh:
      return checker_.golden_table(Function::Tanh).size();
    case Surface::TableExp:
      return checker_.golden_table(Function::Exp).size();
  }
  return 0;
}

int CampaignRunner::word_width(Surface s, std::size_t word) const {
  switch (s) {
    case Surface::LutSlope:
    case Surface::LutBias:
      return config_.unit.coeff_format.width();
    case Surface::RtlPipeline:
      return pipeline_widths_[word];
    case Surface::TableSigmoid:
    case Surface::TableTanh:
    case Surface::TableExp:
      return config_.unit.format.width();
  }
  return 1;
}

Fault CampaignRunner::draw_fault(std::mt19937_64& rng) const {
  Fault fault;
  fault.surface = active_surfaces_[draw_below(rng, active_surfaces_.size())];
  fault.word = draw_below(rng, surface_words(fault.surface));
  fault.bit = static_cast<int>(
      draw_below(rng, static_cast<std::size_t>(
                          word_width(fault.surface, fault.word))));
  fault.model = config_.models[draw_below(rng, config_.models.size())];
  return fault;
}

TrialResult CampaignRunner::run_lut_trial(const Fault& fault) const {
  TrialResult trial;
  trial.fault = fault;
  const fp::Format fmt = config_.unit.format;
  core::Nacu unit{checker_.golden()};  // copy: no LUT refit
  FaultInjector injector;
  injector.arm(fault);
  unit.attach_lut_fault_port(&injector);

  // Ground truth: exhaustive over the inputs this LUT word can reach.
  const std::vector<std::int32_t>& sig_set = sigma_affected_[fault.word];
  const std::vector<std::int32_t>& tanh_set = tanh_affected_[fault.word];
  const auto differs = [&](Function f,
                           const std::vector<std::int32_t>& set) {
    for (const std::int32_t raw : set) {
      if (eval_scalar(unit, f, raw, fmt) != golden_scalar(f, raw)) {
        return true;
      }
    }
    return false;
  };
  trial.corrupted = differs(Function::Sigmoid, sig_set) ||
                    differs(Function::Tanh, tanh_set) ||
                    differs(Function::Exp, sig_set);

  trial.detection = checker_.check_unit(unit);

  if (trial.corrupted && trial.detection.flagged()) {
    // Recovery policy: controller scrub (rewrite every word from the golden
    // copy). Heals a transient; a stuck-at defect re-asserts on the next
    // read and the shared LUT has no redundant copy to fail over to.
    unit.scrub_lut();
    trial.recovered = !(differs(Function::Sigmoid, sig_set) ||
                        differs(Function::Tanh, tanh_set) ||
                        differs(Function::Exp, sig_set));
  }
  trial.outcome = classify(trial);
  return trial;
}

TrialResult CampaignRunner::run_table_trial(const Fault& fault) const {
  TrialResult trial;
  trial.fault = fault;
  const auto f = static_cast<Function>(
      static_cast<std::size_t>(fault.surface) -
      static_cast<std::size_t>(Surface::TableSigmoid));
  const std::vector<std::int16_t>& golden = checker_.golden_table(f);
  const int width = config_.unit.format.width();
  FaultInjector injector;
  injector.arm(fault);
  // The trial's table is the golden array viewed through the injector —
  // bit-identical to a fault-port-armed BatchNacu table read (proven by
  // tests/test_fault_detectors.cpp), without paying a full table build per
  // trial.
  const auto read_word = [&](std::size_t w) {
    return injector.read(fault.surface, w, golden[w], width);
  };

  // A table word backs exactly one input, so ground truth is one read.
  trial.corrupted = read_word(fault.word) != golden[fault.word];

  trial.detection = checker_.check_table(f, read_word);

  if (trial.corrupted && trial.detection.flagged()) {
    if (fault.model == FaultModel::TransientSeu) {
      // Scrub: rewrite the word from the scalar datapath.
      injector.on_rewrite(fault.surface, fault.word);
      trial.recovered = read_word(fault.word) == golden[fault.word];
    } else {
      // Stuck-at cells survive a scrub; the policy routes this function to
      // the scalar datapath instead (BatchNacu's table bypass), which the
      // fault cannot reach — recompute and confirm.
      const std::int64_t x = config_.unit.format.min_raw() +
                             static_cast<std::int64_t>(fault.word);
      trial.recovered =
          eval_scalar(checker_.golden(), f, x, config_.unit.format) ==
          golden[fault.word];
    }
  }
  trial.outcome = classify(trial);
  return trial;
}

std::vector<std::int64_t> CampaignRunner::run_stream(
    hw::NacuRtl& rtl, FaultInjector* injector, std::size_t arm_at) const {
  // Stream tags live far above run_single's per-instance counter so a
  // stale stream op re-retiring during later vote reruns cannot collide.
  constexpr std::uint64_t kTagBase = std::uint64_t{1} << 32;
  const fp::Format fmt = config_.unit.format;
  const std::size_t n = stream_ops_.size();
  // Reciprocal re-entry (§VIII) needs the S1 slot 3 cycles after an exp
  // issue; spacing issues 4 apart avoids the structural hazard.
  const std::size_t gap = config_.unit.approximate_reciprocal ? 4 : 1;
  std::vector<std::int64_t> out(n, 0);
  std::vector<bool> got(n, false);
  std::size_t issued = 0;
  std::size_t retired = 0;
  std::size_t cycle = 0;
  const std::size_t cap = n * gap + 256;
  while (retired < n) {
    if (cycle >= cap) {
      throw std::logic_error("campaign: pipeline stream did not drain");
    }
    if (injector != nullptr && cycle == arm_at) {
      rtl.attach_fault_port(injector);
    }
    if (issued < n && cycle % gap == 0) {
      rtl.issue(stream_ops_[issued].func,
                fp::Fixed::from_raw(stream_ops_[issued].in_raw, fmt),
                kTagBase + issued);
      ++issued;
    }
    rtl.tick();
    for (const hw::NacuRtl::Output& o : rtl.outputs()) {
      if (o.tag >= kTagBase && o.tag < kTagBase + n) {
        const auto k = static_cast<std::size_t>(o.tag - kTagBase);
        if (!got[k]) {
          got[k] = true;
          out[k] = o.value_raw;
          ++retired;
        }
      }
    }
    ++cycle;
  }
  // Flush stale stage/divider state so later probes start from bubbles (a
  // stale exp in S3 would otherwise re-enter S1 and collide with them).
  for (int i = 0; i < 16; ++i) {
    rtl.tick();
  }
  rtl.attach_fault_port(nullptr);
  return out;
}

TrialResult CampaignRunner::run_pipeline_trial(const Fault& fault,
                                               std::mt19937_64& rng) const {
  TrialResult trial;
  trial.fault = fault;
  const fp::Format fmt = config_.unit.format;
  hw::NacuRtl rtl{core::Nacu{checker_.golden()}};
  FaultInjector injector;
  injector.arm(fault);
  const std::size_t gap = config_.unit.approximate_reciprocal ? 4 : 1;
  // A transient upsets one flop at one random cycle of the busy window;
  // permanent defects are present from the first tick.
  const std::size_t arm_at =
      fault.model == FaultModel::TransientSeu
          ? draw_below(rng, std::max<std::size_t>(1, stream_ops_.size() * gap))
          : 0;
  const std::vector<std::int64_t> observed = run_stream(rtl, &injector, arm_at);

  for (std::size_t k = 0; k < stream_ops_.size(); ++k) {
    if (observed[k] != stream_ops_[k].golden_raw) {
      trial.corrupted = true;
      break;
    }
  }

  if (fault.model == FaultModel::TransientSeu) {
    // The upset is spent; detect and recover with the 2-of-3 temporal vote:
    // the streamed value plus two re-evaluations on the now-clean pipeline.
    bool majorities_match = true;
    for (std::size_t k = 0; k < stream_ops_.size(); ++k) {
      std::size_t calls = 0;
      const VoteResult vote = temporal_vote3([&]() -> std::int64_t {
        if (calls++ == 0) {
          return observed[k];
        }
        return rtl.run_single(stream_ops_[k].func,
                              fp::Fixed::from_raw(stream_ops_[k].in_raw, fmt))
            .value.raw();
      });
      if (vote.disagreed) {
        trial.detection.flag(Detector::TemporalVote);
      }
      if (vote.majority != stream_ops_[k].golden_raw) {
        majorities_match = false;
      }
    }
    trial.recovered =
        trial.corrupted && trial.detection.flagged() && majorities_match;
  } else {
    // Persistent defect: every re-evaluation is identically wrong, so the
    // vote is blind — the invariant probe battery through the live pipeline
    // is the detector. No redundant pipeline exists to recover with.
    rtl.attach_fault_port(&injector);
    trial.detection = checker_.check_rtl(rtl);
  }
  trial.outcome = classify(trial);
  return trial;
}

TrialResult CampaignRunner::run_trial(std::uint64_t index) const {
  std::mt19937_64 rng = trial_rng(config_.seed, index);
  const Fault fault = draw_fault(rng);
  switch (fault.surface) {
    case Surface::LutSlope:
    case Surface::LutBias:
      return run_lut_trial(fault);
    case Surface::RtlPipeline:
      return run_pipeline_trial(fault, rng);
    case Surface::TableSigmoid:
    case Surface::TableTanh:
    case Surface::TableExp:
      return run_table_trial(fault);
  }
  throw std::logic_error("campaign: unknown surface");
}

CampaignReport CampaignRunner::run() const {
  const obs::TraceSpan span{"CampaignRunner::run"};
  static obs::Histogram& campaign_ns =
      obs::histogram("fault.campaign.run_ns");
  const obs::ScopedTimer timer{campaign_ns};
  CampaignReport report;
  report.trials = config_.trials;
  report.results.resize(config_.trials);
  std::vector<TrialResult>& results = report.results;
  // Trials are independent and each seeds its own RNG from its index, so
  // the fan-out cannot perturb the report.
  pool_->parallel_for(config_.trials, /*grain=*/8,
                      [&](std::size_t begin, std::size_t end) {
                        for (std::size_t i = begin; i < end; ++i) {
                          results[i] = run_trial(i);
                        }
                      });
  for (const TrialResult& t : results) {
    const auto s = static_cast<std::size_t>(t.fault.surface);
    const auto o = static_cast<std::size_t>(t.outcome);
    ++report.by_outcome[o];
    ++report.by_surface[s][o];
    ++report.surface_trials[s];
    if (t.corrupted) {
      for (std::size_t d = 0; d < kDetectorCount; ++d) {
        if (t.detection.flagged(static_cast<Detector>(d))) {
          ++report.detector_hits[d];
        }
      }
    }
  }
  // Detection/recovery tallies, cumulative across campaigns — the same
  // numbers summary() prints, exported for registry().to_json() scraping.
  static obs::Counter& trials = obs::counter("fault.campaign.trials");
  static obs::Counter& corrupted = obs::counter("fault.campaign.corrupted");
  static obs::Counter& detected = obs::counter("fault.campaign.detected");
  static obs::Counter& recovered = obs::counter("fault.campaign.recovered");
  static obs::Counter& sdc =
      obs::counter("fault.campaign.silent_corruptions");
  trials.add(report.trials);
  corrupted.add(report.corrupted_trials());
  detected.add(report.detected_corrupted());
  recovered.add(report.by_outcome[static_cast<std::size_t>(
      Outcome::DetectedCorrected)]);
  sdc.add(report.by_outcome[static_cast<std::size_t>(
      Outcome::SilentCorruption)]);
  return report;
}

}  // namespace nacu::fault
