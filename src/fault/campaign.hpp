// Randomized fault-injection campaigns over the NACU datapath.
//
// Each trial arms exactly one single-bit fault (transient SEU or stuck-at,
// fault_injector.hpp) on one of the architectural state surfaces — σ-LUT
// coefficient words, pipeline stage registers, dense activation tables —
// then measures three things against the golden unit:
//
//   1. ground truth — would the fault corrupt any architecturally visible
//      output? (exhaustive over the inputs the faulted word can reach:
//      inverse segment maps give the affected-input set for LUT words, a
//      table word serves exactly one input, and pipeline faults are driven
//      through a steady-state op stream);
//   2. detection — which invariant detectors (detectors.hpp) flag it;
//   3. recovery — whether the matching policy restores bit-identical
//      outputs: LUT/table scrub for transients, recompute-via-scalar bypass
//      for stuck-at table words, 2-of-3 temporal vote for pipeline
//      transients. Stuck-at faults inside the shared LUT or the pipeline
//      itself have no redundant resource and stay unrecoverable.
//
// Trials fan out across core::ThreadPool, but every trial derives its
// randomness from a counter-based seed and results are aggregated by trial
// index — the report is bit-identical for a given (config, seed) regardless
// of thread count or scheduling.
#pragma once

#include <array>
#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "core/thread_pool.hpp"
#include "fault/detectors.hpp"
#include "fault/fault_injector.hpp"
#include "hwmodel/nacu_rtl.hpp"

namespace nacu::fault {

enum class Outcome : std::uint8_t {
  Masked = 0,             ///< no output corruption, no detector fired
  DetectedBenign,         ///< no output corruption, but detectors fired
  DetectedCorrected,      ///< corruption detected and recovery restored
                          ///< bit-identical outputs
  DetectedUnrecoverable,  ///< corruption detected; no recovery policy
  SilentCorruption,       ///< corruption escaped every detector (SDC)
};
inline constexpr std::size_t kOutcomeCount = 5;
[[nodiscard]] const char* outcome_name(Outcome o) noexcept;

/// All three fault models: transient SEU plus both stuck-at polarities.
/// (Out-of-line so the CampaignConfig default init stays warning-clean.)
[[nodiscard]] std::vector<FaultModel> all_fault_models();

struct CampaignConfig {
  core::NacuConfig unit{};  ///< datapath under test (paper Q4.11 default)
  std::uint64_t seed = 1;
  std::size_t trials = 10000;
  /// Fault models drawn uniformly per trial.
  std::vector<FaultModel> models = all_fault_models();
  /// Surfaces drawn uniformly per trial (index = fault::Surface). Table
  /// surfaces are silently dropped when the format is too wide to cache.
  std::array<bool, kSurfaceCount> surfaces{true, true, true,
                                           true, true, true};
  /// Ops in the steady-state stream a pipeline trial drives (the window a
  /// transient can land in).
  std::size_t pipeline_ops = 48;
  CheckerOptions checker{};
  core::ThreadPool* pool = nullptr;  ///< nullptr → ThreadPool::shared()
};

struct TrialResult {
  Fault fault{};
  Outcome outcome = Outcome::Masked;
  DetectionReport detection{};
  bool corrupted = false;  ///< ground truth: at least one wrong output
  bool recovered = false;  ///< recovery restored bit-identical outputs
};

struct CampaignReport {
  std::size_t trials = 0;
  std::array<std::size_t, kOutcomeCount> by_outcome{};
  std::array<std::array<std::size_t, kOutcomeCount>, kSurfaceCount>
      by_surface{};
  std::array<std::size_t, kSurfaceCount> surface_trials{};
  /// Per-detector fire counts over *corrupted* trials only — which piece of
  /// the paper's algebra actually catches what.
  std::array<std::size_t, kDetectorCount> detector_hits{};
  std::vector<TrialResult> results;  ///< indexed by trial

  [[nodiscard]] std::size_t corrupted_trials() const noexcept;
  [[nodiscard]] std::size_t detected_corrupted() const noexcept;
  /// Fraction of would-be-SDC injections a detector caught (1.0 when no
  /// trial corrupted anything).
  [[nodiscard]] double detection_coverage() const noexcept;
  /// Order-sensitive FNV-1a digest of every trial's (fault, outcome,
  /// detector flags) — two runs are bit-identical iff digests match.
  [[nodiscard]] std::uint64_t fingerprint() const noexcept;
  [[nodiscard]] std::string summary() const;
};

class CampaignRunner {
 public:
  explicit CampaignRunner(CampaignConfig config);

  [[nodiscard]] const CampaignConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] const InvariantChecker& checker() const noexcept {
    return checker_;
  }
  /// The surfaces trials actually draw from after capability filtering.
  [[nodiscard]] const std::vector<Surface>& active_surfaces() const noexcept {
    return active_surfaces_;
  }

  /// Run config().trials independent injections across the pool.
  [[nodiscard]] CampaignReport run() const;

  /// One fully deterministic trial (exposed for tests).
  [[nodiscard]] TrialResult run_trial(std::uint64_t index) const;

 private:
  struct StreamOp {
    hw::Func func;
    std::int64_t in_raw;
    std::int64_t golden_raw;
  };

  [[nodiscard]] Fault draw_fault(std::mt19937_64& rng) const;
  [[nodiscard]] std::size_t surface_words(Surface s) const;
  [[nodiscard]] int word_width(Surface s, std::size_t word) const;
  [[nodiscard]] std::int64_t golden_scalar(InvariantChecker::Function f,
                                           std::int64_t raw) const;
  [[nodiscard]] TrialResult run_lut_trial(const Fault& fault) const;
  [[nodiscard]] TrialResult run_table_trial(const Fault& fault) const;
  [[nodiscard]] TrialResult run_pipeline_trial(const Fault& fault,
                                               std::mt19937_64& rng) const;
  /// Issue the stream through @p rtl, arming @p injector before tick
  /// @p arm_at; returns retired raw results by op index.
  [[nodiscard]] std::vector<std::int64_t> run_stream(
      hw::NacuRtl& rtl, FaultInjector* injector, std::size_t arm_at) const;

  CampaignConfig config_;
  InvariantChecker checker_;
  core::ThreadPool* pool_;
  std::vector<Surface> active_surfaces_;
  /// Inverse segment maps (cacheable formats): raws whose σ (resp. tanh)
  /// evaluation reads LUT segment i. exp(x) reads σ's segment of |x|.
  std::vector<std::vector<std::int32_t>> sigma_affected_;
  std::vector<std::vector<std::int32_t>> tanh_affected_;
  std::vector<StreamOp> stream_ops_;
  std::array<int, hw::NacuRtl::kFaultWords> pipeline_widths_{};
};

}  // namespace nacu::fault
