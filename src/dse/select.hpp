// Frontier → running server: the selection seam of the autotuner.
//
// A DSE run commits its Pareto frontier (frontier_io.hpp); at startup a
// server turns an *error budget* — the accuracy its workload tolerates —
// into the cheapest servable NACU config on that frontier and boots from
// it. The deploy decision becomes a reviewed number in a config file
// instead of a hand-picked Q-format:
//
//     auto frontier = dse::read_frontier("bench/baselines/BENCH_dse.json");
//     auto choice = dse::select(frontier, {.max_abs_error = 1e-2});
//     auto server = dse::make_server(*choice);   // serve::InferenceServer
//
// select() considers only servable points (family "NACU"), at config
// granularity: a config qualifies when the frontier carries all three of
// its function rows (a server boots σ, tanh *and* exp) and every row meets
// its function's error cap plus the optional storage/area ceilings. Among
// qualifying configs the cheapest wins: least area, then least storage,
// then the deterministic format/entries order. The returned Selection's
// config comes from nacu_config_for(), i.e. exactly the config the sweep
// scored — an engine booted from a Selection is bit-identical to one
// configured directly (pinned by tests/test_dse.cpp).
//
// make_server() publishes the choice: dse.selected.* gauges (format bits,
// LUT entries, error caps in nano-units) so dashboards show which operating
// point is live, and — because net::NetServer reads the engine format off
// the server it wraps — the Hello handshake's format bytes advertise the
// selected Q(ib).(fb) to every connecting client with no extra wiring.
#pragma once

#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "dse/dse.hpp"
#include "serve/server.hpp"

namespace nacu::dse {

/// Accuracy/resource ceilings a selected config must satisfy. Error caps
/// compare against the frontier's exhaustively-measured max_abs_error.
struct ErrorBudget {
  /// Cap applied to every function's max absolute error.
  double max_abs_error = 1e-2;
  /// Per-function overrides; NaN (default) inherits max_abs_error.
  double sigmoid_max_abs = std::numeric_limits<double>::quiet_NaN();
  double tanh_max_abs = std::numeric_limits<double>::quiet_NaN();
  double exp_max_abs = std::numeric_limits<double>::quiet_NaN();
  /// 0 = unconstrained.
  std::size_t max_storage_bits = 0;
  double max_area_um2 = 0.0;
};

/// The chosen operating point: the bootable config plus the frontier
/// evidence it was chosen on.
struct Selection {
  core::NacuConfig config;      ///< nacu_config_for(format, lut_entries)
  fp::Format format{4, 11};
  std::size_t lut_entries = 0;
  std::size_t storage_bits = 0;
  double area_um2 = 0.0;
  double sigmoid_max_abs = 0.0;  ///< frontier-measured, per function
  double tanh_max_abs = 0.0;
  double exp_max_abs = 0.0;
};

/// Cheapest servable frontier config meeting @p budget, or nullopt when no
/// config qualifies (budget tighter than the frontier's best point).
[[nodiscard]] std::optional<Selection> select(
    const std::vector<DsePoint>& frontier, const ErrorBudget& budget);

/// read_frontier(path) + select(). Throws std::runtime_error when the file
/// is unreadable/unparsable (budget misses return nullopt, as above).
[[nodiscard]] std::optional<Selection> select_from_file(
    const std::string& path, const ErrorBudget& budget);

/// Boot a serve::InferenceServer from @p selection and publish the choice
/// as dse.selected.* gauges (format_ib, format_fb, lut_entries,
/// storage_bits, plus *_error_nano per function: max_abs × 1e9 as int).
[[nodiscard]] std::unique_ptr<serve::InferenceServer> make_server(
    const Selection& selection, serve::ServerOptions options = {});

}  // namespace nacu::dse
