// Design-space exploration over approximation family × size × Q(ib).(fb)
// format (ROADMAP item 2; methodology of "Design Space Exploration of
// Neural Network Activation Function Circuits").
//
// The paper's §VI comparison fixes one operating point per related-work
// family; src/approx/ implements every family and src/hwcost/ prices them,
// but until this module nothing searched the space. sweep() builds every
// (family, function, format, budget) combination, scores each point
// exhaustively on the §VII metrics — max/RMS error over every representable
// input via approx/error_analysis — plus table storage, structural 28 nm
// area/power, and measured throughput; pareto_frontier() prunes the result
// to the non-dominated set a consumer actually chooses from.
//
// Two classes of point travel through the pipeline:
//
//  * baseline points — the §VI families (approx/family_registry.hpp).
//    Reference hardware designs: they can be compared, not booted.
//  * servable points (family "NACU", servable = 1) — the repo's own Fig. 2
//    datapath at (format × lut_entries), scored through the identical
//    harness via core::NacuApproximator and timed through core::BatchNacu's
//    table path. These are the points dse::select() can turn into a running
//    server (select.hpp), so dominance treats them at *config* granularity:
//    a NACU config is one point in (σ error, tanh error, exp error,
//    storage, area) space, and either all three of its function rows
//    survive or none do — a frontier never offers a config it cannot boot
//    all three functions from.
//
// Dominance (definitions the tests pin):
//  * baseline points compare within one (function, format-agnostic) group
//    on (max_abs_error, rmse, storage_bits, area_um2): A dominates B when
//    A ≤ B on every axis and A < B on at least one. Exact duplicates on
//    all four axes keep only the first in deterministic sort order.
//  * NACU configs compare on (σ/tanh/exp max_abs_error, storage_bits,
//    area_um2) with the same ≤/< rule.
// Throughput is reported, never a dominance axis: it is machine-measured
// and would make the frontier non-deterministic.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "approx/family_registry.hpp"
#include "core/nacu.hpp"
#include "fixedpoint/format.hpp"

namespace nacu::dse {

/// One scored design point — flat on purpose: every field maps 1:1 onto a
/// record of the nacu-dse-v1 JSON (frontier_io.hpp).
struct DsePoint {
  std::string function;  ///< "sigmoid" | "tanh" | "exp"
  std::string family;    ///< family_registry name, or "NACU" for servable
  std::string format;    ///< "Q4.11" textual form of the in/out format
  std::string impl;      ///< Approximator::name(), e.g. "RALUT(57)"
  std::size_t budget = 0;        ///< sweep size knob (family semantics)
  std::size_t entries = 0;       ///< realised table/coefficient entries
  std::size_t storage_bits = 0;  ///< Approximator::storage_bits()
  std::size_t table_bytes = 0;   ///< ceil(storage_bits / 8)
  std::size_t samples = 0;       ///< error-sweep sample count (exhaustive)
  double max_abs_error = 0.0;
  double rmse = 0.0;
  double mean_abs_error = 0.0;
  double worst_x = 0.0;  ///< input where max_abs_error occurred
  double ge = 0.0;       ///< structural gate equivalents
  double area_um2 = 0.0;
  double power_mw = 0.0;
  double elems_per_s = 0.0;  ///< measured; 0 when timing was disabled
  bool servable = false;     ///< can boot a server via dse::select
};

struct SweepOptions {
  std::vector<approx::FunctionKind> functions{
      approx::FunctionKind::Sigmoid, approx::FunctionKind::Tanh,
      approx::FunctionKind::Exp};
  std::vector<approx::SweepFamily> families = approx::all_sweep_families();
  std::vector<fp::Format> formats{
      fp::Format{4, 11}, fp::Format{3, 12}, fp::Format{3, 8},
      fp::Format{2, 5}};
  /// Override the per-family budget grid (empty = sweep_budgets(family)).
  std::vector<std::size_t> budgets{};
  /// Also sweep the servable NACU datapath at formats × these LUT entry
  /// counts (empty disables the NACU rows).
  std::vector<std::size_t> nacu_lut_entries{16, 32, 53, 96};
  /// Error-sweep sample budget per point; the default covers any ≤ 22-bit
  /// domain exhaustively (every format here is far below that).
  std::size_t max_samples = std::size_t{1} << 22;
  /// Measure throughput (scalar Approximator::evaluate loops; BatchNacu
  /// table-path batches for NACU points). Off = elems_per_s stays 0.
  bool measure_throughput = true;
  /// A point whose build throws (format too narrow for the family's
  /// derived coefficient grid, unreachable entry budget) is skipped when
  /// true; rethrown when false.
  bool skip_failed_builds = true;
};

/// The NacuConfig a servable point (format, lut_entries) boots with —
/// shared by the sweep, dse::select and the bit-identity tests so the
/// engine the frontier scored and the engine the server runs are the same
/// config by construction. Coefficients store at Q1.(width−2), the paper's
/// datapath-width choice.
[[nodiscard]] core::NacuConfig nacu_config_for(fp::Format format,
                                               std::size_t lut_entries);

/// Score every point of the grid (no pruning). Deterministic apart from
/// elems_per_s.
[[nodiscard]] std::vector<DsePoint> sweep(const SweepOptions& options);

/// Prune @p points to the Pareto frontier under the header's dominance
/// definitions. Order is deterministic: by function, then ascending
/// area_um2, storage_bits, max_abs_error, impl.
[[nodiscard]] std::vector<DsePoint> pareto_frontier(
    std::vector<DsePoint> points);

/// True when @p a dominates @p b under the baseline four-axis rule
/// (callers must compare points of one function group only).
[[nodiscard]] bool dominates(const DsePoint& a, const DsePoint& b);

}  // namespace nacu::dse
