#include "dse/frontier_io.hpp"

#include <cctype>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

namespace nacu::dse {

namespace {

std::string escape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
    }
    out += c;
  }
  return out;
}

void append_field(std::string& out, const char* key, const std::string& value,
                  bool& first) {
  if (!first) {
    out += ',';
  }
  first = false;
  out += '"';
  out += key;
  out += "\":\"";
  out += escape(value);
  out += '"';
}

void append_field(std::string& out, const char* key, double value,
                  bool& first) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  if (!first) {
    out += ',';
  }
  first = false;
  out += '"';
  out += key;
  out += "\":";
  out += buf;
}

void append_field(std::string& out, const char* key, std::size_t value,
                  bool& first) {
  if (!first) {
    out += ',';
  }
  first = false;
  out += '"';
  out += key;
  out += "\":";
  out += std::to_string(value);
}

/// Recursive-descent parser over the nacu-dse-v1 subset of JSON.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_{text} {}

  std::vector<DsePoint> parse() {
    skip_ws();
    expect('{');
    std::vector<DsePoint> points;
    bool saw_schema = false;
    bool first = true;
    while (true) {
      skip_ws();
      if (peek() == '}') {
        ++pos_;
        break;
      }
      if (!first) {
        expect(',');
        skip_ws();
      }
      first = false;
      const std::string key = parse_string();
      skip_ws();
      expect(':');
      skip_ws();
      if (key == "schema") {
        const std::string schema = parse_string();
        if (schema != kFrontierSchema) {
          fail("schema is \"" + schema + "\", want \"" + kFrontierSchema +
               "\"");
        }
        saw_schema = true;
      } else if (key == "records") {
        points = parse_records();
      } else {
        skip_value();
      }
    }
    skip_ws();
    if (pos_ != text_.size()) {
      fail("trailing content after document");
    }
    if (!saw_schema) {
      fail("document has no \"schema\" field");
    }
    return points;
  }

 private:
  std::vector<DsePoint> parse_records() {
    expect('[');
    std::vector<DsePoint> points;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return points;
    }
    while (true) {
      skip_ws();
      points.push_back(parse_record());
      skip_ws();
      const char c = next();
      if (c == ']') {
        return points;
      }
      if (c != ',') {
        fail("expected ',' or ']' in records array");
      }
    }
  }

  DsePoint parse_record() {
    expect('{');
    DsePoint point;
    bool first = true;
    while (true) {
      skip_ws();
      if (peek() == '}') {
        ++pos_;
        return point;
      }
      if (!first) {
        expect(',');
        skip_ws();
      }
      first = false;
      const std::string key = parse_string();
      skip_ws();
      expect(':');
      skip_ws();
      if (key == "function") {
        point.function = parse_string();
      } else if (key == "family") {
        point.family = parse_string();
      } else if (key == "format") {
        point.format = parse_string();
      } else if (key == "impl") {
        point.impl = parse_string();
      } else if (key == "budget") {
        point.budget = static_cast<std::size_t>(parse_number());
      } else if (key == "entries") {
        point.entries = static_cast<std::size_t>(parse_number());
      } else if (key == "storage_bits") {
        point.storage_bits = static_cast<std::size_t>(parse_number());
      } else if (key == "table_bytes") {
        point.table_bytes = static_cast<std::size_t>(parse_number());
      } else if (key == "samples") {
        point.samples = static_cast<std::size_t>(parse_number());
      } else if (key == "max_abs_error") {
        point.max_abs_error = parse_number();
      } else if (key == "rmse") {
        point.rmse = parse_number();
      } else if (key == "mean_abs_error") {
        point.mean_abs_error = parse_number();
      } else if (key == "worst_x") {
        point.worst_x = parse_number();
      } else if (key == "ge") {
        point.ge = parse_number();
      } else if (key == "area_um2") {
        point.area_um2 = parse_number();
      } else if (key == "power_mw") {
        point.power_mw = parse_number();
      } else if (key == "elems_per_s") {
        point.elems_per_s = parse_number();
      } else if (key == "servable") {
        point.servable = parse_number() != 0.0;
      } else {
        skip_value();  // forward compatibility
      }
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) {
        fail("unterminated string");
      }
      const char c = text_[pos_++];
      if (c == '"') {
        return out;
      }
      if (c == '\\') {
        if (pos_ >= text_.size()) {
          fail("unterminated escape");
        }
        out += text_[pos_++];
      } else {
        out += c;
      }
    }
  }

  double parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-' || peek() == '+') {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) {
      fail("expected a number");
    }
    try {
      return std::stod(text_.substr(start, pos_ - start));
    } catch (const std::exception&) {
      fail("malformed number \"" + text_.substr(start, pos_ - start) + "\"");
    }
    return 0.0;  // unreachable
  }

  /// Skip any value (used for unknown fields): string, number, object,
  /// array, or literal.
  void skip_value() {
    const char c = peek();
    if (c == '"') {
      parse_string();
      return;
    }
    if (c == '{' || c == '[') {
      const char close = c == '{' ? '}' : ']';
      ++pos_;
      int depth = 1;
      while (depth > 0) {
        if (pos_ >= text_.size()) {
          fail("unterminated value");
        }
        const char d = text_[pos_];
        if (d == '"') {
          parse_string();
          continue;
        }
        ++pos_;
        if (d == c) {
          ++depth;
        } else if (d == close) {
          --depth;
        }
      }
      return;
    }
    while (pos_ < text_.size() && text_[pos_] != ',' && text_[pos_] != '}' &&
           text_[pos_] != ']') {
      ++pos_;
    }
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  [[nodiscard]] char peek() const {
    if (pos_ >= text_.size()) {
      fail("unexpected end of document");
    }
    return text_[pos_];
  }

  char next() {
    const char c = peek();
    ++pos_;
    return c;
  }

  void expect(char c) {
    if (next() != c) {
      --pos_;
      fail(std::string{"expected '"} + c + "'");
    }
  }

  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("nacu-dse-v1 parse error at offset " +
                             std::to_string(pos_) + ": " + what);
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string to_json(const std::vector<DsePoint>& points) {
  std::string out = "{\n  \"schema\": \"";
  out += kFrontierSchema;
  out += "\",\n  \"records\": [\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const DsePoint& p = points[i];
    std::string record = "    {";
    bool first = true;
    append_field(record, "function", p.function, first);
    append_field(record, "family", p.family, first);
    append_field(record, "format", p.format, first);
    append_field(record, "impl", p.impl, first);
    append_field(record, "budget", p.budget, first);
    append_field(record, "entries", p.entries, first);
    append_field(record, "storage_bits", p.storage_bits, first);
    append_field(record, "table_bytes", p.table_bytes, first);
    append_field(record, "samples", p.samples, first);
    append_field(record, "max_abs_error", p.max_abs_error, first);
    append_field(record, "rmse", p.rmse, first);
    append_field(record, "mean_abs_error", p.mean_abs_error, first);
    append_field(record, "worst_x", p.worst_x, first);
    append_field(record, "ge", p.ge, first);
    append_field(record, "area_um2", p.area_um2, first);
    append_field(record, "power_mw", p.power_mw, first);
    append_field(record, "elems_per_s", p.elems_per_s, first);
    append_field(record, "servable", std::size_t{p.servable ? 1u : 0u},
                 first);
    record += '}';
    if (i + 1 < points.size()) {
      record += ',';
    }
    out += record;
    out += '\n';
  }
  out += "  ]\n}\n";
  return out;
}

bool write_frontier(const std::vector<DsePoint>& points,
                    const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return false;
  }
  const std::string json = to_json(points);
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  const bool closed = std::fclose(f) == 0;
  return ok && closed;
}

std::vector<DsePoint> parse_frontier(const std::string& json) {
  return Parser{json}.parse();
}

std::vector<DsePoint> read_frontier(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  if (!in) {
    throw std::runtime_error("cannot read frontier file: " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_frontier(buffer.str());
}

}  // namespace nacu::dse
