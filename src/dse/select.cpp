#include "dse/select.hpp"

#include <cmath>
#include <map>

#include "dse/frontier_io.hpp"
#include "obs/metrics.hpp"

namespace nacu::dse {

namespace {

struct ConfigRows {
  const DsePoint* sigmoid = nullptr;
  const DsePoint* tanh = nullptr;
  const DsePoint* exp = nullptr;
  [[nodiscard]] bool complete() const noexcept {
    return sigmoid != nullptr && tanh != nullptr && exp != nullptr;
  }
};

double cap_for(double override_cap, double default_cap) {
  return std::isnan(override_cap) ? default_cap : override_cap;
}

}  // namespace

std::optional<Selection> select(const std::vector<DsePoint>& frontier,
                                const ErrorBudget& budget) {
  // Group servable rows by config. The map key is (format text, entries) —
  // format text sorts deterministically and entries breaks ties, giving
  // the documented format/entries order for equal-cost candidates.
  std::map<std::pair<std::string, std::size_t>, ConfigRows> configs;
  for (const DsePoint& point : frontier) {
    if (!point.servable) {
      continue;
    }
    ConfigRows& rows = configs[{point.format, point.budget}];
    if (point.function == "sigmoid") {
      rows.sigmoid = &point;
    } else if (point.function == "tanh") {
      rows.tanh = &point;
    } else if (point.function == "exp") {
      rows.exp = &point;
    }
  }

  const double sigmoid_cap =
      cap_for(budget.sigmoid_max_abs, budget.max_abs_error);
  const double tanh_cap = cap_for(budget.tanh_max_abs, budget.max_abs_error);
  const double exp_cap = cap_for(budget.exp_max_abs, budget.max_abs_error);

  std::optional<Selection> best;
  for (const auto& [key, rows] : configs) {
    if (!rows.complete()) {
      continue;  // cannot boot all three functions from this config
    }
    if (rows.sigmoid->max_abs_error > sigmoid_cap ||
        rows.tanh->max_abs_error > tanh_cap ||
        rows.exp->max_abs_error > exp_cap) {
      continue;
    }
    const std::size_t storage = rows.sigmoid->storage_bits;
    const double area = rows.sigmoid->area_um2;
    if (budget.max_storage_bits != 0 && storage > budget.max_storage_bits) {
      continue;
    }
    if (budget.max_area_um2 > 0.0 && area > budget.max_area_um2) {
      continue;
    }
    if (best &&
        (best->area_um2 < area ||
         (best->area_um2 == area && best->storage_bits <= storage))) {
      continue;  // existing candidate is cheaper (or equal + earlier key)
    }
    Selection choice;
    choice.format = fp::Format::parse(key.first);
    choice.lut_entries = key.second;
    choice.config = nacu_config_for(choice.format, choice.lut_entries);
    choice.storage_bits = storage;
    choice.area_um2 = area;
    choice.sigmoid_max_abs = rows.sigmoid->max_abs_error;
    choice.tanh_max_abs = rows.tanh->max_abs_error;
    choice.exp_max_abs = rows.exp->max_abs_error;
    best = choice;
  }
  return best;
}

std::optional<Selection> select_from_file(const std::string& path,
                                          const ErrorBudget& budget) {
  return select(read_frontier(path), budget);
}

std::unique_ptr<serve::InferenceServer> make_server(
    const Selection& selection, serve::ServerOptions options) {
  obs::gauge("dse.selected.format_ib").set(selection.format.integer_bits());
  obs::gauge("dse.selected.format_fb")
      .set(selection.format.fractional_bits());
  obs::gauge("dse.selected.lut_entries")
      .set(static_cast<std::int64_t>(selection.lut_entries));
  obs::gauge("dse.selected.storage_bits")
      .set(static_cast<std::int64_t>(selection.storage_bits));
  obs::gauge("dse.selected.sigmoid_error_nano")
      .set(static_cast<std::int64_t>(selection.sigmoid_max_abs * 1e9));
  obs::gauge("dse.selected.tanh_error_nano")
      .set(static_cast<std::int64_t>(selection.tanh_max_abs * 1e9));
  obs::gauge("dse.selected.exp_error_nano")
      .set(static_cast<std::int64_t>(selection.exp_max_abs * 1e9));
  return std::make_unique<serve::InferenceServer>(selection.config,
                                                  std::move(options));
}

}  // namespace nacu::dse
