// nacu-dse-v1 frontier files: the committed artifact between a DSE run and
// a booting server.
//
// The on-disk shape is the repo's bench_json layout —
// {"schema": "nacu-dse-v1", "records": [flat maps]} — so
// scripts/bench_compare.py gates a fresh sweep against
// bench/baselines/BENCH_dse.json with no extra tooling. One record per
// DsePoint, field names identical to the struct members; doubles print with
// 17 significant digits so a write → read round trip is bit-exact (the
// frontier-reproduction test depends on it). servable serialises as 0/1.
//
// The reader is a deliberately small recursive-descent parser for exactly
// this subset of JSON (objects, arrays, strings with \"/\\ escapes,
// numbers) — the repo takes no third-party JSON dependency. Unknown record
// fields are ignored (forward compatibility); a wrong schema string, syntax
// error, or non-numeric/missing required field throws std::runtime_error
// with the offending path.
#pragma once

#include <string>
#include <vector>

#include "dse/dse.hpp"

namespace nacu::dse {

inline constexpr const char* kFrontierSchema = "nacu-dse-v1";

/// Serialise @p points as a nacu-dse-v1 document (not yet on disk).
[[nodiscard]] std::string to_json(const std::vector<DsePoint>& points);

/// Write @p points to @p path; false on I/O error.
[[nodiscard]] bool write_frontier(const std::vector<DsePoint>& points,
                                  const std::string& path);

/// Parse a nacu-dse-v1 document. Throws std::runtime_error on syntax or
/// schema mismatch.
[[nodiscard]] std::vector<DsePoint> parse_frontier(const std::string& json);

/// Read + parse @p path. Throws std::runtime_error (unreadable file or
/// parse failure).
[[nodiscard]] std::vector<DsePoint> read_frontier(const std::string& path);

}  // namespace nacu::dse
