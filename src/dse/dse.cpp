#include "dse/dse.hpp"

#include <algorithm>
#include <chrono>
#include <limits>
#include <map>
#include <memory>
#include <stdexcept>

#include "approx/error_analysis.hpp"
#include "fixedpoint/fixed.hpp"
#include "core/batch_nacu.hpp"
#include "core/nacu_approximator.hpp"
#include "fixedpoint/format_select.hpp"
#include "hwcost/approx_cost.hpp"
#include "hwcost/nacu_cost.hpp"
#include "hwcost/technology.hpp"

namespace nacu::dse {

namespace {

/// The natural sweep domain on the raw grid (mirrors analyze_natural).
void natural_domain(approx::FunctionKind kind, fp::Format in,
                    std::int64_t& lo, std::int64_t& hi) {
  if (kind == approx::FunctionKind::Exp) {
    lo = fp::Fixed::from_double(-fp::input_max(in), in).raw();
    hi = 0;
  } else {
    lo = in.min_raw();
    hi = in.max_raw();
  }
}

/// Best-of-3 scalar evaluate throughput over a strided domain sample.
double scalar_throughput(const approx::Approximator& unit) {
  const fp::Format in = unit.input_format();
  std::int64_t lo = 0;
  std::int64_t hi = 0;
  natural_domain(unit.function(), in, lo, hi);
  constexpr std::size_t kSamples = 4096;
  const std::uint64_t count = static_cast<std::uint64_t>(hi - lo) + 1;
  const std::int64_t stride = static_cast<std::int64_t>(
      count > kSamples ? count / kSamples : 1);
  std::vector<fp::Fixed> inputs;
  inputs.reserve(kSamples);
  for (std::int64_t raw = lo; raw <= hi && inputs.size() < kSamples;
       raw += stride) {
    inputs.push_back(fp::Fixed::from_raw(raw, in));
  }
  double best = 0.0;
  for (int rep = 0; rep < 3; ++rep) {
    std::int64_t sink = 0;
    const auto t0 = std::chrono::steady_clock::now();
    for (const fp::Fixed& x : inputs) {
      sink += unit.evaluate(x).raw();
    }
    const auto t1 = std::chrono::steady_clock::now();
    const double seconds =
        std::chrono::duration<double>(t1 - t0).count();
    if (sink == std::numeric_limits<std::int64_t>::min()) {
      continue;  // keep the accumulation observable
    }
    if (seconds > 0.0) {
      best = std::max(best, static_cast<double>(inputs.size()) / seconds);
    }
  }
  return best;
}

/// Best-of-3 BatchNacu table-path throughput over the full domain.
double batch_throughput(const core::NacuConfig& config,
                        approx::FunctionKind kind) {
  core::BatchNacu engine{config};
  if (!engine.table_cacheable()) {
    return 0.0;
  }
  const core::BatchNacu::Function f =
      kind == approx::FunctionKind::Sigmoid
          ? core::BatchNacu::Function::Sigmoid
          : kind == approx::FunctionKind::Tanh
                ? core::BatchNacu::Function::Tanh
                : core::BatchNacu::Function::Exp;
  engine.warm(f);
  const fp::Format in = config.format;
  std::int64_t lo = 0;
  std::int64_t hi = 0;
  natural_domain(kind, in, lo, hi);
  std::vector<fp::Fixed> inputs;
  inputs.reserve(static_cast<std::size_t>(hi - lo) + 1);
  for (std::int64_t raw = lo; raw <= hi; ++raw) {
    inputs.push_back(fp::Fixed::from_raw(raw, in));
  }
  std::vector<fp::Fixed> outputs(inputs.size(), fp::Fixed::zero(in));
  double best = 0.0;
  for (int rep = 0; rep < 3; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    engine.evaluate(f, inputs, outputs);
    const auto t1 = std::chrono::steady_clock::now();
    const double seconds = std::chrono::duration<double>(t1 - t0).count();
    if (seconds > 0.0) {
      best = std::max(best, static_cast<double>(inputs.size()) / seconds);
    }
  }
  return best;
}

void fill_error_stats(DsePoint& point, const approx::Approximator& unit,
                      std::size_t max_samples) {
  const approx::ErrorStats stats = analyze_natural(unit, max_samples);
  point.max_abs_error = stats.max_abs;
  point.rmse = stats.rmse;
  point.mean_abs_error = stats.mean_abs;
  point.worst_x = stats.worst_x;
  point.samples = stats.samples;
}

cost::Function cost_function_for(approx::FunctionKind kind) {
  switch (kind) {
    case approx::FunctionKind::Sigmoid:
      return cost::Function::Sigmoid;
    case approx::FunctionKind::Tanh:
      return cost::Function::Tanh;
    case approx::FunctionKind::Exp:
      return cost::Function::Exp;
  }
  return cost::Function::Sigmoid;  // unreachable
}

/// Deterministic point order: function, area, storage, error, impl.
bool point_less(const DsePoint& a, const DsePoint& b) {
  if (a.function != b.function) {
    return a.function < b.function;
  }
  if (a.area_um2 != b.area_um2) {
    return a.area_um2 < b.area_um2;
  }
  if (a.storage_bits != b.storage_bits) {
    return a.storage_bits < b.storage_bits;
  }
  if (a.max_abs_error != b.max_abs_error) {
    return a.max_abs_error < b.max_abs_error;
  }
  return a.impl < b.impl;
}

bool same_axes(const DsePoint& a, const DsePoint& b) {
  return a.max_abs_error == b.max_abs_error && a.rmse == b.rmse &&
         a.storage_bits == b.storage_bits && a.area_um2 == b.area_um2;
}

/// A NACU config's position in (per-function error, storage, area) space.
struct NacuConfigAxes {
  std::map<std::string, double> error;  ///< function name → max_abs_error
  std::size_t storage_bits = 0;
  double area_um2 = 0.0;
  std::vector<std::size_t> point_indices;
};

/// Config-granularity dominance over the union of swept functions; a
/// config missing a function's row counts as +inf there (never dominated
/// on an axis it did not measure).
bool config_dominates(const NacuConfigAxes& a, const NacuConfigAxes& b,
                      const std::vector<std::string>& functions) {
  bool strict = false;
  constexpr double kInf = std::numeric_limits<double>::infinity();
  for (const std::string& f : functions) {
    const auto ita = a.error.find(f);
    const auto itb = b.error.find(f);
    const double ea = ita == a.error.end() ? kInf : ita->second;
    const double eb = itb == b.error.end() ? kInf : itb->second;
    if (ea > eb) {
      return false;
    }
    strict = strict || ea < eb;
  }
  if (a.storage_bits > b.storage_bits || a.area_um2 > b.area_um2) {
    return false;
  }
  strict = strict || a.storage_bits < b.storage_bits ||
           a.area_um2 < b.area_um2;
  return strict;
}

}  // namespace

core::NacuConfig nacu_config_for(fp::Format format, std::size_t lut_entries) {
  core::NacuConfig config;
  config.format = format;
  config.lut_entries = lut_entries;
  config.coeff_format = fp::Format{1, format.width() - 2};
  return config;
}

std::vector<DsePoint> sweep(const SweepOptions& options) {
  std::vector<DsePoint> points;

  for (const approx::FunctionKind kind : options.functions) {
    // Baseline families.
    for (const approx::SweepFamily family : options.families) {
      if (!supports(family, kind)) {
        continue;
      }
      const std::vector<std::size_t> budgets =
          options.budgets.empty() ? approx::sweep_budgets(family)
                                  : options.budgets;
      for (const fp::Format& fmt : options.formats) {
        for (const std::size_t budget : budgets) {
          approx::ApproximatorPtr unit;
          try {
            unit = approx::build_sweep(family, kind, fmt, budget);
          } catch (const std::invalid_argument&) {
            if (options.skip_failed_builds) {
              continue;
            }
            throw;
          }
          DsePoint point;
          point.function = approx::to_string(kind);
          point.family = approx::to_string(family);
          point.format = fmt.to_string();
          point.impl = unit->name();
          point.budget = budget;
          point.entries = unit->table_entries();
          point.storage_bits = unit->storage_bits();
          point.table_bytes = (point.storage_bits + 7) / 8;
          fill_error_stats(point, *unit, options.max_samples);
          const cost::ApproxUnitCost cost =
              cost::approx_unit_cost(family, *unit, budget);
          point.ge = cost.ge;
          point.area_um2 = cost.area_um2;
          point.power_mw = cost.total_mw();
          if (options.measure_throughput) {
            point.elems_per_s = scalar_throughput(*unit);
          }
          points.push_back(std::move(point));
          if (family == approx::SweepFamily::Gomar) {
            break;  // no size knob: one point per (function, format)
          }
        }
      }
    }

    // Servable NACU points.
    for (const fp::Format& fmt : options.formats) {
      for (const std::size_t lut_entries : options.nacu_lut_entries) {
        core::NacuConfig config;
        std::shared_ptr<core::Nacu> unit;
        try {
          config = nacu_config_for(fmt, lut_entries);
          unit = std::make_shared<core::Nacu>(config);
        } catch (const std::exception&) {
          if (options.skip_failed_builds) {
            continue;
          }
          throw;
        }
        const core::NacuApproximator adapter{unit, kind};
        DsePoint point;
        point.function = approx::to_string(kind);
        point.family = "NACU";
        point.format = fmt.to_string();
        point.impl = adapter.name() + "(" + std::to_string(lut_entries) + ")";
        point.budget = lut_entries;
        point.entries = adapter.table_entries();
        point.storage_bits = adapter.storage_bits();
        point.table_bytes = (point.storage_bits + 7) / 8;
        point.servable = true;
        fill_error_stats(point, adapter, options.max_samples);
        const cost::Breakdown breakdown = cost::nacu_breakdown(config);
        point.ge = breakdown.total_ge();
        point.area_um2 = breakdown.area_um2();
        point.power_mw =
            cost::power_for_function(breakdown, cost_function_for(kind),
                                     cost::Tech28::kClockNs)
                .total_mw();
        if (options.measure_throughput) {
          point.elems_per_s = batch_throughput(config, kind);
        }
        points.push_back(std::move(point));
      }
    }
  }
  return points;
}

bool dominates(const DsePoint& a, const DsePoint& b) {
  if (a.max_abs_error > b.max_abs_error || a.rmse > b.rmse ||
      a.storage_bits > b.storage_bits || a.area_um2 > b.area_um2) {
    return false;
  }
  return a.max_abs_error < b.max_abs_error || a.rmse < b.rmse ||
         a.storage_bits < b.storage_bits || a.area_um2 < b.area_um2;
}

std::vector<DsePoint> pareto_frontier(std::vector<DsePoint> points) {
  std::sort(points.begin(), points.end(), point_less);

  std::vector<DsePoint> frontier;

  // Baseline points: per-function four-axis dominance + duplicate drop.
  for (std::size_t i = 0; i < points.size(); ++i) {
    const DsePoint& candidate = points[i];
    if (candidate.servable) {
      continue;
    }
    bool keep = true;
    for (std::size_t j = 0; j < points.size() && keep; ++j) {
      if (i == j || points[j].servable ||
          points[j].function != candidate.function) {
        continue;
      }
      if (dominates(points[j], candidate)) {
        keep = false;
      } else if (j < i && same_axes(points[j], candidate)) {
        keep = false;  // exact duplicate: first in sort order wins
      }
    }
    if (keep) {
      frontier.push_back(candidate);
    }
  }

  // Servable NACU points: config-granularity dominance.
  std::map<std::string, NacuConfigAxes> configs;
  std::vector<std::string> functions;
  for (std::size_t i = 0; i < points.size(); ++i) {
    const DsePoint& point = points[i];
    if (!point.servable) {
      continue;
    }
    const std::string key =
        point.format + "/" + std::to_string(point.budget);
    NacuConfigAxes& axes = configs[key];
    axes.error[point.function] = point.max_abs_error;
    axes.storage_bits = point.storage_bits;
    axes.area_um2 = point.area_um2;
    axes.point_indices.push_back(i);
    if (std::find(functions.begin(), functions.end(), point.function) ==
        functions.end()) {
      functions.push_back(point.function);
    }
  }
  for (const auto& [key, axes] : configs) {
    bool keep = true;
    for (const auto& [other_key, other] : configs) {
      if (other_key == key) {
        continue;
      }
      if (config_dominates(other, axes, functions) ||
          (other_key < key && !config_dominates(axes, other, functions) &&
           other.storage_bits == axes.storage_bits &&
           other.area_um2 == axes.area_um2 && other.error == axes.error)) {
        keep = false;
        break;
      }
    }
    if (keep) {
      for (const std::size_t index : axes.point_indices) {
        frontier.push_back(points[index]);
      }
    }
  }

  std::sort(frontier.begin(), frontier.end(), point_less);
  return frontier;
}

}  // namespace nacu::dse
