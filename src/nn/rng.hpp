// Deterministic PRNG for datasets and weight init (xoshiro-style), so
// experiments reproduce bit-for-bit across runs and platforms.
#pragma once

#include <cmath>
#include <cstdint>
#include <numbers>

namespace nacu::nn {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) : state_{seed} {
    // Avoid the all-zero fixed point.
    if (state_ == 0) state_ = 1;
  }

  /// Uniform 64-bit (splitmix64 step).
  std::uint64_t next() noexcept {
    state_ += 0x9E3779B97F4A7C15ull;
    std::uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, 1).
  double uniform() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Standard normal (Box–Muller).
  double gaussian() noexcept {
    const double u1 = uniform();
    const double u2 = uniform();
    return std::sqrt(-2.0 * std::log(u1 + 1e-300)) *
           std::cos(2.0 * std::numbers::pi * u2);
  }

  /// Uniform integer in [0, n); returns 0 when n == 0 (the old
  /// `next() % n` was UB there). Lemire multiply-shift with rejection:
  /// exactly uniform, no modulo bias, and one draw in the common case.
  std::uint64_t below(std::uint64_t n) noexcept {
    if (n == 0) {
      return 0;
    }
    unsigned __int128 m = static_cast<unsigned __int128>(next()) * n;
    auto low = static_cast<std::uint64_t>(m);
    if (low < n) {
      // 2^64 mod n, computed without 128-bit division.
      const std::uint64_t threshold = (0 - n) % n;
      while (low < threshold) {
        m = static_cast<unsigned __int128>(next()) * n;
        low = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

 private:
  std::uint64_t state_;
};

}  // namespace nacu::nn
