// Post-training-quantised MLP inference where every non-linearity is NACU.
//
// Weights, biases and activations are quantised to the NACU datapath format;
// dot products accumulate through the NACU MAC (wide accumulator, truncating
// requantisation), hidden layers apply NACU σ or tanh, and the output layer
// is the NACU softmax (Eq. 13 normalisation, exp via Eq. 14, divider pass).
// This is the end-to-end deployment story the paper's CGRA hosts imply.
//
// Non-linearities go through core::BatchNacu at layer granularity: one batch
// σ/tanh call per dense layer and one batched softmax at the output —
// bit-identical to per-element scalar evaluation, but served from the dense
// activation table once layers are wide enough to build it.
#pragma once

#include <cstdint>
#include <vector>

#include "core/batch_nacu.hpp"
#include "nn/mlp.hpp"
#include "simd/qgemm.hpp"

namespace nacu::nn {

class QuantizedMlp {
 public:
  /// Quantise @p reference onto @p config's formats. Throws when a weight
  /// magnitude exceeds the representable range (pick a wider format).
  QuantizedMlp(const Mlp& reference, const core::NacuConfig& config);

  [[nodiscard]] std::vector<double> predict_proba(
      const std::vector<double>& input) const;
  [[nodiscard]] int predict(const std::vector<double>& input) const;
  [[nodiscard]] double accuracy(const Dataset& data) const;

  /// Mean |p_fixed − p_float| over all samples/classes — the probability
  /// drift induced by quantisation + NACU approximation.
  [[nodiscard]] double mean_probability_drift(const Mlp& reference,
                                              const Dataset& data) const;

  [[nodiscard]] const core::Nacu& unit() const noexcept {
    return unit_.unit();
  }
  [[nodiscard]] const core::BatchNacu& batch_unit() const noexcept {
    return unit_;
  }
  /// Mutable access to the batch engine — needed to arm fault injection on
  /// the activation tables / σ-LUT beneath this network (fault/).
  [[nodiscard]] core::BatchNacu& batch_unit() noexcept { return unit_; }

 private:
  /// One dense layer: NACU-MAC accumulation, requantise, optional σ/tanh.
  [[nodiscard]] std::vector<fp::Fixed> dense_forward(
      std::size_t layer, const std::vector<fp::Fixed>& input,
      bool apply_activation) const;

  core::BatchNacu unit_;
  HiddenActivation activation_;
  fp::Format fmt_;
  fp::Format acc_fmt_;
  std::vector<std::vector<std::vector<std::int64_t>>> weights_raw_;
  std::vector<std::vector<std::int64_t>> biases_raw_;
  /// Tile-packed copies of weights_raw_ for the fused GEMV kernel; empty
  /// when the (data, accumulator) format pair is outside the kernel's
  /// int32-exactness envelope (fused_ok_ == false), in which case
  /// dense_forward keeps the Fixed-API MAC loop.
  std::vector<simd::PackedQGemm> packed_;
  bool fused_ok_ = false;
};

}  // namespace nacu::nn
