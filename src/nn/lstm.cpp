#include "nn/lstm.hpp"

#include <cmath>

#include "nn/rng.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace nacu::nn {

namespace {

double sigmoid_ref(double x) { return 1.0 / (1.0 + std::exp(-x)); }

}  // namespace

LstmWeights LstmWeights::random(std::size_t input, std::size_t hidden,
                                std::uint64_t seed) {
  Rng rng{seed};
  LstmWeights w;
  w.input = input;
  w.hidden = hidden;
  w.wx = MatrixD{4 * hidden, input};
  w.wh = MatrixD{4 * hidden, hidden};
  w.b.assign(4 * hidden, 0.0);
  const double scale = 0.5 / std::sqrt(static_cast<double>(hidden));
  for (double& v : w.wx.data()) {
    v = scale * rng.gaussian();
  }
  for (double& v : w.wh.data()) {
    v = scale * rng.gaussian();
  }
  // Forget-gate bias of +1 (conventional initialisation).
  for (std::size_t i = hidden; i < 2 * hidden; ++i) {
    w.b[i] = 1.0;
  }
  return w;
}

LstmStateF lstm_step_ref(const LstmWeights& weights, const LstmStateF& state,
                         const std::vector<double>& x) {
  const std::size_t h = weights.hidden;
  std::vector<double> pre(4 * h, 0.0);
  for (std::size_t r = 0; r < 4 * h; ++r) {
    double acc = weights.b[r];
    for (std::size_t i = 0; i < weights.input; ++i) {
      acc += weights.wx(r, i) * x[i];
    }
    for (std::size_t i = 0; i < h; ++i) {
      acc += weights.wh(r, i) * state.h[i];
    }
    pre[r] = acc;
  }
  LstmStateF next;
  next.h.resize(h);
  next.c.resize(h);
  for (std::size_t i = 0; i < h; ++i) {
    const double ig = sigmoid_ref(pre[i]);
    const double fg = sigmoid_ref(pre[h + i]);
    const double cand = std::tanh(pre[2 * h + i]);
    const double og = sigmoid_ref(pre[3 * h + i]);
    next.c[i] = fg * state.c[i] + ig * cand;
    next.h[i] = og * std::tanh(next.c[i]);
  }
  return next;
}

LstmFixed::LstmFixed(const LstmWeights& weights,
                     const core::NacuConfig& config)
    : weights_{weights},
      unit_{config},
      fmt_{config.format},
      acc_fmt_{config.format.integer_bits() + 6,
               config.format.fractional_bits()} {
  // Quantise every weight/bias once — step() used to re-quantise each
  // weight on every MAC. from_double is deterministic, so the raws are the
  // bits those calls produced.
  const std::size_t rows4 = 4 * weights_.hidden;
  wx_raw_.reserve(rows4 * weights_.input);
  wh_raw_.reserve(rows4 * weights_.hidden);
  b_raw_.reserve(rows4);
  for (std::size_t r = 0; r < rows4; ++r) {
    for (std::size_t i = 0; i < weights_.input; ++i) {
      wx_raw_.push_back(fp::Fixed::from_double(weights_.wx(r, i), fmt_).raw());
    }
    for (std::size_t i = 0; i < weights_.hidden; ++i) {
      wh_raw_.push_back(fp::Fixed::from_double(weights_.wh(r, i), fmt_).raw());
    }
    b_raw_.push_back(fp::Fixed::from_double(weights_.b[r], fmt_).raw());
  }
  fused_ok_ = simd::PackedQGemm::formats_supported(fmt_, acc_fmt_);
  if (fused_ok_) {
    wx_packed_ = simd::PackedQGemm{
        rows4, weights_.input, [this](std::size_t o, std::size_t i) {
          return wx_raw_[o * weights_.input + i];
        }};
    wh_packed_ = simd::PackedQGemm{
        rows4, weights_.hidden, [this](std::size_t o, std::size_t i) {
          return wh_raw_[o * weights_.hidden + i];
        }};
  }
}

LstmFixed::State LstmFixed::initial_state() const {
  State s;
  s.h.assign(weights_.hidden, fp::Fixed::zero(fmt_));
  s.c.assign(weights_.hidden, fp::Fixed::zero(fmt_));
  return s;
}

fp::Fixed LstmFixed::gate_preactivation(std::size_t row,
                                        const std::vector<fp::Fixed>& xq,
                                        const State& state) const {
  fp::Fixed acc =
      fp::Fixed::from_raw(b_raw_[row], fmt_).requantize(acc_fmt_);
  for (std::size_t i = 0; i < weights_.input; ++i) {
    acc = unit_.unit().mac(
        acc, fp::Fixed::from_raw(wx_raw_[row * weights_.input + i], fmt_),
        xq[i]);
  }
  for (std::size_t i = 0; i < weights_.hidden; ++i) {
    acc = unit_.unit().mac(
        acc, fp::Fixed::from_raw(wh_raw_[row * weights_.hidden + i], fmt_),
        state.h[i]);
  }
  return acc.requantize(fmt_, fp::Rounding::Truncate, fp::Overflow::Saturate);
}

std::vector<fp::Fixed> LstmFixed::gate_preactivations(
    const std::vector<fp::Fixed>& xq, const State& state) const {
  const std::size_t rows4 = 4 * weights_.hidden;
  bool fused = fused_ok_ && xq.size() == weights_.input &&
               state.h.size() == weights_.hidden;
  if (fused) {
    for (const fp::Fixed& v : xq) {
      if (v.format() != fmt_) {
        fused = false;
        break;
      }
    }
    for (const fp::Fixed& v : state.h) {
      if (fused && v.format() != fmt_) {
        fused = false;
      }
    }
  }
  std::vector<fp::Fixed> pre;
  pre.reserve(rows4);
  if (fused) {
    // Two fused GEMV passes per step: the wx chain first, the wh chain
    // continuing on the same accumulators — the exact MAC order of
    // gate_preactivation.
    const simd::Backend backend = unit_.backend();
    const int fb = fmt_.fractional_bits();
    std::vector<std::int32_t> xv(xq.size());
    for (std::size_t i = 0; i < xq.size(); ++i) {
      xv[i] = static_cast<std::int32_t>(xq[i].raw());
    }
    std::vector<std::int32_t> hv(state.h.size());
    for (std::size_t i = 0; i < state.h.size(); ++i) {
      hv[i] = static_cast<std::int32_t>(state.h[i].raw());
    }
    std::vector<std::int32_t> acc(wx_packed_.padded_out(), 0);
    for (std::size_t r = 0; r < rows4; ++r) {
      acc[r] = static_cast<std::int32_t>(b_raw_[r]);
    }
    const auto acc_min = static_cast<std::int32_t>(acc_fmt_.min_raw());
    const auto acc_max = static_cast<std::int32_t>(acc_fmt_.max_raw());
    wx_packed_.accumulate(backend, xv.data(), acc.data(), fb, acc_min,
                          acc_max);
    wh_packed_.accumulate(backend, hv.data(), acc.data(), fb, acc_min,
                          acc_max);
    const std::int64_t lo = fmt_.min_raw();
    const std::int64_t hi = fmt_.max_raw();
    for (std::size_t r = 0; r < rows4; ++r) {
      std::int64_t raw = acc[r];
      if (raw < lo) {
        raw = lo;
      } else if (raw > hi) {
        raw = hi;
      }
      pre.push_back(fp::Fixed::from_raw_unchecked(raw, fmt_));
    }
    return pre;
  }
  for (std::size_t r = 0; r < rows4; ++r) {
    pre.push_back(gate_preactivation(r, xq, state));
  }
  return pre;
}

LstmFixed::State LstmFixed::step(const State& state,
                                 const std::vector<double>& x) const {
  const obs::TraceSpan span{"LstmFixed::step"};
  static obs::Counter& steps = obs::counter("nn.lstm.steps");
  static obs::Histogram& step_ns = obs::histogram("nn.lstm.step_ns");
  const obs::ScopedTimer timer{step_ns};
  steps.add();
  const std::size_t h = weights_.hidden;
  std::vector<fp::Fixed> xq;
  xq.reserve(x.size());
  for (const double v : x) {
    xq.push_back(fp::Fixed::from_double(v, fmt_));
  }
  // Gate pre-activations for the whole step (row order: i, f, cand, o),
  // then the σ/tanh mix of §I as two batch passes: σ over the 3H gate rows
  // (input, forget, output), tanh over the H candidate rows.
  const std::vector<fp::Fixed> pre = gate_preactivations(xq, state);
  std::vector<fp::Fixed> sig_pre;
  sig_pre.reserve(3 * h);
  std::vector<fp::Fixed> tanh_pre;
  tanh_pre.reserve(h);
  sig_pre.insert(sig_pre.end(), pre.begin(), pre.begin() + 2 * h);
  tanh_pre.insert(tanh_pre.end(), pre.begin() + 2 * h, pre.begin() + 3 * h);
  sig_pre.insert(sig_pre.end(), pre.begin() + 3 * h, pre.end());
  unit_.evaluate(core::BatchNacu::Function::Sigmoid, sig_pre, sig_pre);
  unit_.evaluate(core::BatchNacu::Function::Tanh, tanh_pre, tanh_pre);

  State next;
  next.c.reserve(h);
  for (std::size_t i = 0; i < h; ++i) {
    // c' = fg·c + ig·cand through the MAC (two accumulate steps).
    fp::Fixed c_acc = fp::Fixed::zero(acc_fmt_);
    c_acc = unit_.unit().mac(c_acc, sig_pre[h + i], state.c[i]);
    c_acc = unit_.unit().mac(c_acc, sig_pre[i], tanh_pre[i]);
    next.c.push_back(c_acc.requantize(fmt_, fp::Rounding::Truncate,
                                      fp::Overflow::Saturate));
  }
  // h' = og · tanh(c'): one more batch tanh pass over the new cell states.
  std::vector<fp::Fixed> tanh_c = unit_.evaluate(
      core::BatchNacu::Function::Tanh, next.c);
  next.h.reserve(h);
  for (std::size_t i = 0; i < h; ++i) {
    next.h.push_back(
        tanh_c[i].mul(sig_pre[2 * h + i], fmt_, fp::Rounding::Truncate));
  }
  return next;
}

double lstm_state_drift(const LstmWeights& weights,
                        const core::NacuConfig& config, std::size_t steps,
                        std::uint64_t seed) {
  LstmFixed fixed{weights, config};
  LstmFixed::State fixed_state = fixed.initial_state();
  LstmStateF ref_state;
  ref_state.h.assign(weights.hidden, 0.0);
  ref_state.c.assign(weights.hidden, 0.0);
  Rng rng{seed};
  double drift_sum = 0.0;
  std::size_t count = 0;
  for (std::size_t t = 0; t < steps; ++t) {
    std::vector<double> x(weights.input);
    for (double& v : x) {
      v = rng.uniform(-1.0, 1.0);
    }
    ref_state = lstm_step_ref(weights, ref_state, x);
    fixed_state = fixed.step(fixed_state, x);
    for (std::size_t i = 0; i < weights.hidden; ++i) {
      drift_sum += std::abs(fixed_state.h[i].to_double() - ref_state.h[i]);
      ++count;
    }
  }
  return drift_sum / static_cast<double>(count);
}

}  // namespace nacu::nn
