#include "nn/conv.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "nn/rng.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "simd/dispatch.hpp"
#include "simd/kernels.hpp"
#include "simd/qgemm.hpp"

namespace nacu::nn {

Dataset make_pattern_images(std::size_t samples_per_class, double noise,
                            std::uint64_t seed) {
  constexpr std::size_t kSize = 8;
  Rng rng{seed};
  Dataset d;
  d.classes = 3;
  d.inputs = MatrixD{samples_per_class * 3, kSize * kSize};
  d.labels.reserve(samples_per_class * 3);
  std::size_t row = 0;
  for (int c = 0; c < 3; ++c) {
    for (std::size_t s = 0; s < samples_per_class; ++s, ++row) {
      const std::size_t phase = rng.below(2);
      for (std::size_t r = 0; r < kSize; ++r) {
        for (std::size_t col = 0; col < kSize; ++col) {
          double value = 0.0;
          switch (c) {
            case 0:  // horizontal stripes
              value = ((r + phase) % 2 == 0) ? 1.0 : -1.0;
              break;
            case 1:  // vertical stripes
              value = ((col + phase) % 2 == 0) ? 1.0 : -1.0;
              break;
            default:  // diagonal
              value = ((r + col + phase) % 2 == 0) ? 1.0 : -1.0;
              break;
          }
          d.inputs(row, r * kSize + col) = value + noise * rng.gaussian();
        }
      }
      d.labels.push_back(c);
    }
  }
  return d;
}

MatrixD conv2d_valid(const MatrixD& image, const MatrixD& filter) {
  if (filter.rows() > image.rows() || filter.cols() > image.cols()) {
    throw std::invalid_argument("filter larger than image");
  }
  const std::size_t out_r = image.rows() - filter.rows() + 1;
  const std::size_t out_c = image.cols() - filter.cols() + 1;
  MatrixD out{out_r, out_c};
  for (std::size_t r = 0; r < out_r; ++r) {
    for (std::size_t c = 0; c < out_c; ++c) {
      double acc = 0.0;
      for (std::size_t fr = 0; fr < filter.rows(); ++fr) {
        for (std::size_t fc = 0; fc < filter.cols(); ++fc) {
          acc += image(r + fr, c + fc) * filter(fr, fc);
        }
      }
      out(r, c) = acc;
    }
  }
  return out;
}

MatrixD maxpool2(const MatrixD& input) {
  const std::size_t out_r = input.rows() / 2;
  const std::size_t out_c = input.cols() / 2;
  MatrixD out{out_r, out_c};
  for (std::size_t r = 0; r < out_r; ++r) {
    for (std::size_t c = 0; c < out_c; ++c) {
      out(r, c) = std::max({input(2 * r, 2 * c), input(2 * r, 2 * c + 1),
                            input(2 * r + 1, 2 * c),
                            input(2 * r + 1, 2 * c + 1)});
    }
  }
  return out;
}

ConvFeatures::ConvFeatures(std::size_t filters, std::uint64_t seed) {
  Rng rng{seed};
  for (std::size_t f = 0; f < filters; ++f) {
    MatrixD filter{3, 3};
    for (double& v : filter.data()) {
      v = 0.4 * rng.gaussian();
    }
    filters_.push_back(std::move(filter));
  }
}

std::size_t ConvFeatures::feature_size(std::size_t rows,
                                       std::size_t cols) const {
  const std::size_t conv_r = rows - 2;
  const std::size_t conv_c = cols - 2;
  return filters_.size() * (conv_r / 2) * (conv_c / 2);
}

std::vector<double> ConvFeatures::extract_float(const MatrixD& image) const {
  std::vector<double> features;
  for (const MatrixD& filter : filters_) {
    MatrixD conv = conv2d_valid(image, filter);
    for (double& v : conv.data()) {
      v = 1.0 / (1.0 + std::exp(-v));
    }
    const MatrixD pooled = maxpool2(conv);
    features.insert(features.end(), pooled.data().begin(),
                    pooled.data().end());
  }
  return features;
}

std::vector<double> ConvFeatures::extract_fixed(
    const MatrixD& image, const core::Nacu& unit) const {
  const fp::Format fmt = unit.format();
  const fp::Format acc_fmt{fmt.integer_bits() + 6, fmt.fractional_bits()};
  std::vector<double> features;
  for (const MatrixD& filter : filters_) {
    const std::size_t out_r = image.rows() - 2;
    const std::size_t out_c = image.cols() - 2;
    MatrixD activated{out_r, out_c};
    for (std::size_t r = 0; r < out_r; ++r) {
      for (std::size_t c = 0; c < out_c; ++c) {
        // The convolution sum accumulates on the NACU MAC (paper §V.B:
        // "accumulate a convolution sum that is common in ANNs before the
        // non-linearity is applied").
        fp::Fixed acc = fp::Fixed::zero(acc_fmt);
        for (std::size_t fr = 0; fr < 3; ++fr) {
          for (std::size_t fc = 0; fc < 3; ++fc) {
            acc = unit.mac(
                acc, fp::Fixed::from_double(filter(fr, fc), fmt),
                fp::Fixed::from_double(image(r + fr, c + fc), fmt));
          }
        }
        const fp::Fixed z = acc.requantize(fmt, fp::Rounding::Truncate,
                                           fp::Overflow::Saturate);
        activated(r, c) = unit.sigmoid(z).to_double();
      }
    }
    const MatrixD pooled = maxpool2(activated);
    features.insert(features.end(), pooled.data().begin(),
                    pooled.data().end());
  }
  return features;
}

std::vector<double> ConvFeatures::extract_fixed(
    const MatrixD& image, const core::BatchNacu& unit) const {
  const obs::TraceSpan span{"ConvFeatures::extract_fixed"};
  static obs::Counter& extracts = obs::counter("nn.conv.extracts");
  static obs::Histogram& extract_ns = obs::histogram("nn.conv.extract_ns");
  const obs::ScopedTimer timer{extract_ns};
  extracts.add();
  const fp::Format fmt = unit.format();
  const fp::Format acc_fmt{fmt.integer_bits() + 6, fmt.fractional_bits()};
  const bool fused =
      simd::PackedQGemm::formats_supported(fmt, acc_fmt) &&
      image.rows() >= 3 && image.cols() >= 3;
  const simd::Backend backend = unit.backend();
  // Quantise the image once (the Fixed-API loop below re-quantises every
  // pixel up to 9 times) — from_double is deterministic, same raws.
  std::vector<std::int32_t> img_raw;
  if (fused) {
    img_raw.reserve(image.rows() * image.cols());
    for (std::size_t r = 0; r < image.rows(); ++r) {
      for (std::size_t c = 0; c < image.cols(); ++c) {
        img_raw.push_back(static_cast<std::int32_t>(
            fp::Fixed::from_double(image(r, c), fmt).raw()));
      }
    }
  }
  std::vector<double> features;
  for (const MatrixD& filter : filters_) {
    const std::size_t out_r = image.rows() - 2;
    const std::size_t out_c = image.cols() - 2;
    // Accumulate the whole feature map's pre-activations, then run one
    // batch σ pass over it instead of a scalar call per pixel.
    std::vector<fp::Fixed> pre;
    pre.reserve(out_r * out_c);
    if (fused) {
      std::int32_t filter9[9];
      for (std::size_t fr = 0; fr < 3; ++fr) {
        for (std::size_t fc = 0; fc < 3; ++fc) {
          filter9[fr * 3 + fc] = static_cast<std::int32_t>(
              fp::Fixed::from_double(filter(fr, fc), fmt).raw());
        }
      }
      const auto acc_min = static_cast<std::int32_t>(acc_fmt.min_raw());
      const auto acc_max = static_cast<std::int32_t>(acc_fmt.max_raw());
      const std::int64_t lo = fmt.min_raw();
      const std::int64_t hi = fmt.max_raw();
      std::vector<std::int32_t> acc(out_c);
      for (std::size_t r = 0; r < out_r; ++r) {
        std::fill(acc.begin(), acc.end(), 0);
        // One kernel call MACs all 9 taps across the whole output row with
        // the fr-major tap order (and per-step clamp) of the loop below.
        simd::conv3x3_mac_row(
            backend, img_raw.data() + r * image.cols(),
            img_raw.data() + (r + 1) * image.cols(),
            img_raw.data() + (r + 2) * image.cols(), filter9, out_c,
            fmt.fractional_bits(), acc_min, acc_max, acc.data());
        for (std::size_t c = 0; c < out_c; ++c) {
          std::int64_t raw = acc[c];
          if (raw < lo) {
            raw = lo;
          } else if (raw > hi) {
            raw = hi;
          }
          pre.push_back(fp::Fixed::from_raw_unchecked(raw, fmt));
        }
      }
    } else {
      for (std::size_t r = 0; r < out_r; ++r) {
        for (std::size_t c = 0; c < out_c; ++c) {
          fp::Fixed acc = fp::Fixed::zero(acc_fmt);
          for (std::size_t fr = 0; fr < 3; ++fr) {
            for (std::size_t fc = 0; fc < 3; ++fc) {
              acc = unit.unit().mac(
                  acc, fp::Fixed::from_double(filter(fr, fc), fmt),
                  fp::Fixed::from_double(image(r + fr, c + fc), fmt));
            }
          }
          pre.push_back(acc.requantize(fmt, fp::Rounding::Truncate,
                                       fp::Overflow::Saturate));
        }
      }
    }
    unit.evaluate(core::BatchNacu::Function::Sigmoid, pre, pre);
    MatrixD activated{out_r, out_c};
    for (std::size_t r = 0; r < out_r; ++r) {
      for (std::size_t c = 0; c < out_c; ++c) {
        activated(r, c) = pre[r * out_c + c].to_double();
      }
    }
    const MatrixD pooled = maxpool2(activated);
    features.insert(features.end(), pooled.data().begin(),
                    pooled.data().end());
  }
  return features;
}

MatrixD row_to_image(const Dataset& data, std::size_t row, std::size_t rows,
                     std::size_t cols) {
  if (rows * cols != data.inputs.cols()) {
    throw std::invalid_argument("image shape does not match dataset row");
  }
  MatrixD image{rows, cols};
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      image(r, c) = data.inputs(row, r * cols + c);
    }
  }
  return image;
}

}  // namespace nacu::nn
