#include "nn/dataset.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <numeric>
#include <stdexcept>

#include "nn/rng.hpp"

namespace nacu::nn {

Dataset make_blobs(std::size_t samples_per_class, int classes,
                   std::uint64_t seed) {
  Rng rng{seed};
  Dataset d;
  d.classes = classes;
  d.inputs = MatrixD{samples_per_class * classes, 2};
  d.labels.reserve(samples_per_class * classes);
  std::size_t row = 0;
  for (int c = 0; c < classes; ++c) {
    const double angle = 2.0 * std::numbers::pi * c / classes;
    const double cx = 3.0 * std::cos(angle);
    const double cy = 3.0 * std::sin(angle);
    for (std::size_t s = 0; s < samples_per_class; ++s, ++row) {
      d.inputs(row, 0) = cx + rng.gaussian();
      d.inputs(row, 1) = cy + rng.gaussian();
      d.labels.push_back(c);
    }
  }
  return d;
}

Dataset make_spirals(std::size_t samples_per_class, double noise,
                     std::uint64_t seed) {
  Rng rng{seed};
  Dataset d;
  d.classes = 2;
  d.inputs = MatrixD{samples_per_class * 2, 2};
  d.labels.reserve(samples_per_class * 2);
  std::size_t row = 0;
  for (int c = 0; c < 2; ++c) {
    for (std::size_t s = 0; s < samples_per_class; ++s, ++row) {
      const double t =
          static_cast<double>(s) / static_cast<double>(samples_per_class);
      const double r = 0.2 + 2.3 * t;
      const double phi =
          1.75 * t * 2.0 * std::numbers::pi + c * std::numbers::pi;
      d.inputs(row, 0) = r * std::cos(phi) + noise * rng.gaussian();
      d.inputs(row, 1) = r * std::sin(phi) + noise * rng.gaussian();
      d.labels.push_back(c);
    }
  }
  return d;
}

Split train_test_split(const Dataset& dataset, double train_fraction,
                       std::uint64_t seed) {
  if (train_fraction <= 0.0 || train_fraction >= 1.0) {
    throw std::invalid_argument("train_fraction must be in (0, 1)");
  }
  if (dataset.size() < 2) {
    throw std::invalid_argument(
        "train_test_split needs at least 2 samples");
  }
  std::vector<std::size_t> order(dataset.size());
  std::iota(order.begin(), order.end(), 0);
  Rng rng{seed};
  for (std::size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[rng.below(i)]);
  }
  // Clamp so neither partition is empty: 3 samples at 0.1 used to yield
  // an empty train set (and accuracy() divides by size()).
  const auto n_train = std::clamp<std::size_t>(
      static_cast<std::size_t>(train_fraction * dataset.size()), 1,
      dataset.size() - 1);
  Split split;
  for (Dataset* part : {&split.train, &split.test}) {
    part->classes = dataset.classes;
  }
  split.train.inputs = MatrixD{n_train, dataset.inputs.cols()};
  split.test.inputs = MatrixD{dataset.size() - n_train, dataset.inputs.cols()};
  split.train.labels.reserve(n_train);
  split.test.labels.reserve(dataset.size() - n_train);
  for (std::size_t i = 0; i < order.size(); ++i) {
    Dataset& part = i < n_train ? split.train : split.test;
    const std::size_t row = i < n_train ? i : i - n_train;
    for (std::size_t c = 0; c < dataset.inputs.cols(); ++c) {
      part.inputs(row, c) = dataset.inputs(order[i], c);
    }
    part.labels.push_back(dataset.labels[order[i]]);
  }
  return split;
}

}  // namespace nacu::nn
