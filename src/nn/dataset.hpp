// Synthetic classification datasets.
//
// The paper motivates NACU with ANN inference but evaluates the unit in
// isolation; we close the loop end-to-end on synthetic tasks (no external
// data is available offline — see DESIGN.md substitutions): Gaussian blobs
// (linearly separable-ish, exercises σ/softmax) and two-spirals (needs a
// non-linear boundary, exercises tanh hidden layers).
#pragma once

#include <cstdint>
#include <vector>

#include "nn/matrix.hpp"

namespace nacu::nn {

struct Dataset {
  MatrixD inputs;           ///< one sample per row
  std::vector<int> labels;  ///< class index per row
  int classes = 0;

  [[nodiscard]] std::size_t size() const noexcept { return labels.size(); }
};

/// @p classes Gaussian clusters on a circle of radius 3, unit variance.
[[nodiscard]] Dataset make_blobs(std::size_t samples_per_class, int classes,
                                 std::uint64_t seed = 1);

/// Classic two-intertwined-spirals task (2 classes).
[[nodiscard]] Dataset make_spirals(std::size_t samples_per_class,
                                   double noise = 0.08,
                                   std::uint64_t seed = 1);

/// Deterministic shuffled split; @p train_fraction in (0, 1).
struct Split {
  Dataset train;
  Dataset test;
};
[[nodiscard]] Split train_test_split(const Dataset& dataset,
                                     double train_fraction,
                                     std::uint64_t seed = 2);

}  // namespace nacu::nn
