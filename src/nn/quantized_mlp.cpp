#include "nn/quantized_mlp.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace nacu::nn {

QuantizedMlp::QuantizedMlp(const Mlp& reference,
                           const core::NacuConfig& config)
    : unit_{config},
      activation_{reference.config().activation},
      fmt_{config.format},
      // MAC accumulator: datapath fb with headroom integer bits for the
      // longest dot product.
      acc_fmt_{std::min(config.format.integer_bits() + 8,
                        fp::Format::kMaxWidth - 1 -
                            config.format.fractional_bits()),
               config.format.fractional_bits()} {
  if (reference.max_parameter_magnitude() >= fmt_.max_value()) {
    throw std::invalid_argument(
        "trained weights exceed the datapath format range");
  }
  for (std::size_t l = 0; l < reference.layers(); ++l) {
    const MatrixD& w = reference.weights(l);
    std::vector<std::vector<std::int64_t>> wq(w.rows());
    for (std::size_t o = 0; o < w.rows(); ++o) {
      wq[o].reserve(w.cols());
      for (std::size_t i = 0; i < w.cols(); ++i) {
        wq[o].push_back(fp::Fixed::from_double(w(o, i), fmt_).raw());
      }
    }
    weights_raw_.push_back(std::move(wq));
    std::vector<std::int64_t> bq;
    bq.reserve(reference.biases(l).size());
    for (const double v : reference.biases(l)) {
      bq.push_back(fp::Fixed::from_double(v, fmt_).raw());
    }
    biases_raw_.push_back(std::move(bq));
  }
  fused_ok_ = simd::PackedQGemm::formats_supported(fmt_, acc_fmt_);
  if (fused_ok_) {
    packed_.reserve(weights_raw_.size());
    for (const auto& wq : weights_raw_) {
      const std::size_t out_dim = wq.size();
      const std::size_t in_dim = out_dim > 0 ? wq[0].size() : 0;
      packed_.emplace_back(out_dim, in_dim,
                           [&wq](std::size_t o, std::size_t i) {
                             return wq[o][i];
                           });
    }
  }
}

std::vector<fp::Fixed> QuantizedMlp::dense_forward(
    std::size_t layer, const std::vector<fp::Fixed>& input,
    bool apply_activation) const {
  const obs::TraceSpan span{"QuantizedMlp::dense_forward"};
  static obs::Counter& layers_run = obs::counter("nn.mlp.layers_run");
  static obs::Counter& fused_layers = obs::counter("nn.mlp.fused_layers");
  static obs::Histogram& layer_ns = obs::histogram("nn.mlp.layer_ns");
  const obs::ScopedTimer timer{layer_ns};
  layers_run.add();
  const auto& w = weights_raw_[layer];
  const auto& b = biases_raw_[layer];
  std::vector<fp::Fixed> out;
  out.reserve(w.size());
  // Fused path: the whole layer's MAC chains run through the tile-packed
  // int32 kernel — per-step truncate+saturate in the same input order as
  // Fixed::mac, so the raws match the loop below bit-for-bit. Inputs off
  // the datapath grid (can't happen from predict_proba, but the API allows
  // it) fall back to the Fixed-API loop, whose format handling is general.
  bool fused = fused_ok_ && !w.empty() &&
               input.size() == packed_[layer].in_dim();
  if (fused) {
    for (const fp::Fixed& v : input) {
      if (v.format() != fmt_) {
        fused = false;
        break;
      }
    }
  }
  if (fused) {
    fused_layers.add();
    const simd::PackedQGemm& pg = packed_[layer];
    std::vector<std::int32_t> x(input.size());
    for (std::size_t i = 0; i < input.size(); ++i) {
      x[i] = static_cast<std::int32_t>(input[i].raw());
    }
    std::vector<std::int32_t> acc(pg.padded_out(), 0);
    for (std::size_t o = 0; o < w.size(); ++o) {
      // Bias preload: requantize(acc_fmt_) keeps the raw (same fb, wider
      // range), so the int32 accumulator starts at the bias raw directly.
      acc[o] = static_cast<std::int32_t>(b[o]);
    }
    pg.accumulate(unit_.backend(), x.data(),
                  acc.data(), fmt_.fractional_bits(),
                  static_cast<std::int32_t>(acc_fmt_.min_raw()),
                  static_cast<std::int32_t>(acc_fmt_.max_raw()));
    const std::int64_t lo = fmt_.min_raw();
    const std::int64_t hi = fmt_.max_raw();
    for (std::size_t o = 0; o < w.size(); ++o) {
      std::int64_t raw = acc[o];
      if (raw < lo) {
        raw = lo;
      } else if (raw > hi) {
        raw = hi;
      }
      out.push_back(fp::Fixed::from_raw_unchecked(raw, fmt_));
    }
  } else {
    for (std::size_t o = 0; o < w.size(); ++o) {
      // Bias preloads the accumulator; each term goes through the NACU MAC.
      fp::Fixed acc = fp::Fixed::from_raw(b[o], fmt_).requantize(acc_fmt_);
      for (std::size_t i = 0; i < input.size(); ++i) {
        acc = unit_.unit().mac(acc, fp::Fixed::from_raw(w[o][i], fmt_),
                               input[i]);
      }
      out.push_back(acc.requantize(fmt_, fp::Rounding::Truncate,
                                   fp::Overflow::Saturate));
    }
  }
  if (apply_activation) {
    // One batch activation pass over the whole layer.
    unit_.evaluate(activation_ == HiddenActivation::Sigmoid
                       ? core::BatchNacu::Function::Sigmoid
                       : core::BatchNacu::Function::Tanh,
                   out, out);
  }
  return out;
}

std::vector<double> QuantizedMlp::predict_proba(
    const std::vector<double>& input) const {
  std::vector<fp::Fixed> acts;
  acts.reserve(input.size());
  for (const double v : input) {
    acts.push_back(fp::Fixed::from_double(v, fmt_));
  }
  for (std::size_t l = 0; l < weights_raw_.size(); ++l) {
    acts = dense_forward(l, acts, l + 1 < weights_raw_.size());
  }
  const std::vector<fp::Fixed> probs = unit_.softmax(acts);
  std::vector<double> out;
  out.reserve(probs.size());
  for (const fp::Fixed& p : probs) {
    out.push_back(p.to_double());
  }
  return out;
}

int QuantizedMlp::predict(const std::vector<double>& input) const {
  const std::vector<double> p = predict_proba(input);
  return static_cast<int>(std::max_element(p.begin(), p.end()) - p.begin());
}

double QuantizedMlp::accuracy(const Dataset& data) const {
  std::size_t correct = 0;
  std::vector<double> input(data.inputs.cols());
  for (std::size_t s = 0; s < data.size(); ++s) {
    for (std::size_t c = 0; c < input.size(); ++c) {
      input[c] = data.inputs(s, c);
    }
    if (predict(input) == data.labels[s]) {
      ++correct;
    }
  }
  return static_cast<double>(correct) / static_cast<double>(data.size());
}

double QuantizedMlp::mean_probability_drift(const Mlp& reference,
                                            const Dataset& data) const {
  double sum = 0.0;
  std::size_t count = 0;
  std::vector<double> input(data.inputs.cols());
  for (std::size_t s = 0; s < data.size(); ++s) {
    for (std::size_t c = 0; c < input.size(); ++c) {
      input[c] = data.inputs(s, c);
    }
    const std::vector<double> pf = predict_proba(input);
    const std::vector<double> pr = reference.predict_proba(input);
    for (std::size_t k = 0; k < pf.size(); ++k) {
      sum += std::abs(pf[k] - pr[k]);
      ++count;
    }
  }
  return sum / static_cast<double>(count);
}

}  // namespace nacu::nn
