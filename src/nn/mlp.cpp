#include "nn/mlp.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "nn/rng.hpp"

namespace nacu::nn {

namespace {

double activate(HiddenActivation kind, double x) {
  return kind == HiddenActivation::Sigmoid ? 1.0 / (1.0 + std::exp(-x))
                                           : std::tanh(x);
}

/// Derivative expressed through the activation value a (not the pre-act).
double activate_grad(HiddenActivation kind, double a) {
  return kind == HiddenActivation::Sigmoid ? a * (1.0 - a) : 1.0 - a * a;
}

}  // namespace

std::vector<double> softmax_ref(const std::vector<double>& z) {
  const double zmax = *std::max_element(z.begin(), z.end());
  std::vector<double> out(z.size());
  double denom = 0.0;
  for (std::size_t i = 0; i < z.size(); ++i) {
    out[i] = std::exp(z[i] - zmax);
    denom += out[i];
  }
  for (double& v : out) {
    v /= denom;
  }
  return out;
}

Mlp::Mlp(const MlpConfig& config) : config_{config} {
  if (config_.layer_sizes.size() < 2) {
    throw std::invalid_argument("Mlp needs at least input and output layers");
  }
  Rng rng{config_.seed};
  for (std::size_t l = 0; l + 1 < config_.layer_sizes.size(); ++l) {
    const std::size_t fan_in = config_.layer_sizes[l];
    const std::size_t fan_out = config_.layer_sizes[l + 1];
    MatrixD w{fan_out, fan_in};
    const double scale = std::sqrt(2.0 / static_cast<double>(fan_in));
    for (double& v : w.data()) {
      v = scale * rng.gaussian();
    }
    weights_.push_back(std::move(w));
    biases_.emplace_back(fan_out, 0.0);
  }
}

std::vector<std::vector<double>> Mlp::forward_trace(
    const std::vector<double>& input) const {
  std::vector<std::vector<double>> acts;
  acts.push_back(input);
  for (std::size_t l = 0; l < weights_.size(); ++l) {
    const MatrixD& w = weights_[l];
    std::vector<double> z(w.rows(), 0.0);
    for (std::size_t o = 0; o < w.rows(); ++o) {
      double acc = biases_[l][o];
      for (std::size_t i = 0; i < w.cols(); ++i) {
        acc += w(o, i) * acts.back()[i];
      }
      z[o] = acc;
    }
    if (l + 1 == weights_.size()) {
      acts.push_back(softmax_ref(z));
    } else {
      for (double& v : z) {
        v = activate(config_.activation, v);
      }
      acts.push_back(std::move(z));
    }
  }
  return acts;
}

void Mlp::train(const Dataset& data) {
  Rng rng{config_.seed ^ 0xABCDEFull};
  std::vector<std::size_t> order(data.size());
  std::iota(order.begin(), order.end(), 0);
  for (std::size_t epoch = 0; epoch < config_.epochs; ++epoch) {
    for (std::size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1], order[rng.below(i)]);
    }
    for (const std::size_t sample : order) {
      std::vector<double> input(data.inputs.cols());
      for (std::size_t c = 0; c < input.size(); ++c) {
        input[c] = data.inputs(sample, c);
      }
      const auto acts = forward_trace(input);
      // Softmax + cross-entropy gradient at the output: p − onehot.
      std::vector<double> delta = acts.back();
      delta[static_cast<std::size_t>(data.labels[sample])] -= 1.0;
      for (std::size_t l = weights_.size(); l-- > 0;) {
        const std::vector<double>& prev = acts[l];
        std::vector<double> next_delta(prev.size(), 0.0);
        for (std::size_t o = 0; o < weights_[l].rows(); ++o) {
          for (std::size_t i = 0; i < weights_[l].cols(); ++i) {
            next_delta[i] += weights_[l](o, i) * delta[o];
            weights_[l](o, i) -= config_.learning_rate * delta[o] * prev[i];
          }
          biases_[l][o] -= config_.learning_rate * delta[o];
        }
        if (l > 0) {
          for (std::size_t i = 0; i < next_delta.size(); ++i) {
            next_delta[i] *= activate_grad(config_.activation, acts[l][i]);
          }
          delta = std::move(next_delta);
        }
      }
    }
  }
}

std::vector<double> Mlp::predict_proba(const std::vector<double>& input) const {
  return forward_trace(input).back();
}

int Mlp::predict(const std::vector<double>& input) const {
  const std::vector<double> p = predict_proba(input);
  return static_cast<int>(
      std::max_element(p.begin(), p.end()) - p.begin());
}

double Mlp::accuracy(const Dataset& data) const {
  std::size_t correct = 0;
  std::vector<double> input(data.inputs.cols());
  for (std::size_t s = 0; s < data.size(); ++s) {
    for (std::size_t c = 0; c < input.size(); ++c) {
      input[c] = data.inputs(s, c);
    }
    if (predict(input) == data.labels[s]) {
      ++correct;
    }
  }
  return static_cast<double>(correct) / static_cast<double>(data.size());
}

double Mlp::max_parameter_magnitude() const noexcept {
  double max_abs = 0.0;
  for (const MatrixD& w : weights_) {
    for (const double v : w.data()) {
      max_abs = std::max(max_abs, std::abs(v));
    }
  }
  for (const auto& b : biases_) {
    for (const double v : b) {
      max_abs = std::max(max_abs, std::abs(v));
    }
  }
  return max_abs;
}

}  // namespace nacu::nn
