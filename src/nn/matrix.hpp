// Minimal dense-matrix type for the NN substrate.
//
// The NN layer exists to exercise NACU in its intended habitat (paper §I:
// CGRAs hosting CNN/LSTM workloads need σ/tanh/exp/softmax units), so this
// stays deliberately small: row-major storage, the handful of operations a
// forward/backward pass needs, no BLAS.
#pragma once

#include <cstddef>
#include <span>
#include <stdexcept>

#include "simd/aligned.hpp"

namespace nacu::nn {

template <typename T>
class Matrix {
 public:
  /// Storage is cache-line (64-byte) aligned so SIMD kernels can treat
  /// row-major data as aligned streams; the container API is still vector.
  using Storage = simd::AlignedVector<T>;

  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, T init = T{})
      : rows_{rows}, cols_{cols}, data_(rows * cols, init) {}

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }

  [[nodiscard]] T& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  [[nodiscard]] const T& operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  [[nodiscard]] T& at(std::size_t r, std::size_t c) {
    check(r, c);
    return (*this)(r, c);
  }
  [[nodiscard]] const T& at(std::size_t r, std::size_t c) const {
    check(r, c);
    return (*this)(r, c);
  }

  /// Contiguous view of row @p r — what kernels iterate instead of
  /// element-wise operator() calls. Bounds-checked like at().
  [[nodiscard]] std::span<T> row(std::size_t r) {
    check_row(r);
    return {data_.data() + r * cols_, cols_};
  }
  [[nodiscard]] std::span<const T> row(std::size_t r) const {
    check_row(r);
    return {data_.data() + r * cols_, cols_};
  }

  [[nodiscard]] Storage& data() noexcept { return data_; }
  [[nodiscard]] const Storage& data() const noexcept { return data_; }

 private:
  void check(std::size_t r, std::size_t c) const {
    if (r >= rows_ || c >= cols_) {
      throw std::out_of_range("Matrix index out of range");
    }
  }
  void check_row(std::size_t r) const {
    if (r >= rows_) {
      throw std::out_of_range("Matrix row out of range");
    }
  }

  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  Storage data_;
};

using MatrixD = Matrix<double>;

/// C = A · B. Dimension mismatch throws.
[[nodiscard]] inline MatrixD matmul(const MatrixD& a, const MatrixD& b) {
  if (a.cols() != b.rows()) {
    throw std::invalid_argument("matmul dimension mismatch");
  }
  MatrixD c{a.rows(), b.cols()};
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const double aik = a(i, k);
      if (aik == 0.0) continue;
      for (std::size_t j = 0; j < b.cols(); ++j) {
        c(i, j) += aik * b(k, j);
      }
    }
  }
  return c;
}

/// B = Aᵀ.
[[nodiscard]] inline MatrixD transpose(const MatrixD& a) {
  MatrixD t{a.cols(), a.rows()};
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      t(j, i) = a(i, j);
    }
  }
  return t;
}

}  // namespace nacu::nn
