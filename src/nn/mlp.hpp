// Float reference MLP with SGD training.
//
// This is the floating-point benchmark network: trained in double precision,
// then handed to QuantizedMlp (quantized_mlp.hpp), which replaces every
// non-linearity with bit-accurate NACU evaluations. The accuracy delta
// between the two is the end-to-end cost of the NACU approximation.
#pragma once

#include <cstdint>
#include <vector>

#include "nn/dataset.hpp"
#include "nn/matrix.hpp"

namespace nacu::nn {

enum class HiddenActivation { Sigmoid, Tanh };

struct MlpConfig {
  std::vector<std::size_t> layer_sizes;  ///< e.g. {2, 24, 24, 3}
  HiddenActivation activation = HiddenActivation::Tanh;
  double learning_rate = 0.05;
  std::size_t epochs = 200;
  std::uint64_t seed = 7;
};

class Mlp {
 public:
  explicit Mlp(const MlpConfig& config);

  /// Mini-batch-free SGD with softmax + cross-entropy on the output layer.
  void train(const Dataset& data);

  /// Class probabilities for one input row (softmax output).
  [[nodiscard]] std::vector<double> predict_proba(
      const std::vector<double>& input) const;
  [[nodiscard]] int predict(const std::vector<double>& input) const;
  [[nodiscard]] double accuracy(const Dataset& data) const;

  [[nodiscard]] const MlpConfig& config() const noexcept { return config_; }
  [[nodiscard]] std::size_t layers() const noexcept { return weights_.size(); }
  [[nodiscard]] const MatrixD& weights(std::size_t layer) const {
    return weights_.at(layer);
  }
  [[nodiscard]] const std::vector<double>& biases(std::size_t layer) const {
    return biases_.at(layer);
  }

  /// Max |weight or bias| — used to pick the quantisation format.
  [[nodiscard]] double max_parameter_magnitude() const noexcept;

 private:
  /// Forward pass keeping every layer's activations (for backprop).
  [[nodiscard]] std::vector<std::vector<double>> forward_trace(
      const std::vector<double>& input) const;

  MlpConfig config_;
  std::vector<MatrixD> weights_;             ///< [out × in] per layer
  std::vector<std::vector<double>> biases_;  ///< [out] per layer
};

/// Reference softmax in double precision.
[[nodiscard]] std::vector<double> softmax_ref(const std::vector<double>& z);

}  // namespace nacu::nn
