#include "nn/reservoir.hpp"

#include <cmath>
#include <numbers>

#include "nn/rng.hpp"

namespace nacu::nn {

SequenceDataset make_frequency_sequences(std::size_t samples_per_class,
                                         std::size_t length, int classes,
                                         double noise, std::uint64_t seed) {
  Rng rng{seed};
  SequenceDataset d;
  d.classes = classes;
  for (int c = 0; c < classes; ++c) {
    // Frequencies 1, 2, 4, ... cycles per sequence: well separated.
    const double cycles = std::pow(2.0, c);
    for (std::size_t s = 0; s < samples_per_class; ++s) {
      const double phase = rng.uniform(0.0, 2.0 * std::numbers::pi);
      MatrixD sequence{length, 1};
      for (std::size_t t = 0; t < length; ++t) {
        sequence(t, 0) =
            std::sin(2.0 * std::numbers::pi * cycles *
                         static_cast<double>(t) /
                         static_cast<double>(length) +
                     phase) +
            noise * rng.gaussian();
      }
      d.sequences.push_back(std::move(sequence));
      d.labels.push_back(c);
    }
  }
  return d;
}

LstmReservoir::LstmReservoir(std::size_t input_dim, std::size_t hidden,
                             std::uint64_t seed)
    : weights_{LstmWeights::random(input_dim, hidden, seed)} {}

std::vector<double> LstmReservoir::features_float(
    const MatrixD& sequence) const {
  LstmStateF state;
  state.h.assign(weights_.hidden, 0.0);
  state.c.assign(weights_.hidden, 0.0);
  std::vector<double> pooled(weights_.hidden, 0.0);
  std::vector<double> x(sequence.cols());
  for (std::size_t t = 0; t < sequence.rows(); ++t) {
    for (std::size_t i = 0; i < x.size(); ++i) {
      x[i] = sequence(t, i);
    }
    state = lstm_step_ref(weights_, state, x);
    for (std::size_t i = 0; i < weights_.hidden; ++i) {
      pooled[i] += std::abs(state.h[i]);
    }
  }
  for (double& v : pooled) {
    v /= static_cast<double>(sequence.rows());
  }
  pooled.insert(pooled.end(), state.h.begin(), state.h.end());
  return pooled;
}

std::vector<double> LstmReservoir::features_fixed(
    const MatrixD& sequence, const core::NacuConfig& config) const {
  LstmFixed cell{weights_, config};
  LstmFixed::State state = cell.initial_state();
  std::vector<double> pooled(weights_.hidden, 0.0);
  std::vector<double> x(sequence.cols());
  for (std::size_t t = 0; t < sequence.rows(); ++t) {
    for (std::size_t i = 0; i < x.size(); ++i) {
      x[i] = sequence(t, i);
    }
    state = cell.step(state, x);
    for (std::size_t i = 0; i < weights_.hidden; ++i) {
      pooled[i] += std::abs(state.h[i].to_double());
    }
  }
  for (double& v : pooled) {
    v /= static_cast<double>(sequence.rows());
  }
  for (const fp::Fixed& h : state.h) {
    pooled.push_back(h.to_double());
  }
  return pooled;
}

}  // namespace nacu::nn
