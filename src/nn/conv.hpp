// Convolutional feature path — the CNN half of the paper's CNN/LSTM
// motivation (§I).
//
// A fixed bank of random 3×3 filters, NACU sigmoid activations and 2×2
// max-pooling turn small synthetic images into feature vectors; a dense
// classifier head (nn::Mlp) trains on the float features, and inference
// runs end-to-end in fixed point with every multiply-accumulate and every
// non-linearity on the NACU. Filters are fixed (not trained), so the float
// and fixed paths share identical parameters.
#pragma once

#include <cstdint>
#include <vector>

#include "core/batch_nacu.hpp"
#include "nn/dataset.hpp"
#include "nn/matrix.hpp"

namespace nacu::nn {

/// Synthetic 8×8 single-channel image dataset: horizontal stripes, vertical
/// stripes, and diagonal patterns (3 classes), with additive noise.
/// Images are flattened row-major into Dataset::inputs.
[[nodiscard]] Dataset make_pattern_images(std::size_t samples_per_class,
                                          double noise = 0.25,
                                          std::uint64_t seed = 21);

/// Valid-mode 2-D convolution of a (rows×cols) image with a k×k filter.
[[nodiscard]] MatrixD conv2d_valid(const MatrixD& image,
                                   const MatrixD& filter);

/// 2×2 max-pool with stride 2 (odd trailing row/col dropped).
[[nodiscard]] MatrixD maxpool2(const MatrixD& input);

class ConvFeatures {
 public:
  /// @p filters random 3×3 kernels scaled into the datapath range.
  ConvFeatures(std::size_t filters, std::uint64_t seed = 23);

  /// Float path: conv → sigmoid → maxpool → flatten.
  [[nodiscard]] std::vector<double> extract_float(
      const MatrixD& image) const;

  /// Fixed path: same parameters, every MAC and sigmoid on @p unit.
  [[nodiscard]] std::vector<double> extract_fixed(
      const MatrixD& image, const core::Nacu& unit) const;

  /// Batched fixed path: MACs per output pixel, then one batch σ pass per
  /// feature map on @p unit — bit-identical to the scalar overload.
  [[nodiscard]] std::vector<double> extract_fixed(
      const MatrixD& image, const core::BatchNacu& unit) const;

  /// Feature-vector length for r×c input images.
  [[nodiscard]] std::size_t feature_size(std::size_t rows,
                                         std::size_t cols) const;

  [[nodiscard]] std::size_t filter_count() const noexcept {
    return filters_.size();
  }

 private:
  std::vector<MatrixD> filters_;
};

/// Convert one dataset row back into its image.
[[nodiscard]] MatrixD row_to_image(const Dataset& data, std::size_t row,
                                   std::size_t rows, std::size_t cols);

}  // namespace nacu::nn
