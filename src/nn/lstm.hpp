// LSTM cell: float reference vs NACU fixed-point forward pass.
//
// The LSTM is the paper's flagship motivation for a *reconfigurable*
// non-linear unit (§I): one cell step needs σ three times (input/forget/
// output gates) and tanh twice (candidate and output) — a fabric hosting
// LSTMs must morph between both per cycle. We run the same weights through
// a double-precision cell and a cell whose every non-linearity is a
// bit-accurate NACU evaluation, and measure the state drift.
#pragma once

#include <cstdint>
#include <vector>

#include "core/batch_nacu.hpp"
#include "nn/matrix.hpp"
#include "simd/qgemm.hpp"

namespace nacu::nn {

struct LstmWeights {
  // Gate order within the stacked matrices: input, forget, candidate, output.
  MatrixD wx;              ///< [4H × D] input weights
  MatrixD wh;              ///< [4H × H] recurrent weights
  std::vector<double> b;   ///< [4H]
  std::size_t hidden = 0;
  std::size_t input = 0;

  /// Gaussian-initialised weights scaled to stay within a Q4.11 range.
  static LstmWeights random(std::size_t input, std::size_t hidden,
                            std::uint64_t seed = 11);
};

struct LstmStateF {
  std::vector<double> h;
  std::vector<double> c;
};

/// One double-precision cell step (the reference).
[[nodiscard]] LstmStateF lstm_step_ref(const LstmWeights& weights,
                                       const LstmStateF& state,
                                       const std::vector<double>& x);

class LstmFixed {
 public:
  LstmFixed(const LstmWeights& weights, const core::NacuConfig& config);

  struct State {
    std::vector<fp::Fixed> h;
    std::vector<fp::Fixed> c;
  };

  [[nodiscard]] State initial_state() const;

  /// One cell step where σ/tanh are NACU and dot products are NACU MACs.
  /// All 4H gate non-linearities of the step go through one batched σ pass
  /// and one batched tanh pass on core::BatchNacu (plus a batched tanh over
  /// the new cell states) — bit-identical to per-gate scalar evaluation.
  [[nodiscard]] State step(const State& state,
                           const std::vector<double>& x) const;

  [[nodiscard]] const core::Nacu& unit() const noexcept {
    return unit_.unit();
  }
  [[nodiscard]] fp::Format format() const noexcept { return fmt_; }

 private:
  [[nodiscard]] fp::Fixed gate_preactivation(std::size_t row,
                                             const std::vector<fp::Fixed>& xq,
                                             const State& state) const;
  /// All 4H gate pre-activations of one step (row order: i, f, cand, o) —
  /// through the fused wx/wh GEMV kernels when the formats allow, else one
  /// gate_preactivation per row. Bit-identical either way.
  [[nodiscard]] std::vector<fp::Fixed> gate_preactivations(
      const std::vector<fp::Fixed>& xq, const State& state) const;

  LstmWeights weights_;
  core::BatchNacu unit_;
  fp::Format fmt_;
  fp::Format acc_fmt_;
  /// Weights/biases quantised onto fmt_ once at construction (the float
  /// originals in weights_ are kept only for shape bookkeeping). Row-major
  /// [4H × D] and [4H × H].
  std::vector<std::int64_t> wx_raw_;
  std::vector<std::int64_t> wh_raw_;
  std::vector<std::int64_t> b_raw_;
  simd::PackedQGemm wx_packed_;
  simd::PackedQGemm wh_packed_;
  bool fused_ok_ = false;
};

/// Mean |h_fixed − h_ref| after running @p steps of the same random input
/// sequence through both cells.
[[nodiscard]] double lstm_state_drift(const LstmWeights& weights,
                                      const core::NacuConfig& config,
                                      std::size_t steps,
                                      std::uint64_t seed = 13);

}  // namespace nacu::nn
