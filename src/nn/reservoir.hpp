// LSTM reservoir sequence classification — the recurrent workload end to
// end, without needing BPTT.
//
// A fixed random LSTM (echo-state style reservoir) integrates an input
// sequence; a trained softmax readout classifies the final hidden state.
// The float path trains the readout; the fixed path replays the *same*
// reservoir with every σ/tanh as a bit-accurate NACU evaluation and the
// readout quantised — the LSTM analogue of nn::QuantizedMlp's story.
#pragma once

#include <cstdint>
#include <vector>

#include "nn/lstm.hpp"
#include "nn/matrix.hpp"

namespace nacu::nn {

/// Labelled variable-content sequences: one row per timestep.
struct SequenceDataset {
  std::vector<MatrixD> sequences;  ///< [T × input_dim] each
  std::vector<int> labels;
  int classes = 0;

  [[nodiscard]] std::size_t size() const noexcept { return labels.size(); }
};

/// Frequency-discrimination task: class k is a sine of frequency f_k (in
/// cycles per sequence) with phase jitter and additive noise. Requires
/// temporal integration — a memoryless readout cannot solve it.
[[nodiscard]] SequenceDataset make_frequency_sequences(
    std::size_t samples_per_class, std::size_t length, int classes = 3,
    double noise = 0.15, std::uint64_t seed = 29);

class LstmReservoir {
 public:
  LstmReservoir(std::size_t input_dim, std::size_t hidden,
                std::uint64_t seed = 31);

  /// Readout features after integrating @p sequence (double precision):
  /// the time-mean of |h_t| concatenated with the final hidden state —
  /// the standard reservoir pooling (the final state alone cannot carry
  /// frequency information).
  [[nodiscard]] std::vector<double> features_float(
      const MatrixD& sequence) const;

  /// Same reservoir and pooling, every non-linearity on NACU.
  [[nodiscard]] std::vector<double> features_fixed(
      const MatrixD& sequence, const core::NacuConfig& config) const;

  /// Feature-vector length: 2 × hidden (pooled + final).
  [[nodiscard]] std::size_t feature_size() const noexcept {
    return 2 * weights_.hidden;
  }
  [[nodiscard]] std::size_t hidden() const noexcept {
    return weights_.hidden;
  }
  [[nodiscard]] const LstmWeights& weights() const noexcept {
    return weights_;
  }

 private:
  LstmWeights weights_;
};

}  // namespace nacu::nn
