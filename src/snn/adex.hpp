// Adaptive-exponential integrate-and-fire (AdEx) neuron on NACU.
//
// The paper motivates NACU beyond ANNs: "biologically plausible
// integrate-and-fire neurons using differential equations ... whose
// numerical solutions often involve these non-linearities" (§I) — its refs
// [12] and [15] are digital AdEx implementations built around exactly the
// exponential unit NACU provides. This module closes that loop: a
// dimensionless AdEx neuron
//
//    dv/dt  = −gl·(v − el) + gl·Δ·exp((v − vt)/Δ) − w + I
//    τw·dw/dt = a·(v − el) − w
//    spike when v ≥ v_peak:  v ← v_reset,  w ← w + b
//
// integrated with forward Euler, in double precision (reference) and in
// fixed point where the exponential is a bit-accurate NACU evaluation.
// NACU's exp expects softmax-normalised arguments u ≤ 0, so the neuron
// evaluates exp(u) = e^{u_max} · e^{u − u_max}: the NACU computes the
// bounded factor, and the constant e^{u_max} folds into one fixed-point
// multiplier — the same trick the softmax datapath uses (Eq. 13).
#pragma once

#include <cstdint>
#include <vector>

#include "core/nacu.hpp"

namespace nacu::snn {

/// Dimensionless AdEx parameters. Defaults give a regular-spiking neuron
/// whose state stays inside Q4.11 and whose exponential constant
/// e^{u_max}·gl·Δ ≈ 13.6 still fits the datapath.
struct AdexParams {
  double gl = 1.0;        ///< leak conductance
  double el = -1.0;       ///< leak (rest) potential
  double vt = 0.0;        ///< exponential threshold
  double delta_t = 0.25;  ///< slope factor Δ
  double v_peak = 1.0;    ///< spike detection level
  double v_reset = -1.0;  ///< post-spike reset
  double a = 0.2;         ///< subthreshold adaptation
  double b = 0.25;        ///< spike-triggered adaptation increment
  double tau_w = 20.0;    ///< adaptation time constant
  double dt = 1.0 / 64.0; ///< Euler step (power of two: exact in fixed point)

  /// Largest exponential argument the neuron can produce:
  /// u_max = (v_peak − vt)/Δ.
  [[nodiscard]] double u_max() const noexcept {
    return (v_peak - vt) / delta_t;
  }
};

/// One simulation step's observable state.
struct AdexState {
  double v = 0.0;
  double w = 0.0;
  bool spiked = false;
};

/// Double-precision reference neuron.
class AdexNeuronRef {
 public:
  explicit AdexNeuronRef(const AdexParams& params);

  /// Advance one Euler step under input current @p current.
  AdexState step(double current);
  void reset();

  [[nodiscard]] const AdexState& state() const noexcept { return state_; }
  [[nodiscard]] std::size_t spike_count() const noexcept { return spikes_; }

 private:
  AdexParams params_;
  AdexState state_;
  std::size_t spikes_ = 0;
};

/// Fixed-point neuron: every exponential is a NACU evaluation, every
/// multiply-accumulate runs on the NACU MAC at datapath precision.
class AdexNeuronFixed {
 public:
  AdexNeuronFixed(const AdexParams& params, const core::NacuConfig& config);

  AdexState step(double current);
  void reset();

  [[nodiscard]] const AdexState& state() const noexcept { return state_; }
  [[nodiscard]] std::size_t spike_count() const noexcept { return spikes_; }
  [[nodiscard]] const core::Nacu& unit() const noexcept { return unit_; }

 private:
  AdexParams params_;
  core::Nacu unit_;
  fp::Format fmt_;
  fp::Format acc_fmt_;
  // Quantised constants (raw values on the datapath grid).
  fp::Fixed v_;
  fp::Fixed w_;
  AdexState state_;
  std::size_t spikes_ = 0;
};

/// Firing-rate sweep: spikes per unit time at each input current, for the
/// reference and the NACU neuron. This is the f–I curve benches plot.
struct FICurvePoint {
  double current = 0.0;
  double rate_ref = 0.0;
  double rate_fixed = 0.0;
};

[[nodiscard]] std::vector<FICurvePoint> fi_curve(
    const AdexParams& params, const core::NacuConfig& config,
    const std::vector<double>& currents, double sim_time = 200.0);

/// Mean |v_fixed − v_ref| over a subthreshold run (no spikes), isolating
/// integration error from spike-time jitter.
[[nodiscard]] double subthreshold_drift(const AdexParams& params,
                                        const core::NacuConfig& config,
                                        double current, std::size_t steps);

}  // namespace nacu::snn
