#include "snn/network.hpp"

#include "nn/rng.hpp"

namespace nacu::snn {

AdexNetwork::AdexNetwork(const Config& config,
                         const core::NacuConfig& nacu_config)
    : config_{config} {
  nn::Rng rng{config.seed};
  ref_.reserve(config.neurons);
  fixed_.reserve(config.neurons);
  synapses_.resize(config.neurons);
  drive_offsets_.reserve(config.neurons);
  for (std::size_t n = 0; n < config.neurons; ++n) {
    ref_.emplace_back(config.params);
    fixed_.emplace_back(config.params, nacu_config);
    drive_offsets_.push_back(0.1 * rng.gaussian());
  }
  for (std::size_t post = 0; post < config.neurons; ++post) {
    for (std::size_t pre = 0; pre < config.neurons; ++pre) {
      if (pre == post ||
          rng.uniform() >= config.connection_probability) {
        continue;
      }
      const bool inhibitory = rng.uniform() < config.inhibitory_fraction;
      const double weight =
          (inhibitory ? -1.0 : 1.0) * config.weight_scale * rng.uniform();
      synapses_[post].emplace_back(pre, weight);
    }
  }
}

AdexNetwork::RunResult AdexNetwork::run(std::size_t steps, double current) {
  const std::size_t n = ref_.size();
  RunResult result;
  result.spikes_ref.assign(n, 0);
  result.spikes_fixed.assign(n, 0);
  std::vector<bool> spiked_ref(n, false);
  std::vector<bool> spiked_fixed(n, false);
  for (std::size_t t = 0; t < steps; ++t) {
    std::vector<bool> next_ref(n, false);
    std::vector<bool> next_fixed(n, false);
    for (std::size_t post = 0; post < n; ++post) {
      double syn_ref = 0.0;
      double syn_fixed = 0.0;
      for (const auto& [pre, weight] : synapses_[post]) {
        if (spiked_ref[pre]) syn_ref += weight;
        if (spiked_fixed[pre]) syn_fixed += weight;
      }
      const double drive = current + drive_offsets_[post];
      if (ref_[post].step(drive + syn_ref).spiked) {
        next_ref[post] = true;
        ++result.spikes_ref[post];
      }
      if (fixed_[post].step(drive + syn_fixed).spiked) {
        next_fixed[post] = true;
        ++result.spikes_fixed[post];
      }
    }
    spiked_ref = std::move(next_ref);
    spiked_fixed = std::move(next_fixed);
  }
  std::size_t total_ref = 0;
  std::size_t total_fixed = 0;
  for (std::size_t i = 0; i < n; ++i) {
    total_ref += result.spikes_ref[i];
    total_fixed += result.spikes_fixed[i];
  }
  const double denom = static_cast<double>(n) * static_cast<double>(steps);
  result.rate_ref = static_cast<double>(total_ref) / denom;
  result.rate_fixed = static_cast<double>(total_fixed) / denom;
  return result;
}

}  // namespace nacu::snn
