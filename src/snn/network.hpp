// A small recurrent AdEx network — the "mix of ANNs and SNNs in the same
// fabric" scenario of §VII, population-level.
//
// N AdEx neurons with sparse random synapses; a spike at step t injects
// synaptic current into its targets at step t+1. The double-precision and
// NACU populations run side by side under the same external drive. Spiking
// networks are chaotic, so agreement is measured at the population level
// (mean firing rate), not spike-for-spike.
#pragma once

#include <cstdint>
#include <vector>

#include "snn/adex.hpp"

namespace nacu::snn {

class AdexNetwork {
 public:
  struct Config {
    std::size_t neurons = 32;
    double connection_probability = 0.2;
    double weight_scale = 0.4;     ///< synaptic strength (current units)
    double inhibitory_fraction = 0.25;
    AdexParams params{};
    std::uint64_t seed = 5;
  };

  AdexNetwork(const Config& config, const core::NacuConfig& nacu_config);

  struct RunResult {
    std::vector<std::size_t> spikes_ref;    ///< per-neuron totals
    std::vector<std::size_t> spikes_fixed;
    double rate_ref = 0.0;    ///< population mean spikes per step
    double rate_fixed = 0.0;
  };

  /// Run @p steps under constant external drive @p current (same for every
  /// neuron, plus per-neuron frozen noise).
  [[nodiscard]] RunResult run(std::size_t steps, double current);

  [[nodiscard]] std::size_t size() const noexcept { return ref_.size(); }

 private:
  Config config_;
  std::vector<AdexNeuronRef> ref_;
  std::vector<AdexNeuronFixed> fixed_;
  /// synapses_[post] = list of (pre, weight).
  std::vector<std::vector<std::pair<std::size_t, double>>> synapses_;
  std::vector<double> drive_offsets_;  ///< frozen per-neuron drive noise
};

}  // namespace nacu::snn
