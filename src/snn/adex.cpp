#include "snn/adex.hpp"

#include <cmath>

namespace nacu::snn {

AdexNeuronRef::AdexNeuronRef(const AdexParams& params) : params_{params} {
  reset();
}

void AdexNeuronRef::reset() {
  state_ = AdexState{.v = params_.el, .w = 0.0, .spiked = false};
  spikes_ = 0;
}

AdexState AdexNeuronRef::step(double current) {
  const AdexParams& p = params_;
  const double u = (state_.v - p.vt) / p.delta_t;
  // The reference applies the same argument cap as the hardware (u <= u_max
  // by construction since v <= v_peak; defensive for exotic parameters).
  const double i_exp =
      p.gl * p.delta_t * std::exp(std::min(u, p.u_max()));
  const double dv =
      (-p.gl * (state_.v - p.el) + i_exp - state_.w + current) * p.dt;
  const double dw =
      (p.a * (state_.v - p.el) - state_.w) * (p.dt / p.tau_w);
  state_.v += dv;
  state_.w += dw;
  state_.spiked = false;
  if (state_.v >= p.v_peak) {
    state_.v = p.v_reset;
    state_.w += p.b;
    state_.spiked = true;
    ++spikes_;
  }
  return state_;
}

AdexNeuronFixed::AdexNeuronFixed(const AdexParams& params,
                                 const core::NacuConfig& config)
    : params_{params},
      unit_{config},
      fmt_{config.format},
      acc_fmt_{config.format.integer_bits() + 4,
               config.format.fractional_bits()},
      v_{fp::Fixed::from_double(params.el, config.format)},
      w_{fp::Fixed::zero(config.format)} {
  reset();
}

void AdexNeuronFixed::reset() {
  v_ = fp::Fixed::from_double(params_.el, fmt_);
  w_ = fp::Fixed::zero(fmt_);
  state_ = AdexState{.v = v_.to_double(), .w = 0.0, .spiked = false};
  spikes_ = 0;
}

AdexState AdexNeuronFixed::step(double current) {
  const AdexParams& p = params_;
  // Quantised constants; in hardware these are configuration registers.
  const fp::Fixed inv_delta =
      fp::Fixed::from_double(1.0 / p.delta_t, fmt_);
  const fp::Fixed exp_scale = fp::Fixed::from_double(
      p.gl * p.delta_t * std::exp(p.u_max()), fmt_);
  const fp::Fixed el = fp::Fixed::from_double(p.el, fmt_);
  const fp::Fixed vt = fp::Fixed::from_double(p.vt, fmt_);
  const fp::Fixed i_in = fp::Fixed::from_double(current, fmt_);
  const fp::Fixed u_max = fp::Fixed::from_double(p.u_max(), fmt_);

  // u' = (v − vt)/Δ − u_max  (normalised exponential argument, <= 0).
  const fp::Fixed v_minus_vt = v_.sub(vt, fmt_);
  const fp::Fixed u =
      v_minus_vt.mul(inv_delta, fmt_, fp::Rounding::Truncate);
  const fp::Fixed u_norm = u.sub(u_max, fmt_);
  // i_exp = (gl·Δ·e^{u_max}) · e^{u'} — NACU exp plus one constant multiply.
  const fp::Fixed e = unit_.exp(u_norm);
  const fp::Fixed i_exp = e.mul(exp_scale, acc_fmt_, fp::Rounding::Truncate);

  // dv = (−gl·(v − el) + i_exp − w + I)·dt, accumulated on the NACU MAC.
  const fp::Fixed minus_gl = fp::Fixed::from_double(-p.gl, fmt_);
  fp::Fixed acc = i_exp;
  acc = unit_.mac(acc, minus_gl, v_.sub(el, fmt_));
  acc = acc.sub(w_, acc_fmt_);
  acc = acc.add(i_in, acc_fmt_);
  const fp::Fixed dt = fp::Fixed::from_double(p.dt, fmt_);
  const fp::Fixed dv = acc.mul(dt, fmt_, fp::Rounding::Truncate);

  // dw = (a·(v − el) − w)·dt/τw.
  const fp::Fixed a_coeff = fp::Fixed::from_double(p.a, fmt_);
  fp::Fixed w_acc = fp::Fixed::zero(acc_fmt_);
  w_acc = unit_.mac(w_acc, a_coeff, v_.sub(el, fmt_));
  w_acc = w_acc.sub(w_, acc_fmt_);
  const fp::Fixed dt_over_tau =
      fp::Fixed::from_double(p.dt / p.tau_w, fp::Format{0, fmt_.width() - 1});
  const fp::Fixed dw =
      w_acc.mul(dt_over_tau, fmt_, fp::Rounding::Truncate);

  v_ = v_.add(dv, fmt_);
  w_ = w_.add(dw, fmt_);
  state_.spiked = false;
  if (v_.to_double() >= p.v_peak) {
    v_ = fp::Fixed::from_double(p.v_reset, fmt_);
    w_ = w_.add(fp::Fixed::from_double(p.b, fmt_), fmt_);
    state_.spiked = true;
    ++spikes_;
  }
  state_.v = v_.to_double();
  state_.w = w_.to_double();
  return state_;
}

std::vector<FICurvePoint> fi_curve(const AdexParams& params,
                                   const core::NacuConfig& config,
                                   const std::vector<double>& currents,
                                   double sim_time) {
  std::vector<FICurvePoint> curve;
  curve.reserve(currents.size());
  const auto steps = static_cast<std::size_t>(sim_time / params.dt);
  for (const double current : currents) {
    AdexNeuronRef ref{params};
    AdexNeuronFixed fixed{params, config};
    for (std::size_t t = 0; t < steps; ++t) {
      ref.step(current);
      fixed.step(current);
    }
    curve.push_back(FICurvePoint{
        .current = current,
        .rate_ref = static_cast<double>(ref.spike_count()) / sim_time,
        .rate_fixed = static_cast<double>(fixed.spike_count()) / sim_time});
  }
  return curve;
}

double subthreshold_drift(const AdexParams& params,
                          const core::NacuConfig& config, double current,
                          std::size_t steps) {
  AdexNeuronRef ref{params};
  AdexNeuronFixed fixed{params, config};
  double drift = 0.0;
  for (std::size_t t = 0; t < steps; ++t) {
    const AdexState a = ref.step(current);
    const AdexState b = fixed.step(current);
    drift += std::abs(a.v - b.v);
  }
  return drift / static_cast<double>(steps);
}

}  // namespace nacu::snn
