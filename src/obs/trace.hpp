// Scoped trace spans with Chrome trace-event JSON export.
//
// A TraceSpan brackets one region of work (a table build, a thread-pool
// batch, a softmax engine run). When tracing is enabled every span records
// a complete event — name, category, thread, start, duration — into a
// per-thread buffer; write_trace() merges the buffers into the Chrome
// trace-event format (the JSON Array Format wrapped in {"traceEvents":
// [...]}), which chrome://tracing and https://ui.perfetto.dev load
// directly.
//
// Tracing is off by default and costs one relaxed atomic load per span.
// Enable it either programmatically (enable_trace) or by setting
// `NACU_TRACE=out.json` in the environment — the env path is written
// automatically at process exit, so any instrumented binary can be traced
// without a code change:
//
//   NACU_TRACE=run.json ./bench_throughput --benchmark_filter=NONE
//
// Span names must be string literals (or otherwise outlive the process):
// the buffers store the pointers, not copies, to keep the record path at a
// clock read plus a vector push.
#pragma once

#include <cstdint>
#include <string>

namespace nacu::obs {

/// Whether spans currently record — one relaxed load.
[[nodiscard]] bool trace_enabled() noexcept;

/// Start recording spans. @p exit_path, when non-empty, is written by an
/// atexit handler (the NACU_TRACE env var routes through this).
void enable_trace(std::string exit_path = {});

/// Stop recording. Buffered events are kept until reset_trace().
void disable_trace() noexcept;

/// Merge every thread's buffer and write Chrome trace-event JSON.
/// Returns false on I/O error.
[[nodiscard]] bool write_trace(const std::string& path);

/// Number of completed spans currently buffered (all threads).
[[nodiscard]] std::size_t trace_event_count();

/// Drop all buffered events (tests; between traced sections).
void reset_trace();

class TraceSpan {
 public:
  /// @p name and @p category must outlive the process (string literals).
  explicit TraceSpan(const char* name,
                     const char* category = "nacu") noexcept {
    if (trace_enabled()) {
      name_ = name;
      category_ = category;
      start_ns_ = now_ns();
    }
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
  ~TraceSpan() {
    if (name_ != nullptr) {
      commit();
    }
  }

 private:
  [[nodiscard]] static std::uint64_t now_ns() noexcept;
  void commit() noexcept;

  const char* name_ = nullptr;
  const char* category_ = nullptr;
  std::uint64_t start_ns_ = 0;
};

}  // namespace nacu::obs
