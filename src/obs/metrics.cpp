#include "obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdlib>

namespace nacu::obs {

namespace {

std::atomic<bool> g_metrics_enabled{[] {
  const char* env = std::getenv("NACU_METRICS");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}()};

void append_escaped(std::string& out, std::string_view s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
    }
    out += c;
  }
}

void append_u64(std::string& out, std::uint64_t v) {
  out += std::to_string(v);
}

template <typename Map, typename Factory>
auto& lookup(std::mutex& mutex, Map& map, std::string_view name,
             Factory make) {
  const std::lock_guard<std::mutex> lock{mutex};
  const auto it = std::lower_bound(
      map.begin(), map.end(), name,
      [](const auto& entry, std::string_view key) { return entry.first < key; });
  if (it != map.end() && it->first == name) {
    return *it->second;
  }
  return *map.insert(it, {std::string{name}, make()})->second;
}

}  // namespace

bool metrics_enabled() noexcept {
  return g_metrics_enabled.load(std::memory_order_relaxed);
}

void set_metrics_enabled(bool enabled) noexcept {
  g_metrics_enabled.store(enabled, std::memory_order_relaxed);
}

void Histogram::record(std::uint64_t value) noexcept {
  if (!metrics_enabled()) {
    return;
  }
  Shard& shard = local_shard();
  // bit_width(0) == 0, bit_width(2^63..) == 64 → bucket index ∈ [0, 63].
  const auto bucket = static_cast<std::size_t>(
      value == 0 ? 0 : std::bit_width(value) - 1);
  shard.buckets[bucket].fetch_add(1, std::memory_order_relaxed);
  shard.count.fetch_add(1, std::memory_order_relaxed);
  shard.sum.fetch_add(value, std::memory_order_relaxed);
  // Single-writer shard: plain load-compare-store is race-free here; the
  // atomics exist for the concurrent snapshot() reader.
  if (value < shard.min.load(std::memory_order_relaxed)) {
    shard.min.store(value, std::memory_order_relaxed);
  }
  if (value > shard.max.load(std::memory_order_relaxed)) {
    shard.max.store(value, std::memory_order_relaxed);
  }
}

Histogram::Shard& Histogram::local_shard() {
  // Per-thread cache of (histogram → shard). Registry-owned histograms are
  // never destroyed, so cached pointers cannot dangle.
  thread_local std::vector<std::pair<const Histogram*, Shard*>> cache;
  for (const auto& [hist, shard] : cache) {
    if (hist == this) {
      return *shard;
    }
  }
  auto owned = std::make_unique<Shard>();
  Shard* shard = owned.get();
  {
    const std::lock_guard<std::mutex> lock{mutex_};
    shards_.push_back(std::move(owned));
  }
  cache.emplace_back(this, shard);
  return *shard;
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot snap;
  std::uint64_t min = ~std::uint64_t{0};
  const std::lock_guard<std::mutex> lock{mutex_};
  for (const auto& shard : shards_) {
    snap.count += shard->count.load(std::memory_order_relaxed);
    snap.sum += shard->sum.load(std::memory_order_relaxed);
    min = std::min(min, shard->min.load(std::memory_order_relaxed));
    snap.max = std::max(snap.max, shard->max.load(std::memory_order_relaxed));
    for (std::size_t b = 0; b < kBuckets; ++b) {
      snap.buckets[b] += shard->buckets[b].load(std::memory_order_relaxed);
    }
  }
  snap.min = snap.count == 0 ? 0 : min;
  return snap;
}

void Histogram::reset() noexcept {
  const std::lock_guard<std::mutex> lock{mutex_};
  for (const auto& shard : shards_) {
    for (auto& bucket : shard->buckets) {
      bucket.store(0, std::memory_order_relaxed);
    }
    shard->count.store(0, std::memory_order_relaxed);
    shard->sum.store(0, std::memory_order_relaxed);
    shard->min.store(~std::uint64_t{0}, std::memory_order_relaxed);
    shard->max.store(0, std::memory_order_relaxed);
  }
}

std::uint64_t Histogram::Snapshot::quantile_bound(double q) const noexcept {
  if (count == 0) {
    return 0;
  }
  // Nearest-rank: the smallest bucket whose cumulative count reaches
  // ceil(q·count), clamped to [1, count].
  const double rank = std::ceil(q * static_cast<double>(count));
  const auto target = std::min<std::uint64_t>(
      count, rank < 1.0 ? 1 : static_cast<std::uint64_t>(rank));
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    seen += buckets[b];
    if (seen >= target) {
      return b >= 63 ? ~std::uint64_t{0} : (std::uint64_t{1} << (b + 1)) - 1;
    }
  }
  return max;
}

Counter& Registry::counter(std::string_view name) {
  return lookup(mutex_, counters_, name,
                [] { return std::make_unique<Counter>(); });
}

Gauge& Registry::gauge(std::string_view name) {
  return lookup(mutex_, gauges_, name,
                [] { return std::make_unique<Gauge>(); });
}

Histogram& Registry::histogram(std::string_view name) {
  return lookup(mutex_, histograms_, name,
                [] { return std::make_unique<Histogram>(); });
}

std::string Registry::to_json() const {
  const std::lock_guard<std::mutex> lock{mutex_};
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"";
    append_escaped(out, name);
    out += "\": ";
    append_u64(out, counter->value());
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, gauge] : gauges_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"";
    append_escaped(out, name);
    out += "\": ";
    out += std::to_string(gauge->value());
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, hist] : histograms_) {
    const Histogram::Snapshot snap = hist->snapshot();
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"";
    append_escaped(out, name);
    out += "\": {\"count\": ";
    append_u64(out, snap.count);
    out += ", \"sum\": ";
    append_u64(out, snap.sum);
    char mean[48];
    std::snprintf(mean, sizeof mean, "%.6g", snap.mean());
    out += ", \"mean\": ";
    out += mean;
    out += ", \"min\": ";
    append_u64(out, snap.min);
    out += ", \"max\": ";
    append_u64(out, snap.max);
    out += ", \"p50_le\": ";
    append_u64(out, snap.quantile_bound(0.50));
    out += ", \"p99_le\": ";
    append_u64(out, snap.quantile_bound(0.99));
    out += ", \"buckets\": [";
    bool first_bucket = true;
    for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
      if (snap.buckets[b] == 0) {
        continue;
      }
      if (!first_bucket) {
        out += ", ";
      }
      first_bucket = false;
      out += "{\"le\": ";
      append_u64(out,
                 b >= 63 ? ~std::uint64_t{0} : (std::uint64_t{1} << (b + 1)) - 1);
      out += ", \"count\": ";
      append_u64(out, snap.buckets[b]);
      out += "}";
    }
    out += "]}";
  }
  out += first ? "}\n}\n" : "\n  }\n}\n";
  return out;
}

void Registry::reset_all() {
  // Counters/gauges reset under the map lock; histograms take their own
  // shard locks, never while holding mutex_ held by to_json/lookup callers
  // on this thread (mutex_ is not recursive, so collect first).
  std::vector<Histogram*> hists;
  {
    const std::lock_guard<std::mutex> lock{mutex_};
    for (const auto& [name, counter] : counters_) {
      counter->reset();
    }
    for (const auto& [name, gauge] : gauges_) {
      gauge->reset();
    }
    hists.reserve(histograms_.size());
    for (const auto& [name, hist] : histograms_) {
      hists.push_back(hist.get());
    }
  }
  for (Histogram* hist : hists) {
    hist->reset();
  }
}

Registry& Registry::instance() {
  static Registry* registry = new Registry;  // never destroyed: sites cache
                                             // references past static dtors
  return *registry;
}

}  // namespace nacu::obs
