// Lightweight metrics registry: monotonic counters, gauges, and latency
// histograms with thread-local sharding aggregated on read.
//
// The instrumentation is compiled in everywhere but *off* by default: every
// recording site pays exactly one relaxed atomic load when metrics are
// disabled (measured ≤2% on bench_throughput, see DESIGN.md §3e). Turn the
// layer on with set_metrics_enabled(true) — the `--metrics` flag on
// bench_throughput / fault_campaign and examples/metrics_dump do — or via
// the NACU_METRICS=1 environment variable, then read everything back with
// registry().to_json().
//
// Metrics are named, process-global, and live for the whole process:
// counter()/gauge()/histogram() return stable references that sites cache
// in a function-local static, so the hot path never touches the registry
// map. Counters and gauges are single atomics (relaxed — they are
// statistics, not synchronisation). Histograms shard per recording thread:
// each thread appends to its own cache-line-padded shard (registered once
// under the histogram's mutex) and snapshot() sums the shards, so
// concurrent recorders never contend on a shared word.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace nacu::obs {

/// Process-wide metrics switch — one relaxed load, the whole cost of a
/// disabled instrumentation site.
[[nodiscard]] bool metrics_enabled() noexcept;
void set_metrics_enabled(bool enabled) noexcept;

/// Monotonically increasing event count.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void add(std::uint64_t n = 1) noexcept {
    if (!metrics_enabled()) {
      return;
    }
    value_.fetch_add(n, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins level, with a high-water helper for queue depths.
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void set(std::int64_t v) noexcept {
    if (!metrics_enabled()) {
      return;
    }
    value_.store(v, std::memory_order_relaxed);
  }

  /// Raise the gauge to @p v when it is a new maximum (queue high-water).
  void record_max(std::int64_t v) noexcept {
    if (!metrics_enabled()) {
      return;
    }
    std::int64_t cur = value_.load(std::memory_order_relaxed);
    while (v > cur && !value_.compare_exchange_weak(
                          cur, v, std::memory_order_relaxed)) {
    }
  }

  [[nodiscard]] std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Log2-bucketed value distribution (nanoseconds for the *_ns metrics).
/// Bucket b counts values whose bit-width is b, i.e. value ∈ [2^(b−1), 2^b).
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 64;

  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void record(std::uint64_t value) noexcept;

  struct Snapshot {
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::uint64_t min = 0;  ///< 0 when count == 0
    std::uint64_t max = 0;
    std::array<std::uint64_t, kBuckets> buckets{};

    [[nodiscard]] double mean() const noexcept {
      return count == 0 ? 0.0
                        : static_cast<double>(sum) / static_cast<double>(count);
    }
    /// Upper bucket bound containing quantile @p q ∈ [0, 1] — a coarse
    /// (power-of-two) percentile, exact enough for latency triage.
    [[nodiscard]] std::uint64_t quantile_bound(double q) const noexcept;
  };

  /// Sum every thread's shard. Safe to call while recorders run (the result
  /// is then a consistent-enough statistical snapshot, not a linearisation).
  [[nodiscard]] Snapshot snapshot() const;

  void reset() noexcept;

 private:
  struct alignas(64) Shard {
    std::array<std::atomic<std::uint64_t>, kBuckets> buckets{};
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> sum{0};
    std::atomic<std::uint64_t> min{~std::uint64_t{0}};
    std::atomic<std::uint64_t> max{0};
  };

  [[nodiscard]] Shard& local_shard();

  mutable std::mutex mutex_;  ///< guards shards_ growth only
  std::vector<std::unique_ptr<Shard>> shards_;
};

/// Records elapsed wall time into a histogram on scope exit, in
/// nanoseconds. Costs one relaxed load when metrics are disabled.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& hist) noexcept {
    if (metrics_enabled()) {
      hist_ = &hist;
      start_ = std::chrono::steady_clock::now();
    }
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer() {
    if (hist_ != nullptr) {
      const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                          std::chrono::steady_clock::now() - start_)
                          .count();
      hist_->record(static_cast<std::uint64_t>(ns < 0 ? 0 : ns));
    }
  }

 private:
  Histogram* hist_ = nullptr;
  std::chrono::steady_clock::time_point start_{};
};

/// The process-global name → metric map. Lookups are mutex-guarded and
/// return references that stay valid forever — cache them in a static.
class Registry {
 public:
  [[nodiscard]] Counter& counter(std::string_view name);
  [[nodiscard]] Gauge& gauge(std::string_view name);
  [[nodiscard]] Histogram& histogram(std::string_view name);

  /// {"counters": {...}, "gauges": {...}, "histograms": {name:
  /// {count,sum,mean,min,max,buckets:[{le,count},...]}}} — stable key
  /// order (sorted by name) so dumps diff cleanly.
  [[nodiscard]] std::string to_json() const;

  /// Zero every registered metric (tests and between bench sections).
  /// Metrics themselves stay registered; cached references stay valid.
  void reset_all();

  static Registry& instance();

 private:
  Registry() = default;

  mutable std::mutex mutex_;
  // Sorted association lists: few dozen metrics, insert-once, read-rare.
  std::vector<std::pair<std::string, std::unique_ptr<Counter>>> counters_;
  std::vector<std::pair<std::string, std::unique_ptr<Gauge>>> gauges_;
  std::vector<std::pair<std::string, std::unique_ptr<Histogram>>> histograms_;
};

/// Shorthands for the singleton registry.
[[nodiscard]] inline Registry& registry() { return Registry::instance(); }
[[nodiscard]] inline Counter& counter(std::string_view name) {
  return registry().counter(name);
}
[[nodiscard]] inline Gauge& gauge(std::string_view name) {
  return registry().gauge(name);
}
[[nodiscard]] inline Histogram& histogram(std::string_view name) {
  return registry().histogram(name);
}

}  // namespace nacu::obs
