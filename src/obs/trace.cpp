#include "obs/trace.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

namespace nacu::obs {

namespace {

struct Event {
  const char* name;
  const char* category;
  std::uint64_t start_ns;
  std::uint64_t dur_ns;
};

/// One recording thread's buffer. The owning thread pushes; write/count/
/// reset read from other threads, so the vector is mutex-guarded. The
/// global registry keeps a shared_ptr so buffers survive thread exit.
struct Buffer {
  std::mutex mutex;
  std::vector<Event> events;
  std::uint32_t tid = 0;
};

struct Global {
  std::atomic<bool> enabled{false};
  std::mutex mutex;  ///< guards buffers and exit_path
  std::vector<std::shared_ptr<Buffer>> buffers;
  std::string exit_path;
  std::uint32_t next_tid = 1;
};

Global& global() {
  static Global* g = new Global;  // leaked: thread_local buffers may flush
                                  // during late static destruction
  return *g;
}

Buffer& local_buffer() {
  thread_local std::shared_ptr<Buffer> buffer = [] {
    auto b = std::make_shared<Buffer>();
    Global& g = global();
    const std::lock_guard<std::mutex> lock{g.mutex};
    b->tid = g.next_tid++;
    g.buffers.push_back(b);
    return b;
  }();
  return *buffer;
}

void write_exit_trace() {
  std::string path;
  {
    Global& g = global();
    const std::lock_guard<std::mutex> lock{g.mutex};
    path = g.exit_path;
  }
  if (!path.empty()) {
    (void)write_trace(path);
  }
}

/// NACU_TRACE=<path> turns tracing on before main() and writes the file at
/// exit, so any binary linking obs is traceable with zero code changes.
const bool g_env_init = [] {
  const char* env = std::getenv("NACU_TRACE");
  if (env != nullptr && env[0] != '\0') {
    enable_trace(env);
  }
  return true;
}();

}  // namespace

bool trace_enabled() noexcept {
  return global().enabled.load(std::memory_order_relaxed);
}

void enable_trace(std::string exit_path) {
  Global& g = global();
  {
    const std::lock_guard<std::mutex> lock{g.mutex};
    if (!exit_path.empty() && g.exit_path.empty()) {
      std::atexit(write_exit_trace);
    }
    if (!exit_path.empty()) {
      g.exit_path = std::move(exit_path);
    }
  }
  g.enabled.store(true, std::memory_order_relaxed);
}

void disable_trace() noexcept {
  global().enabled.store(false, std::memory_order_relaxed);
}

std::uint64_t TraceSpan::now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void TraceSpan::commit() noexcept {
  const std::uint64_t end_ns = now_ns();
  Buffer& buffer = local_buffer();
  const std::lock_guard<std::mutex> lock{buffer.mutex};
  buffer.events.push_back(Event{name_, category_, start_ns_,
                                end_ns > start_ns_ ? end_ns - start_ns_ : 0});
}

std::size_t trace_event_count() {
  Global& g = global();
  const std::lock_guard<std::mutex> lock{g.mutex};
  std::size_t n = 0;
  for (const auto& buffer : g.buffers) {
    const std::lock_guard<std::mutex> buffer_lock{buffer->mutex};
    n += buffer->events.size();
  }
  return n;
}

void reset_trace() {
  Global& g = global();
  const std::lock_guard<std::mutex> lock{g.mutex};
  for (const auto& buffer : g.buffers) {
    const std::lock_guard<std::mutex> buffer_lock{buffer->mutex};
    buffer->events.clear();
  }
}

bool write_trace(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return false;
  }
  // Rebase timestamps to the earliest span so the viewer opens at t=0.
  // Chrome's "ts"/"dur" are microseconds; fractional µs keeps ns precision.
  Global& g = global();
  const std::lock_guard<std::mutex> lock{g.mutex};
  std::uint64_t t0 = ~std::uint64_t{0};
  for (const auto& buffer : g.buffers) {
    const std::lock_guard<std::mutex> buffer_lock{buffer->mutex};
    for (const Event& e : buffer->events) {
      t0 = e.start_ns < t0 ? e.start_ns : t0;
    }
  }
  std::fprintf(f, "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n");
  bool first = true;
  for (const auto& buffer : g.buffers) {
    const std::lock_guard<std::mutex> buffer_lock{buffer->mutex};
    for (const Event& e : buffer->events) {
      std::fprintf(
          f,
          "%s{\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"X\", "
          "\"pid\": 1, \"tid\": %u, \"ts\": %.3f, \"dur\": %.3f}",
          first ? "" : ",\n", e.name, e.category, buffer->tid,
          static_cast<double>(e.start_ns - t0) / 1000.0,
          static_cast<double>(e.dur_ns) / 1000.0);
      first = false;
    }
  }
  std::fprintf(f, "\n]}\n");
  return std::fclose(f) == 0;
}

}  // namespace nacu::obs
