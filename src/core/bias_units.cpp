#include "core/bias_units.hpp"

namespace nacu::core {

// These units are pure wiring (inverter rows at most): they produce a
// well-defined bit pattern for *any* input, not just the legal §V.A range
// quoted in the header. That totality matters — fault-injection campaigns
// (fault/) deliberately feed bit-flipped, out-of-range coefficients through
// them, exactly as corrupted SRAM words would reach the physical gates.
// Equality with real subtraction is only guaranteed (and tested) on the
// legal range.

std::int64_t fig3a_one_minus_q(std::int64_t q_raw, int fb) noexcept {
  const std::int64_t frac_mask = (std::int64_t{1} << fb) - 1;
  const std::int64_t frac = q_raw & frac_mask;
  // Two's complement of the fractional field; integer bits forced to zero.
  return (-frac) & frac_mask;
}

std::int64_t fig3b_minus_one(std::int64_t v_raw, int fb) noexcept {
  const std::int64_t frac_mask = (std::int64_t{1} << fb) - 1;
  const std::int64_t frac = v_raw & frac_mask;
  const std::int64_t a1 = (v_raw >> (fb + 1)) & 1;
  // a1 propagates into a0's position; a1 of the result is always 0.
  return (a1 << fb) | frac;
}

std::int64_t fig3c_plus_one(std::int64_t t_raw, int fb) noexcept {
  const std::int64_t frac_mask = (std::int64_t{1} << fb) - 1;
  const std::int64_t frac = t_raw & frac_mask;
  const std::int64_t a0 = (t_raw >> fb) & 1;
  // All integer bits take ~a0: result is −1 + frac·2^-fb or 0 + frac·2^-fb.
  return a0 ? frac : frac - (std::int64_t{1} << fb);
}

}  // namespace nacu::core
