#include "core/thread_pool.hpp"

#include <algorithm>
#include <exception>
#include <memory>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace nacu::core {

namespace {

/// Completion state shared by every task of one run() batch.
struct Batch {
  std::mutex mutex;
  std::condition_variable done;
  std::size_t remaining = 0;
  std::exception_ptr error;  ///< first exception thrown by any task
};

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() { stop(); }

void ThreadPool::stop() {
  std::call_once(stop_once_, [this] {
    {
      std::unique_lock<std::mutex> lock{mutex_};
      stopping_ = true;
      work_ready_.notify_all();
      // Wait for every in-flight run() batch: their tasks are already
      // queued, and the still-live workers (plus the batch's own caller)
      // drain them. Joining before this point could leave a caller blocked
      // on a batch no worker will ever finish.
      batches_idle_.wait(lock, [this] { return active_batches_ == 0; });
    }
    for (std::thread& worker : workers_) {
      worker.join();
    }
  });
}

bool ThreadPool::stopped() const {
  const std::lock_guard<std::mutex> lock{mutex_};
  return stopping_;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock{mutex_};
      work_ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // stopping and drained
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

std::function<void()> ThreadPool::try_pop() {
  const std::lock_guard<std::mutex> lock{mutex_};
  if (queue_.empty()) {
    return {};
  }
  std::function<void()> task = std::move(queue_.front());
  queue_.pop_front();
  return task;
}

void ThreadPool::run(std::vector<std::function<void()>> tasks) {
  if (tasks.empty()) {
    return;
  }
  // Per-batch accounting: task count, queue-depth high-water (sampled at
  // the deepest point, right after this batch enqueues), and wall time
  // from enqueue to the last completion.
  static obs::Counter& batches = obs::counter("core.thread_pool.batches");
  static obs::Counter& tasks_executed =
      obs::counter("core.thread_pool.tasks_executed");
  static obs::Gauge& queue_high_water =
      obs::gauge("core.thread_pool.queue_depth_high_water");
  static obs::Histogram& batch_ns =
      obs::histogram("core.thread_pool.batch_ns");
  batches.add();
  tasks_executed.add(tasks.size());
  const obs::ScopedTimer timer{batch_ns};
  const obs::TraceSpan span{"ThreadPool::run"};
  auto batch = std::make_shared<Batch>();
  batch->remaining = tasks.size();
  {
    const std::lock_guard<std::mutex> lock{mutex_};
    if (stopping_) {
      // The workers are gone (or going): run inline on the caller with the
      // same complete-everything-then-rethrow semantics, touching no pool
      // state after this check — submission during shutdown degrades to
      // serial execution instead of dropping tasks or deadlocking.
      batch.reset();
    } else {
      // Counted before the tasks are visible to workers, so a concurrent
      // stop() waits for this batch to finish before joining them.
      ++active_batches_;
      for (std::function<void()>& task : tasks) {
        queue_.emplace_back([batch, task = std::move(task)] {
          std::exception_ptr error;
          try {
            task();
          } catch (...) {
            error = std::current_exception();
          }
          const std::lock_guard<std::mutex> batch_lock{batch->mutex};
          if (error && !batch->error) {
            batch->error = error;
          }
          if (--batch->remaining == 0) {
            batch->done.notify_all();
          }
        });
      }
      queue_high_water.record_max(static_cast<std::int64_t>(queue_.size()));
    }
  }
  if (batch == nullptr) {
    std::exception_ptr first_error;
    for (std::function<void()>& task : tasks) {
      try {
        task();
      } catch (...) {
        if (!first_error) {
          first_error = std::current_exception();
        }
      }
    }
    if (first_error) {
      std::rethrow_exception(first_error);
    }
    return;
  }
  work_ready_.notify_all();
  // The caller drains queued tasks too (its own batch's or another's), so
  // a single-threaded host still makes progress and no core idles.
  while (std::function<void()> task = try_pop()) {
    task();
  }
  {
    std::unique_lock<std::mutex> lock{batch->mutex};
    batch->done.wait(lock, [&] { return batch->remaining == 0; });
  }
  {
    const std::lock_guard<std::mutex> lock{mutex_};
    if (--active_batches_ == 0) {
      batches_idle_.notify_all();
    }
  }
  if (batch->error) {
    std::rethrow_exception(batch->error);
  }
}

void ThreadPool::parallel_for(
    std::size_t count, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& body) {
  if (count == 0) {
    return;
  }
  grain = std::max<std::size_t>(1, grain);
  const std::size_t chunks =
      std::min(size(), (count + grain - 1) / grain);
  if (chunks <= 1) {
    body(0, count);
    return;
  }
  const std::size_t chunk = (count + chunks - 1) / chunks;
  std::vector<std::function<void()>> tasks;
  tasks.reserve(chunks);
  for (std::size_t begin = 0; begin < count; begin += chunk) {
    const std::size_t end = std::min(count, begin + chunk);
    tasks.emplace_back([&body, begin, end] { body(begin, end); });
  }
  run(std::move(tasks));  // blocks, so capturing body by reference is safe
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool;
  return pool;
}

}  // namespace nacu::core
