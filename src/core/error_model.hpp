// Error propagation from σ to e (paper §IV.B, Eqs. 15–16).
//
// e = 1/(1−σ) − 1, so an error δσ in the sigmoid becomes
// δe = δσ / (1−σ)² — a coefficient that diverges as σ → 1. Max-normalising
// softmax inputs (Eq. 13) keeps σ(x − x_max) ∈ [0, 0.5], which caps the
// coefficient at 1/(1−0.5)² = 4.
#pragma once

namespace nacu::core {

/// |∂e/∂σ| = 1/(1−σ)² (Eq. 15). σ must be < 1.
[[nodiscard]] double propagation_coefficient(double sigma) noexcept;

/// The cap under max-normalisation: coefficient at σ = 0.5, i.e. 4 (Eq. 16).
[[nodiscard]] constexpr double bounded_propagation_coefficient() noexcept {
  return 4.0;
}

/// Worst-case exp error implied by a sigmoid error budget under
/// normalisation: 4·δσ.
[[nodiscard]] double exp_error_bound(double sigma_error) noexcept;

}  // namespace nacu::core
