// The specialised bias/coefficient units of paper Fig. 3.
//
// The operations on the σ bias q are restricted to 1−q, 2q−1 and 1−2q, and q
// lives in [0.5, 1] (paper §V.A). Exploiting those ranges, each operation
// reduces to wiring + at most an inverter row — no general subtractor:
//
//  Fig. 3a  r = 1 − q,  q  ∈ [0.5, 1] : integer bits zero, fractional bits
//           are the two's complement of q's fractional bits.
//  Fig. 3b  r = v − 1,  v  ∈ [1, 2]   : fractional bits pass through,
//           integer a1 propagates into a0 (covers both v < 2 and v = 2).
//           Also used as the decrementor for σ' − 1, σ' ∈ [1, 2] (§V.B).
//  Fig. 3c  r = t + 1,  t  ∈ [−2, −1] : fractional bits pass through, all
//           integer bits take the inverse of t's a0.
//
// All functions operate on raw two's-complement values with fb fractional
// bits and are exact drop-in replacements for the arithmetic they avoid —
// tests prove equality against real subtraction over the whole legal range.
#pragma once

#include <cstdint>

namespace nacu::core {

/// Fig. 3a: r = 1 − q for q ∈ [0.5, 1] (raw in [2^(fb−1), 2^fb]).
/// Result is in [0, 0.5] on the same grid.
[[nodiscard]] std::int64_t fig3a_one_minus_q(std::int64_t q_raw,
                                             int fb) noexcept;

/// Fig. 3b: r = v − 1 for v ∈ [1, 2] (raw in [2^fb, 2^(fb+1)]).
/// Result is in [0, 1]. Doubles as the σ' − 1 decrementor of §V.B.
[[nodiscard]] std::int64_t fig3b_minus_one(std::int64_t v_raw,
                                           int fb) noexcept;

/// Fig. 3c: r = t + 1 for t ∈ [−2, −1] (raw in [−2^(fb+1), −2^fb]).
/// Result is in [−1, 0].
[[nodiscard]] std::int64_t fig3c_plus_one(std::int64_t t_raw,
                                          int fb) noexcept;

}  // namespace nacu::core
