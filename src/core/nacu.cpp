#include "core/nacu.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/bias_units.hpp"
#include "fixedpoint/format_select.hpp"

namespace nacu::core {

std::size_t lut_entries_for_bits(int total_bits) {
  const double scaled = 53.0 * std::pow(2.0, (total_bits - 16) / 2.0);
  return std::max<std::size_t>(8, static_cast<std::size_t>(scaled + 0.5));
}

NacuConfig config_for_bits(int total_bits, std::size_t lut_entries) {
  const auto fmt = fp::best_symmetric_format(total_bits);
  if (!fmt) {
    throw std::invalid_argument("no Eq. 7 format exists for this bit-width");
  }
  NacuConfig config;
  config.format = *fmt;
  config.coeff_format = fp::Format{1, total_bits - 2};
  config.lut_entries =
      lut_entries > 0 ? lut_entries : lut_entries_for_bits(total_bits);
  return config;
}

Nacu::Nacu(const NacuConfig& config)
    : config_{config},
      lut_{SigmoidLut::Config{.format = config.format,
                              .coeff_format = config.coeff_format,
                              .entries = config.lut_entries,
                              .minimax = config.minimax_fit,
                              .refine_quantised = config.refine_quantised_lut}},
      coeff_wide_{2, config.coeff_format.fractional_bits()} {
  if (config_.approximate_reciprocal) {
    reciprocal_.emplace(ReciprocalUnit::Config{
        .entries = config_.reciprocal_entries,
        .coeff_format = config_.coeff_format,
        .mantissa_fractional_bits =
            config_.format.fractional_bits() + config_.divider_guard_bits});
  }
}

fp::Fixed Nacu::reciprocal_for(fp::Fixed denom, fp::Format out) const {
  if (reciprocal_) {
    return reciprocal_->reciprocal(denom, out);
  }
  const fp::Fixed one = fp::Fixed::from_double(1.0, config_.format);
  return one.div(denom, out, fp::Rounding::Truncate);
}

std::size_t Nacu::segment_for_magnitude(fp::Fixed magnitude,
                                        bool tanh_mode) const {
  // tanh looks σ up at 2|x| (Eq. 3's stretch) — one left shift.
  const std::int64_t raw = tanh_mode
                               ? magnitude.shifted_left(1).raw()
                               : magnitude.raw();
  return lut_.segment_for(raw);
}

Nacu::Coefficients Nacu::morph_coefficients(std::size_t segment,
                                            Mode mode) const {
  const int fb = config_.coeff_format.fractional_bits();
  const std::int64_t m = lut_.slope_raw(segment);
  const std::int64_t q = lut_.bias_raw(segment);
  std::int64_t coeff = 0;
  std::int64_t bias = 0;
  switch (mode) {
    case Mode::SigmoidPos:
      coeff = m;
      bias = q;
      break;
    case Mode::SigmoidNeg:
      coeff = -m;
      bias = config_.use_bit_trick_units
                 ? fig3a_one_minus_q(q, fb)
                 : (std::int64_t{1} << fb) - q;  // general subtractor
      break;
    case Mode::TanhPos:
      coeff = m << 2;  // 2^{i+1} m_i with i = 1 (Eq. 10)
      bias = config_.use_bit_trick_units
                 ? fig3b_minus_one(q << 1, fb)
                 : (q << 1) - (std::int64_t{1} << fb);
      break;
    case Mode::TanhNeg:
      coeff = -(m << 2);
      bias = config_.use_bit_trick_units
                 ? fig3c_plus_one(-(q << 1), fb)
                 : (std::int64_t{1} << fb) - (q << 1);
      break;
  }
  // The coefficient bus is coeff_wide_ bits of wire: legal LUT words always
  // fit (wrap is an identity then), and a fault-corrupted word gets its
  // excess bits dropped exactly as the physical shifter would drop them.
  return Coefficients{
      fp::Fixed::from_raw(fp::apply_overflow(coeff, coeff_wide_,
                                             fp::Overflow::Wrap),
                          coeff_wide_),
      fp::Fixed::from_raw(fp::apply_overflow(bias, coeff_wide_,
                                             fp::Overflow::Wrap),
                          coeff_wide_)};
}

fp::Fixed Nacu::evaluate_pwl(fp::Fixed x, bool tanh_mode) const {
  const fp::Fixed magnitude = x.abs();
  const std::size_t segment = segment_for_magnitude(magnitude, tanh_mode);
  const Mode mode =
      tanh_mode ? (x.is_negative() ? Mode::TanhNeg : Mode::TanhPos)
                : (x.is_negative() ? Mode::SigmoidNeg : Mode::SigmoidPos);
  const Coefficients c = morph_coefficients(segment, mode);
  // The shared multiply-add: full-precision product + bias, one output
  // quantisation (Fig. 2 top-right).
  return magnitude.mul_full(c.coeff).add_full(c.bias).requantize(
      config_.format, config_.output_rounding, fp::Overflow::Saturate);
}

fp::Fixed Nacu::sigmoid(fp::Fixed x) const { return evaluate_pwl(x, false); }

fp::Fixed Nacu::tanh(fp::Fixed x) const { return evaluate_pwl(x, true); }

fp::Fixed Nacu::divider_reciprocal(fp::Fixed denom) const {
  // Quotient at datapath fb plus guard bits. σ' = 1/σ is at most 2 for
  // normalised inputs, but give the quotient enough integer range to cover
  // un-normalised use, then let the caller quantise. The exact path is the
  // pipelined restoring divider; the approximate path is the future-work
  // PWL reciprocal (§VIII).
  const fp::Format quotient_fmt{
      config_.format.integer_bits() + 1,
      config_.format.fractional_bits() + config_.divider_guard_bits};
  return reciprocal_for(denom, quotient_fmt);
}

fp::Fixed Nacu::exp(fp::Fixed x) const {
  // Eq. 14: e^x = 1/σ(−x) − 1.
  fp::Fixed s = sigmoid(x.negate());
  if (s.raw() <= 0) {
    // σ(−x) underflowed to 0, or rounded past the symmetry point to −1 LSB
    // (possible when σ(x) quantises to 1 + LSB near saturation). The divider
    // operand is unsigned in hardware; clamp it to one LSB.
    s = fp::Fixed::from_raw(1, s.format());
  }
  const fp::Fixed sigma_prime = divider_reciprocal(s);
  const int fb = sigma_prime.format().fractional_bits();
  const std::int64_t sp_raw = sigma_prime.raw();
  std::int64_t r_raw;
  if (config_.use_bit_trick_units && sp_raw >= (std::int64_t{1} << fb) &&
      sp_raw <= (std::int64_t{1} << (fb + 1))) {
    // Normalised path: σ' ∈ [1, 2], decrement via the Fig. 3b wiring.
    r_raw = fig3b_minus_one(sp_raw, fb);
  } else {
    r_raw = sp_raw - (std::int64_t{1} << fb);  // general decrementor
  }
  return fp::Fixed::from_raw(r_raw, sigma_prime.format())
      .requantize(config_.format, config_.output_rounding,
                  fp::Overflow::Saturate);
}

fp::Fixed Nacu::mac(fp::Fixed acc, fp::Fixed a, fp::Fixed b) const {
  return acc.add_full(a.mul_full(b))
      .requantize(acc.format(), fp::Rounding::Truncate,
                  fp::Overflow::Saturate);
}

std::vector<fp::Fixed> Nacu::softmax(
    std::span<const fp::Fixed> inputs) const {
  if (inputs.empty()) {
    return {};
  }
  // Max-normalisation (Eq. 13) keeps every exponential in (0, 1] and the
  // error-propagation coefficient bounded by 4 (Eq. 16).
  fp::Fixed x_max = inputs[0];
  for (const fp::Fixed& x : inputs) {
    x_max = std::max(x_max, x, [](const fp::Fixed& a, const fp::Fixed& b) {
      return a < b;
    });
  }
  // Accumulator format: room for n terms of magnitude <= 1.
  int sum_ib = 1;
  while ((std::size_t{1} << sum_ib) < inputs.size() + 1) {
    ++sum_ib;
  }
  const fp::Format sum_fmt{sum_ib + 1, config_.format.fractional_bits()};
  std::vector<fp::Fixed> exps;
  exps.reserve(inputs.size());
  fp::Fixed denom = fp::Fixed::zero(sum_fmt);
  const fp::Fixed one = fp::Fixed::from_double(1.0, config_.format);
  for (const fp::Fixed& x : inputs) {
    const fp::Fixed diff = x.sub(x_max, config_.format);
    const fp::Fixed e = exp(diff);
    exps.push_back(e);
    denom = mac(denom, e, one);  // the MAC accumulates the denominator
  }
  if (denom.is_zero()) {
    denom = fp::Fixed::from_raw(1, sum_fmt);
  }
  std::vector<fp::Fixed> out;
  out.reserve(inputs.size());
  if (reciprocal_) {
    // Approximate path: one reciprocal of the shared denominator, then a
    // multiply per element on the MAC (§VIII future work).
    const fp::Format recip_fmt{1, config_.format.fractional_bits() +
                                      config_.divider_guard_bits + 2};
    const fp::Fixed denom_recip = reciprocal_->reciprocal(denom, recip_fmt);
    for (const fp::Fixed& e : exps) {
      out.push_back(e.mul(denom_recip, config_.format,
                          fp::Rounding::Truncate, fp::Overflow::Saturate));
    }
    return out;
  }
  for (const fp::Fixed& e : exps) {
    out.push_back(e.div(denom, config_.format, fp::Rounding::Truncate));
  }
  return out;
}

}  // namespace nacu::core
