// The σ coefficient/bias LUT at the heart of NACU (paper §V.A).
//
// Stores a first-order PWL model of σ over the *positive* input half-range
// only: one (m1, q) pair per uniform segment. Everything else — negative σ,
// both tanh half-ranges, exp, softmax — is derived from these entries with
// shifts and the Fig. 3 bit tricks; no other function tables exist in the
// unit (that sharing is the ~2× coefficient-area saving quoted in §VII).
#pragma once

#include <cstdint>
#include <vector>

#include "fault/fault_port.hpp"
#include "fixedpoint/fixed.hpp"

namespace nacu::core {

class SigmoidLut {
 public:
  struct Config {
    /// Datapath format; the LUT covers x ∈ [0, In_max(format)].
    fp::Format format{4, 11};
    /// Coefficient/bias storage format. q ∈ [0.5, 1] and m1 ∈ [0, 0.25]
    /// both fit Q1.(N−2) at datapath width.
    fp::Format coeff_format{1, 14};
    std::size_t entries = 53;  ///< paper Table I: 53 entries at 16 bits
    /// Minimax (Chebyshev) per-segment fit when true, least-squares else.
    bool minimax = true;
    /// Quantisation-aware refinement: after rounding (m, q) onto the
    /// coefficient grid, search ±1 LSB around each and keep the pair that
    /// minimises the segment's measured fixed-point max error. The
    /// continuous fit optimum is not always the best *quantised* pair.
    bool refine_quantised = false;
  };

  explicit SigmoidLut(const Config& config);

  [[nodiscard]] const Config& config() const noexcept { return config_; }
  [[nodiscard]] std::size_t entries() const noexcept { return m_raw_.size(); }
  /// m1 + q per entry, at coefficient width.
  [[nodiscard]] std::size_t storage_bits() const noexcept {
    return entries() * 2 *
           static_cast<std::size_t>(config_.coeff_format.width());
  }

  /// Segment index for a non-negative input raw value (saturates into the
  /// last segment beyond In_max).
  [[nodiscard]] std::size_t segment_for(std::int64_t x_raw) const noexcept;

  /// Raw of In_max(format): the upper edge of the LUT's input domain and
  /// the constant behind segment_for's index arithmetic. Exposed so the
  /// compact PWL table (simd::PwlTable) can replay that arithmetic
  /// branch-free without re-deriving the bound.
  [[nodiscard]] std::int64_t x_max_raw() const noexcept { return x_max_raw_; }

  /// Slope m1 of segment @p i (value in [0, 0.25]).
  [[nodiscard]] fp::Fixed slope(std::size_t i) const;
  /// Bias q of segment @p i (value in [0.5, 1]).
  [[nodiscard]] fp::Fixed bias(std::size_t i) const;

  [[nodiscard]] std::int64_t slope_raw(std::size_t i) const {
    const std::int64_t clean = m_raw_.at(i);
    return fault_port_ == nullptr
               ? clean
               : fault_port_->read(fault::Surface::LutSlope, i, clean,
                                   config_.coeff_format.width());
  }
  [[nodiscard]] std::int64_t bias_raw(std::size_t i) const {
    const std::int64_t clean = q_raw_.at(i);
    return fault_port_ == nullptr
               ? clean
               : fault_port_->read(fault::Surface::LutBias, i, clean,
                                   config_.coeff_format.width());
  }

  /// Fault injection (fault/fault_port.hpp): route every coefficient read
  /// through @p port. nullptr (the default) disarms; reads then cost one
  /// pointer compare. The port is not owned. Not thread-safe — attach only
  /// while no reader is in flight.
  void attach_fault_port(fault::BitFaultPort* port) noexcept {
    fault_port_ = port;
  }
  [[nodiscard]] fault::BitFaultPort* fault_port() const noexcept {
    return fault_port_;
  }
  /// Model a controller scrub: every coefficient word is rewritten from the
  /// golden copy. Heals transient upsets; stuck-at defects persist (the
  /// attached port is told about each rewrite and keeps its own state).
  void scrub() noexcept;

 private:
  Config config_;
  std::vector<std::int64_t> m_raw_;
  std::vector<std::int64_t> q_raw_;
  std::int64_t x_max_raw_ = 0;
  fault::BitFaultPort* fault_port_ = nullptr;
};

}  // namespace nacu::core
