#include "core/error_model.hpp"

namespace nacu::core {

double propagation_coefficient(double sigma) noexcept {
  const double r = 1.0 - sigma;
  return 1.0 / (r * r);
}

double exp_error_bound(double sigma_error) noexcept {
  return bounded_propagation_coefficient() * sigma_error;
}

}  // namespace nacu::core
