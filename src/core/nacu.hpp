// NACU — the reconfigurable Non-linear Arithmetic Computation Unit
// (paper §IV–V, Fig. 2), as a bit-accurate functional model.
//
// One σ coefficient LUT (positive half-range only) plus one multiply-add
// datapath computes, depending on the selected mode:
//
//   σ(x)      y = ±m1·|x| + {q | 1−q}                  (Eqs. 8–9)
//   tanh(x)   y = ±4·m1·|x| + {2q−1 | 1−2q},           (Eqs. 10–11)
//             segment selected by 2|x| (Eq. 3's stretch)
//   e^x       σ(−x) → pipelined divider → decrementor  (Eq. 14)
//   softmax   e^(x_i − x_max) / Σ e^(x_j − x_max)      (Eq. 13)
//   MAC       acc + a·b  (the same multiply-add, accumulating)
//
// The coefficient morphing (negate, ×4 shift) and the bias morphing (1−q,
// 2q−1, 1−2q, σ'−1) use the specialised Fig. 3 units; a config switch swaps
// them for general subtractors so tests and benches can show they are exact
// and cheaper (the ablation §VII discusses).
#pragma once

#include <span>
#include <vector>

#include <optional>

#include "core/reciprocal.hpp"
#include "core/sigmoid_lut.hpp"
#include "fixedpoint/fixed.hpp"

namespace nacu::core {

struct NacuConfig {
  /// Datapath input/output format. Q4.11 is the paper's 16-bit pick (§III).
  fp::Format format{4, 11};
  /// σ LUT geometry (entries/coefficient width).
  std::size_t lut_entries = 53;
  fp::Format coeff_format{1, 14};
  /// Extra quotient bits the divider produces beyond the datapath fb; the
  /// decrementor consumes them before the final output quantisation.
  int divider_guard_bits = 2;
  /// Final output quantisation. NearestUp is "add half an LSB, truncate" —
  /// one extra adder input in hardware; Truncate is free.
  fp::Rounding output_rounding = fp::Rounding::NearestUp;
  /// Use the Fig. 3 wiring tricks (true) or general subtractors (false).
  /// Outputs are bit-identical either way — that equivalence is tested.
  bool use_bit_trick_units = true;
  bool minimax_fit = true;
  /// Quantisation-aware ±1 LSB refinement of the LUT coefficients (see
  /// SigmoidLut::Config::refine_quantised).
  bool refine_quantised_lut = false;
  /// The paper's future-work option (§VIII): replace the pipelined
  /// restoring divider with an approximate PWL reciprocal that reuses the
  /// shared multiply-add — much smaller, slightly less accurate.
  bool approximate_reciprocal = false;
  std::size_t reciprocal_entries = 16;
};

/// LUT entry count for an N-bit datapath, scaling the paper's 53-at-16-bits
/// choice: PWL max error ∝ 1/entries², so each extra output bit needs √2×
/// the entries (floor of 8).
[[nodiscard]] std::size_t lut_entries_for_bits(int total_bits);

/// Derive the NacuConfig the paper's method selects for an N-bit datapath:
/// format from Eq. 7 (best_symmetric_format), coefficients at Q1.(N−2),
/// LUT entries from lut_entries_for_bits (override with @p lut_entries > 0).
[[nodiscard]] NacuConfig config_for_bits(int total_bits,
                                         std::size_t lut_entries = 0);

class Nacu {
 public:
  explicit Nacu(const NacuConfig& config);

  [[nodiscard]] const NacuConfig& config() const noexcept { return config_; }
  [[nodiscard]] const SigmoidLut& lut() const noexcept { return lut_; }
  [[nodiscard]] fp::Format format() const noexcept { return config_.format; }

  /// σ(x) for any representable x (negative range via Eq. 9 morphing).
  [[nodiscard]] fp::Fixed sigmoid(fp::Fixed x) const;

  /// tanh(x) for any representable x (Eqs. 10–11; segment at 2|x|).
  [[nodiscard]] fp::Fixed tanh(fp::Fixed x) const;

  /// e^x via Eq. 14. Intended for softmax-normalised inputs x ≤ 0 where the
  /// output is in (0, 1] and the σ'−1 decrementor trick applies; positive
  /// inputs are still computed (general decrement) and saturate at the
  /// format's maximum.
  [[nodiscard]] fp::Fixed exp(fp::Fixed x) const;

  /// Softmax over @p inputs (Eq. 13): max-normalise, exp each, one divider
  /// pass per element against the MAC-accumulated denominator.
  [[nodiscard]] std::vector<fp::Fixed> softmax(
      std::span<const fp::Fixed> inputs) const;

  /// One MAC step: acc + a·b, truncated back into acc's format. This is the
  /// same multiply-add the PWL evaluation uses (paper §V.B: it accumulates
  /// convolution sums and the softmax denominator).
  [[nodiscard]] fp::Fixed mac(fp::Fixed acc, fp::Fixed a, fp::Fixed b) const;

  /// The morphed (coefficient, bias) pair the datapath multiplies with — the
  /// output of the "calculation of bias and coefficient" block in Fig. 2.
  /// Exposed so the cycle-accurate hardware model shares one source of truth.
  struct Coefficients {
    fp::Fixed coeff;  ///< ±m1 or ±4·m1, in the widened coefficient format
    fp::Fixed bias;   ///< q, 1−q, 2q−1 or 1−2q, same format
  };
  enum class Mode { SigmoidPos, SigmoidNeg, TanhPos, TanhNeg };
  [[nodiscard]] Coefficients morph_coefficients(std::size_t segment,
                                                Mode mode) const;

  /// Segment index for a magnitude input (σ uses |x|, tanh uses 2|x|).
  [[nodiscard]] std::size_t segment_for_magnitude(fp::Fixed magnitude,
                                                  bool tanh_mode) const;

  /// The reciprocal unit when approximate_reciprocal is enabled.
  [[nodiscard]] const ReciprocalUnit* reciprocal_unit() const noexcept {
    return reciprocal_ ? &*reciprocal_ : nullptr;
  }

  /// Fault injection (fault/fault_port.hpp): arm @p port on the σ-LUT
  /// coefficient store — every slope/bias word read of every subsequent
  /// evaluation goes through it. nullptr disarms (the default; zero cost).
  void attach_lut_fault_port(fault::BitFaultPort* port) noexcept {
    lut_.attach_fault_port(port);
  }
  /// Rewrite every LUT word from the golden copy (transient-upset scrub).
  void scrub_lut() noexcept { lut_.scrub(); }

 private:
  [[nodiscard]] fp::Fixed evaluate_pwl(fp::Fixed x, bool tanh_mode) const;
  [[nodiscard]] fp::Fixed divider_reciprocal(fp::Fixed denom) const;
  /// 1/denom at quotient precision: exact restoring division, or the
  /// approximate PWL reciprocal when configured.
  [[nodiscard]] fp::Fixed reciprocal_for(fp::Fixed denom,
                                         fp::Format out) const;

  NacuConfig config_;
  SigmoidLut lut_;
  fp::Format coeff_wide_;  ///< Q2.fb_c: holds ±4m and all morphed biases
  std::optional<ReciprocalUnit> reciprocal_;
};

}  // namespace nacu::core
