#include "core/batch_nacu.hpp"

#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "simd/kernels.hpp"

namespace nacu::core {

namespace {

/// Batch/element tallies by serving path, plus the backend pick — the
/// datapath decisions that were invisible before the obs layer. Sites
/// cache the registry references once; each add() is a relaxed load when
/// metrics are off.
void count_batch(std::size_t n, bool table, simd::Backend backend) {
  static obs::Counter& table_batches =
      obs::counter("core.batch_nacu.table_batches");
  static obs::Counter& table_elems =
      obs::counter("core.batch_nacu.table_elems");
  static obs::Counter& scalar_batches =
      obs::counter("core.batch_nacu.scalar_fallback_batches");
  static obs::Counter& scalar_elems =
      obs::counter("core.batch_nacu.scalar_fallback_elems");
  static obs::Counter& avx2_batches =
      obs::counter("core.batch_nacu.backend_avx2_batches");
  static obs::Counter& scalar_backend_batches =
      obs::counter("core.batch_nacu.backend_scalar_batches");
  (table ? table_batches : scalar_batches).add();
  (table ? table_elems : scalar_elems).add(n);
  (backend == simd::Backend::Avx2 ? avx2_batches : scalar_backend_batches)
      .add();
}

}  // namespace

BatchNacu::BatchNacu(const NacuConfig& config)
    : BatchNacu{config, Options{}} {}

BatchNacu::BatchNacu(const NacuConfig& config, Options options)
    : unit_{config},
      options_{options},
      pool_{options.pool != nullptr ? options.pool : &ThreadPool::shared()} {}

bool BatchNacu::table_cacheable() const noexcept {
  return unit_.format().width() <= kMaxTableWidth;
}

bool BatchNacu::table_built(Function f) const noexcept {
  return table_built_[static_cast<std::size_t>(f)].load(
      std::memory_order_acquire);
}

std::size_t BatchNacu::table_bytes() const noexcept {
  if (!table_cacheable()) {
    return 0;
  }
  return (std::size_t{1} << unit_.format().width()) * sizeof(std::int16_t);
}

void BatchNacu::warm(Function f) const {
  (void)table_for(f, options_.table_threshold);
}

fault::Surface BatchNacu::table_surface(Function f) noexcept {
  switch (f) {
    case Function::Sigmoid:
      return fault::Surface::TableSigmoid;
    case Function::Tanh:
      return fault::Surface::TableTanh;
    case Function::Exp:
      return fault::Surface::TableExp;
  }
  return fault::Surface::TableSigmoid;
}

void BatchNacu::scrub_table(Function f) const {
  const auto index = static_cast<std::size_t>(f);
  if (!table_built_[index].load(std::memory_order_acquire)) {
    return;
  }
  const fault::Surface surface = table_surface(f);
  const std::int64_t min_raw = unit_.format().min_raw();
  std::vector<std::int16_t>& table = tables_[index];
  for (std::size_t k = 0; k < table.size(); ++k) {
    table[k] = static_cast<std::int16_t>(
        scalar_raw(f, min_raw + static_cast<std::int64_t>(k)));
    if (fault_port_ != nullptr) {
      fault_port_->on_rewrite(surface, k);
    }
  }
}

std::int64_t BatchNacu::scalar_raw(Function f, std::int64_t raw) const {
  const fp::Fixed x = fp::Fixed::from_raw(raw, unit_.format());
  switch (f) {
    case Function::Sigmoid:
      return unit_.sigmoid(x).raw();
    case Function::Tanh:
      return unit_.tanh(x).raw();
    case Function::Exp:
      return unit_.exp(x).raw();
  }
  throw std::logic_error("BatchNacu: unknown function");
}

const std::vector<std::int16_t>* BatchNacu::table_for(
    Function f, std::size_t batch_size) const {
  if (!table_cacheable()) {
    return nullptr;
  }
  const auto index = static_cast<std::size_t>(f);
  if (!table_built_[index].load(std::memory_order_acquire) &&
      batch_size < options_.table_threshold) {
    return nullptr;  // too small to justify a full-domain sweep
  }
  std::call_once(table_once_[index], [&] {
    // Build with the *scalar* datapath over the entire domain — the table
    // is bit-identical to per-call evaluation by construction. Serial on
    // purpose: a nested parallel build could deadlock a caller already
    // running inside the pool, and the sweep is a few milliseconds.
    static obs::Counter& builds = obs::counter("core.batch_nacu.table_builds");
    static obs::Histogram& build_ns =
        obs::histogram("core.batch_nacu.table_build_ns");
    builds.add();
    const obs::ScopedTimer timer{build_ns};
    const obs::TraceSpan span{"BatchNacu::table_build"};
    const fp::Format fmt = unit_.format();
    const std::int64_t min_raw = fmt.min_raw();
    const auto entries =
        static_cast<std::size_t>(fmt.max_raw() - min_raw + 1);
    std::vector<std::int16_t> table(entries);
    for (std::size_t k = 0; k < entries; ++k) {
      table[k] = static_cast<std::int16_t>(
          scalar_raw(f, min_raw + static_cast<std::int64_t>(k)));
    }
    tables_[index] = std::move(table);
    table_built_[index].store(true, std::memory_order_release);
  });
  return &tables_[index];
}

void BatchNacu::for_range(
    std::size_t n,
    const std::function<void(std::size_t, std::size_t)>& body) const {
  if (n >= options_.parallel_threshold) {
    pool_->parallel_for(n, options_.parallel_grain, body);
  } else {
    body(0, n);
  }
}

void BatchNacu::evaluate(Function f, std::span<const fp::Fixed> in,
                         std::span<fp::Fixed> out) const {
  if (in.size() != out.size()) {
    throw std::invalid_argument("BatchNacu::evaluate: size mismatch");
  }
  const std::size_t n = in.size();
  if (n == 0) {
    return;
  }
  const fp::Format fmt = unit_.format();
  const std::vector<std::int16_t>* table = table_for(f, n);
  // Hoisted so the fault-free path pays one pointer compare per batch —
  // and, with a table, runs a branch-free kernel with no port check at all.
  fault::BitFaultPort* const port = fault_port_;
  const fault::Surface surface = table_surface(f);
  const simd::Backend backend = simd::resolve(options_.backend);
  count_batch(n, table != nullptr, backend);
  for_range(n, [&](std::size_t begin, std::size_t end) {
    if (table != nullptr) {
      if (port == nullptr) {
        const std::size_t count = end - begin;
        const std::size_t done = simd::table_lookup_fixed(
            backend, table->data(), fmt, in.data() + begin,
            out.data() + begin, count);
        if (done != count) {
          throw std::invalid_argument(
              "BatchNacu::evaluate: input not in the datapath format");
        }
        return;
      }
      // Armed path: per-element port interception, semantics identical to
      // the fault-injection subsystem's contract (PR 2).
      const std::int64_t min_raw = fmt.min_raw();
      for (std::size_t k = begin; k < end; ++k) {
        if (in[k].format() != fmt) {
          throw std::invalid_argument(
              "BatchNacu::evaluate: input not in the datapath format");
        }
        const auto word = static_cast<std::size_t>(in[k].raw() - min_raw);
        std::int64_t entry = (*table)[word];
        entry = port->read(surface, word, entry, fmt.width());
        out[k] = fp::Fixed::from_raw(entry, fmt);
      }
      return;
    }
    for (std::size_t k = begin; k < end; ++k) {
      if (in[k].format() != fmt) {
        throw std::invalid_argument(
            "BatchNacu::evaluate: input not in the datapath format");
      }
      switch (f) {
        case Function::Sigmoid:
          out[k] = unit_.sigmoid(in[k]);
          break;
        case Function::Tanh:
          out[k] = unit_.tanh(in[k]);
          break;
        case Function::Exp:
          out[k] = unit_.exp(in[k]);
          break;
      }
    }
  });
}

std::vector<fp::Fixed> BatchNacu::evaluate(
    Function f, std::span<const fp::Fixed> in) const {
  std::vector<fp::Fixed> out(in.size(), fp::Fixed::zero(unit_.format()));
  evaluate(f, in, out);
  return out;
}

void BatchNacu::evaluate_raw(Function f, std::span<const std::int64_t> in,
                             std::span<std::int64_t> out) const {
  if (in.size() != out.size()) {
    throw std::invalid_argument("BatchNacu::evaluate_raw: size mismatch");
  }
  const std::size_t n = in.size();
  if (n == 0) {
    return;
  }
  const fp::Format fmt = unit_.format();
  const std::vector<std::int16_t>* table = table_for(f, n);
  fault::BitFaultPort* const port = fault_port_;
  const fault::Surface surface = table_surface(f);
  const simd::Backend backend = simd::resolve(options_.backend);
  count_batch(n, table != nullptr, backend);
  const std::int64_t min_raw = fmt.min_raw();
  const std::int64_t max_raw = fmt.max_raw();
  for_range(n, [&](std::size_t begin, std::size_t end) {
    if (table != nullptr && port == nullptr) {
      const std::size_t count = end - begin;
      const std::size_t done = simd::table_lookup_raw(
          backend, table->data(), min_raw, max_raw, in.data() + begin,
          out.data() + begin, count);
      if (done != count) {
        throw std::out_of_range(
            "BatchNacu::evaluate_raw: raw outside the datapath format");
      }
      return;
    }
    for (std::size_t k = begin; k < end; ++k) {
      const std::int64_t raw = in[k];
      if (raw < min_raw || raw > max_raw) {
        throw std::out_of_range(
            "BatchNacu::evaluate_raw: raw outside the datapath format");
      }
      if (table != nullptr) {
        const auto word = static_cast<std::size_t>(raw - min_raw);
        std::int64_t entry = (*table)[word];
        if (port != nullptr) {
          entry = port->read(surface, word, entry, fmt.width());
        }
        out[k] = entry;
      } else {
        out[k] = scalar_raw(f, raw);
      }
    }
  });
}

std::vector<fp::Fixed> BatchNacu::softmax(
    std::span<const fp::Fixed> inputs) const {
  if (inputs.empty()) {
    return {};
  }
  static obs::Counter& fused_count =
      obs::counter("core.batch_nacu.softmax_fused");
  static obs::Counter& fixed_count =
      obs::counter("core.batch_nacu.softmax_fixed");
  const obs::TraceSpan span{"BatchNacu::softmax"};
  const fp::Format fmt = unit_.format();
  const std::size_t n = inputs.size();
  // Fused raw-domain path: needs the dense exp table, no armed fault port
  // (the port contract is per-read interception), every input already on
  // the datapath grid, and ib >= 1 so from_double(1.0) is exactly 2^fb —
  // the preconditions under which the raw algebra below is provably
  // bit-identical to the Fixed-API passes. Anything else takes the
  // original path unchanged.
  if (fault_port_ == nullptr && fmt.integer_bits() >= 1) {
    if (const std::vector<std::int16_t>* exp_table =
            table_for(Function::Exp, n)) {
      bool uniform = true;
      for (const fp::Fixed& x : inputs) {
        if (x.format() != fmt) {
          uniform = false;
          break;
        }
      }
      if (uniform) {
        fused_count.add();
        return softmax_fused(inputs, *exp_table);
      }
    }
  }
  fixed_count.add();
  // Max-scan (Eq. 13), same comparator as core::Nacu::softmax.
  fp::Fixed x_max = inputs[0];
  for (const fp::Fixed& x : inputs) {
    if (x_max < x) {
      x_max = x;
    }
  }
  // Accumulator format: identical derivation to core::Nacu::softmax so the
  // MAC truncation sequence matches bit-for-bit.
  int sum_ib = 1;
  while ((std::size_t{1} << sum_ib) < n + 1) {
    ++sum_ib;
  }
  const fp::Format sum_fmt{sum_ib + 1, fmt.fractional_bits()};
  // Shift pass + batched exp (one table pass for the whole vector).
  std::vector<fp::Fixed> exps(n, fp::Fixed::zero(fmt));
  for_range(n, [&](std::size_t begin, std::size_t end) {
    for (std::size_t k = begin; k < end; ++k) {
      exps[k] = inputs[k].sub(x_max, fmt);
    }
  });
  evaluate(Function::Exp, exps, exps);
  // Denominator MAC accumulation stays sequential, preserving the exact
  // truncation order of the scalar path.
  const fp::Fixed one = fp::Fixed::from_double(1.0, fmt);
  fp::Fixed denom = fp::Fixed::zero(sum_fmt);
  for (const fp::Fixed& e : exps) {
    denom = unit_.mac(denom, e, one);
  }
  if (denom.is_zero()) {
    denom = fp::Fixed::from_raw(1, sum_fmt);
  }
  std::vector<fp::Fixed> out(n, fp::Fixed::zero(fmt));
  if (const ReciprocalUnit* recip = unit_.reciprocal_unit()) {
    // Approximate path (§VIII): one shared reciprocal, one multiply each.
    const fp::Format recip_fmt{
        1, fmt.fractional_bits() + config().divider_guard_bits + 2};
    const fp::Fixed denom_recip = recip->reciprocal(denom, recip_fmt);
    for_range(n, [&](std::size_t begin, std::size_t end) {
      for (std::size_t k = begin; k < end; ++k) {
        out[k] = exps[k].mul(denom_recip, fmt, fp::Rounding::Truncate,
                             fp::Overflow::Saturate);
      }
    });
    return out;
  }
  // Exact path: independent divider passes fan out across the pool.
  for_range(n, [&](std::size_t begin, std::size_t end) {
    for (std::size_t k = begin; k < end; ++k) {
      out[k] = exps[k].div(denom, fmt, fp::Rounding::Truncate);
    }
  });
  return out;
}

std::vector<fp::Fixed> BatchNacu::softmax_fused(
    std::span<const fp::Fixed> inputs,
    const std::vector<std::int16_t>& exp_table) const {
  const fp::Format fmt = unit_.format();
  const std::size_t n = inputs.size();
  const simd::Backend backend = simd::resolve(options_.backend);
  const std::int64_t min_raw = fmt.min_raw();
  const std::int64_t max_raw = fmt.max_raw();
  const int fb = fmt.fractional_bits();
  // Pass 1 — max scan on raws. Same format everywhere, so a raw compare is
  // the value compare the Fixed path performs.
  std::int64_t x_max = inputs[0].raw();
  for (const fp::Fixed& x : inputs) {
    if (x.raw() > x_max) {
      x_max = x.raw();
    }
  }
  // Accumulator format: identical derivation to core::Nacu::softmax.
  int sum_ib = 1;
  while ((std::size_t{1} << sum_ib) < n + 1) {
    ++sum_ib;
  }
  const fp::Format sum_fmt{sum_ib + 1, fb};
  // Pass 2 — fused shift + exp. sub(x_max, fmt) with equal formats is
  // clamp(raw - x_max_raw) (the difference is <= 0, so only the lower clamp
  // can fire), and rebasing by -min_raw gives the table word directly; the
  // gather kernel then replaces the per-element Fixed round-trip.
  std::vector<std::int32_t> exps(n);
  for_range(n, [&](std::size_t begin, std::size_t end) {
    for (std::size_t k = begin; k < end; ++k) {
      std::int64_t diff = inputs[k].raw() - x_max;
      if (diff < min_raw) {
        diff = min_raw;
      }
      exps[k] = static_cast<std::int32_t>(diff - min_raw);
    }
    simd::table_lookup_i32(backend, exp_table.data(), exps.data() + begin,
                           exps.data() + begin, end - begin);
  });
  // Pass 3 — denominator. mac(denom, e, 1.0) with one_raw = 2^fb and
  // acc.fb == fb reduces to a per-step saturating add of the raw exp value,
  // in the same left-to-right order as the scalar accumulation.
  const std::int64_t sum_min = sum_fmt.min_raw();
  const std::int64_t sum_max = sum_fmt.max_raw();
  std::int64_t denom = 0;
  for (std::size_t k = 0; k < n; ++k) {
    std::int64_t next = denom + exps[k];
    if (next < sum_min) {
      next = sum_min;
    } else if (next > sum_max) {
      next = sum_max;
    }
    denom = next;
  }
  if (denom == 0) {
    denom = 1;  // the scalar path's 1-LSB floor against divide-by-zero
  }
  // Pass 4 — normalise.
  std::vector<fp::Fixed> out(n, fp::Fixed::zero(fmt));
  if (const ReciprocalUnit* recip = unit_.reciprocal_unit()) {
    // Approximate path (§VIII): mul(e, r, fmt, Truncate) with
    // e.fb == fmt.fb is ((e_raw * r_raw) >> recip_fmt.fb) floor-truncated
    // (arithmetic shift), then saturated into fmt.
    const fp::Format recip_fmt{
        1, fb + config().divider_guard_bits + 2};
    const fp::Fixed denom_recip = recip->reciprocal(
        fp::Fixed::from_raw(denom, sum_fmt), recip_fmt);
    const std::int64_t r_raw = denom_recip.raw();
    const int r_shift = recip_fmt.fractional_bits();
    for_range(n, [&](std::size_t begin, std::size_t end) {
      for (std::size_t k = begin; k < end; ++k) {
        std::int64_t q =
            (static_cast<std::int64_t>(exps[k]) * r_raw) >> r_shift;
        if (q < min_raw) {
          q = min_raw;
        } else if (q > max_raw) {
          q = max_raw;
        }
        out[k] = fp::Fixed::from_raw_unchecked(q, fmt);
      }
    });
    return out;
  }
  // Exact path: div(e, denom, fmt, Truncate) truncates the quotient toward
  // zero — precisely C++ integer division of (e_raw << fb) by denom_raw —
  // then saturates into fmt.
  for_range(n, [&](std::size_t begin, std::size_t end) {
    for (std::size_t k = begin; k < end; ++k) {
      std::int64_t q = (static_cast<std::int64_t>(exps[k]) << fb) / denom;
      if (q < min_raw) {
        q = min_raw;
      } else if (q > max_raw) {
        q = max_raw;
      }
      out[k] = fp::Fixed::from_raw_unchecked(q, fmt);
    }
  });
  return out;
}

std::vector<std::int64_t> BatchNacu::softmax_raw(
    std::span<const std::int64_t> inputs_raw) const {
  std::vector<fp::Fixed> inputs;
  inputs.reserve(inputs_raw.size());
  for (const std::int64_t raw : inputs_raw) {
    inputs.push_back(fp::Fixed::from_raw(raw, unit_.format()));
  }
  const std::vector<fp::Fixed> probs = softmax(inputs);
  std::vector<std::int64_t> out;
  out.reserve(probs.size());
  for (const fp::Fixed& p : probs) {
    out.push_back(p.raw());
  }
  return out;
}

}  // namespace nacu::core
