#include "core/batch_nacu.hpp"

#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace nacu::core {

namespace {

/// Process-wide resident bytes of built activation tables, across every
/// live BatchNacu. Auto table-mode budgets new σ/tanh tables against it:
/// adding another HalfRange table past Options::cache_budget_bytes tips
/// the build into the PWL form instead. Builds add under their call_once;
/// the destructor subtracts.
std::atomic<std::size_t> g_live_table_bytes{0};

/// Batch/element tallies by serving path, plus the backend pick — the
/// datapath decisions that were invisible before the obs layer. Sites
/// cache the registry references once; each add() is a relaxed load when
/// metrics are off.
void count_batch(std::size_t n, bool table, simd::Backend backend) {
  static obs::Counter& table_batches =
      obs::counter("core.batch_nacu.table_batches");
  static obs::Counter& table_elems =
      obs::counter("core.batch_nacu.table_elems");
  static obs::Counter& scalar_batches =
      obs::counter("core.batch_nacu.scalar_fallback_batches");
  static obs::Counter& scalar_elems =
      obs::counter("core.batch_nacu.scalar_fallback_elems");
  static obs::Counter& avx2_batches =
      obs::counter("core.batch_nacu.backend_avx2_batches");
  static obs::Counter& avx512_batches =
      obs::counter("core.batch_nacu.backend_avx512_batches");
  static obs::Counter& neon_batches =
      obs::counter("core.batch_nacu.backend_neon_batches");
  static obs::Counter& scalar_backend_batches =
      obs::counter("core.batch_nacu.backend_scalar_batches");
  (table ? table_batches : scalar_batches).add();
  (table ? table_elems : scalar_elems).add(n);
  switch (backend) {
    case simd::Backend::Avx2:
      avx2_batches.add();
      break;
    case simd::Backend::Avx512:
      avx512_batches.add();
      break;
    case simd::Backend::Neon:
      neon_batches.add();
      break;
    case simd::Backend::Scalar:
      scalar_backend_batches.add();
      break;
  }
}

bool fits_int16(std::int64_t v) noexcept {
  return v >= -32768 && v <= 32767;
}

}  // namespace

BatchNacu::BatchNacu(const NacuConfig& config)
    : BatchNacu{config, Options{}} {}

BatchNacu::BatchNacu(const NacuConfig& config, Options options)
    : unit_{config},
      options_{options},
      pool_{options.pool != nullptr ? options.pool : &ThreadPool::shared()},
      resolved_backend_{simd::resolve(options.backend)} {}

BatchNacu::~BatchNacu() {
  std::size_t total = 0;
  for (const TableStore& store : tables_) {
    total += store.resident_bytes;
  }
  if (total != 0) {
    g_live_table_bytes.fetch_sub(total, std::memory_order_relaxed);
  }
}

bool BatchNacu::table_cacheable() const noexcept {
  return unit_.format().width() <= kMaxTableWidth;
}

bool BatchNacu::table_built(Function f) const noexcept {
  return table_built_[static_cast<std::size_t>(f)].load(
      std::memory_order_acquire);
}

std::size_t BatchNacu::table_bytes() const noexcept {
  if (!table_cacheable()) {
    return 0;
  }
  return (std::size_t{1} << unit_.format().width()) * sizeof(std::int16_t);
}

std::size_t BatchNacu::table_resident_bytes(Function f) const noexcept {
  const auto index = static_cast<std::size_t>(f);
  if (!table_built_[index].load(std::memory_order_acquire)) {
    return 0;
  }
  return tables_[index].resident_bytes;
}

simd::TableKind BatchNacu::table_kind(Function f) const noexcept {
  const auto index = static_cast<std::size_t>(f);
  if (!table_built_[index].load(std::memory_order_acquire)) {
    return simd::TableKind::Dense;
  }
  return tables_[index].view.kind;
}

std::size_t BatchNacu::live_table_bytes() noexcept {
  return g_live_table_bytes.load(std::memory_order_relaxed);
}

void BatchNacu::warm(Function f) const {
  (void)table_for(f, options_.table_threshold);
}

fault::Surface BatchNacu::table_surface(Function f) noexcept {
  switch (f) {
    case Function::Sigmoid:
      return fault::Surface::TableSigmoid;
    case Function::Tanh:
      return fault::Surface::TableTanh;
    case Function::Exp:
      return fault::Surface::TableExp;
  }
  return fault::Surface::TableSigmoid;
}

void BatchNacu::scrub_table(Function f) const {
  const auto index = static_cast<std::size_t>(f);
  if (!table_built_[index].load(std::memory_order_acquire)) {
    return;
  }
  const fault::Surface surface = table_surface(f);
  const fp::Format fmt = unit_.format();
  const std::int64_t min_raw = fmt.min_raw();
  const std::int64_t max_raw = fmt.max_raw();
  TableStore& store = tables_[index];
  // Rewrite the physical storage from the scalar datapath, in whatever
  // layout the build chose (the layout itself never changes post-publish).
  switch (store.view.kind) {
    case simd::TableKind::Dense:
      for (std::size_t k = 0; k < store.entries.size(); ++k) {
        store.entries[k] = static_cast<std::int16_t>(
            scalar_raw(f, min_raw + static_cast<std::int64_t>(k)));
      }
      break;
    case simd::TableKind::HalfSigmoid:
    case simd::TableKind::HalfOdd: {
      // Rebuild the published encoding: HalfSigmoid entries are
      // corr-packed (sample | corr << 15, see simd/kernels.hpp), HalfOdd
      // entries are plain samples. The build proved the corrections fit,
      // and scalar_raw is the deterministic fault-free datapath, so the
      // scrub re-derives the identical bits.
      const std::int64_t one = store.view.one_raw;
      for (std::int64_t r = 0; r <= max_raw; ++r) {
        const std::int64_t yp = scalar_raw(f, r);
        std::int64_t corr = 0;
        if (one != 0 && r > 0) {
          corr = scalar_raw(f, -r) - (one - yp);
        }
        store.entries[static_cast<std::size_t>(r)] =
            static_cast<std::int16_t>(yp | (corr << 15));
      }
      // The pre-inverted |min_raw| slot (correction bit clear).
      store.entries[static_cast<std::size_t>(max_raw) + 1] =
          static_cast<std::int16_t>(one - scalar_raw(f, min_raw));
      break;
    }
    case simd::TableKind::Pwl: {
      const bool tanh_mode = f == Function::Tanh;
      for (std::size_t s = 0; s < store.pwl.segments; ++s) {
        const Nacu::Coefficients pos = unit_.morph_coefficients(
            s, tanh_mode ? Nacu::Mode::TanhPos : Nacu::Mode::SigmoidPos);
        const Nacu::Coefficients neg = unit_.morph_coefficients(
            s, tanh_mode ? Nacu::Mode::TanhNeg : Nacu::Mode::SigmoidNeg);
        store.coeff_pos[s] = pos.coeff.raw();
        store.bias_pos[s] = pos.bias.raw();
        store.coeff_neg[s] = neg.coeff.raw();
        store.bias_neg[s] = neg.bias.raw();
      }
      break;
    }
  }
  // Rewrite notifications cover the full *dense* word domain regardless of
  // layout — the fault surface's addressing contract (PR 2) is dense words.
  if (fault_port_ != nullptr) {
    const auto words = static_cast<std::size_t>(max_raw - min_raw + 1);
    for (std::size_t k = 0; k < words; ++k) {
      fault_port_->on_rewrite(surface, k);
    }
  }
}

std::int64_t BatchNacu::scalar_raw(Function f, std::int64_t raw) const {
  const fp::Fixed x = fp::Fixed::from_raw(raw, unit_.format());
  switch (f) {
    case Function::Sigmoid:
      return unit_.sigmoid(x).raw();
    case Function::Tanh:
      return unit_.tanh(x).raw();
    case Function::Exp:
      return unit_.exp(x).raw();
  }
  throw std::logic_error("BatchNacu: unknown function");
}

void BatchNacu::build_table(Function f, TableStore& store) const {
  static obs::Counter& half_rejected =
      obs::counter("core.batch_nacu.half_range_rejected");
  static obs::Counter& pwl_rejected =
      obs::counter("core.batch_nacu.pwl_rejected");
  static obs::Counter& exp_dense =
      obs::counter("core.batch_nacu.compressed_exp_forced_dense");
  const fp::Format fmt = unit_.format();
  const std::int64_t min_raw = fmt.min_raw();
  const std::int64_t max_raw = fmt.max_raw();
  const auto dense_count = static_cast<std::size_t>(max_raw - min_raw + 1);
  // The dense sweep is always computed: it is the reference every
  // compressed layout must reproduce bit-for-bit, and the fallback when
  // one cannot.
  std::vector<std::int16_t> dense(dense_count);
  for (std::size_t k = 0; k < dense_count; ++k) {
    dense[k] = static_cast<std::int16_t>(
        scalar_raw(f, min_raw + static_cast<std::int64_t>(k)));
  }

  TableMode mode = options_.table_mode;
  if (f == Function::Exp && mode != TableMode::Dense) {
    // e^x is not symmetric — Eq. 14 runs σ through a divider — so neither
    // the half-range fold nor the (division-free) PWL form can express it.
    if (mode != TableMode::Auto) {
      exp_dense.add();
    }
    mode = TableMode::Dense;
  }
  if (mode == TableMode::Auto) {
    const std::size_t half_bytes =
        (static_cast<std::size_t>(max_raw) + 3) * sizeof(std::int16_t);
    mode = g_live_table_bytes.load(std::memory_order_relaxed) + half_bytes >
                   options_.cache_budget_bytes
               ? TableMode::Pwl
               : TableMode::HalfRange;
  }

  const bool tanh_mode = f == Function::Tanh;
  const std::int64_t one =
      f == Function::Sigmoid
          ? (std::int64_t{1} << fmt.fractional_bits())
          : 0;

  if (mode == TableMode::Pwl) {
    const SigmoidLut& lut = unit_.lut();
    const std::size_t segs = lut.entries();
    store.coeff_pos.resize(segs);
    store.bias_pos.resize(segs);
    store.coeff_neg.resize(segs);
    store.bias_neg.resize(segs);
    for (std::size_t s = 0; s < segs; ++s) {
      const Nacu::Coefficients pos = unit_.morph_coefficients(
          s, tanh_mode ? Nacu::Mode::TanhPos : Nacu::Mode::SigmoidPos);
      const Nacu::Coefficients neg = unit_.morph_coefficients(
          s, tanh_mode ? Nacu::Mode::TanhNeg : Nacu::Mode::SigmoidNeg);
      store.coeff_pos[s] = pos.coeff.raw();
      store.bias_pos[s] = pos.bias.raw();
      store.coeff_neg[s] = neg.coeff.raw();
      store.bias_neg[s] = neg.bias.raw();
    }
    store.pwl.coeff_pos = store.coeff_pos.data();
    store.pwl.bias_pos = store.bias_pos.data();
    store.pwl.coeff_neg = store.coeff_neg.data();
    store.pwl.bias_neg = store.bias_neg.data();
    store.pwl.segments = segs;
    store.pwl.x_max_raw = lut.x_max_raw();
    store.pwl.mag_max_raw = max_raw;
    store.pwl.tanh_stretch = tanh_mode;
    store.pwl.bias_shift = fmt.fractional_bits();
    store.pwl.out_shift = config().coeff_format.fractional_bits();
    store.pwl.rounding = config().output_rounding;
    store.pwl.out_min = min_raw;
    store.pwl.out_max = max_raw;
    // Exhaustive replay check: the integer FMA must land on the scalar
    // datapath's output for every representable input, or the form is
    // rejected (e.g. a rounding mode whose requantisation the compact
    // replay cannot mirror).
    bool ok = true;
    for (std::size_t k = 0; k < dense_count && ok; ++k) {
      ok = simd::pwl_eval_raw(store.pwl,
                              min_raw + static_cast<std::int64_t>(k)) ==
           dense[k];
    }
    if (ok) {
      store.view.kind = simd::TableKind::Pwl;
      store.view.entries = nullptr;
      store.view.one_raw = 0;
      store.view.pwl = &store.pwl;
      store.resident_bytes = segs * 4 * sizeof(std::int64_t);
      return;
    }
    pwl_rejected.add();
    store.coeff_pos.clear();
    store.bias_pos.clear();
    store.coeff_neg.clear();
    store.bias_neg.clear();
    store.pwl = simd::PwlTable{};
    mode = TableMode::HalfRange;
  }

  if (mode == TableMode::HalfRange) {
    // Fold onto the non-negative half: entries[r] for r in [0, max_raw],
    // the pre-inverted |min_raw| slot at max_raw + 1, one zero pad slot to
    // keep the entry count even (the dword-pair gather reads in pairs).
    //
    // For σ (one != 0) the entries are corr-packed (simd/kernels.hpp): the
    // sample in bits [0,14] and a +1 correction in bit 15, because the
    // datapath's bit-trick coefficient morph makes σ(−x) land one raw ulp
    // above 1 − σ(x) for some inputs — Eq. 3 holds exactly only in real
    // arithmetic. A correction outside {0, 1} (or a sample needing bit 15)
    // has no encoding and rejects the fold. Odd functions store plain
    // signed samples and must satisfy f(−x) = −f(x) exactly.
    std::vector<std::int16_t> half(static_cast<std::size_t>(max_raw) + 3, 0);
    bool ok = true;
    for (std::int64_t r = 0; r <= max_raw && ok; ++r) {
      const std::int64_t yp = dense[static_cast<std::size_t>(r - min_raw)];
      if (one != 0) {
        std::int64_t corr = 0;
        if (r > 0) {
          const std::int64_t yn =
              dense[static_cast<std::size_t>(-r - min_raw)];
          corr = yn - (one - yp);
        }
        ok = yp >= 0 && yp <= 0x7FFF && (corr == 0 || corr == 1);
        half[static_cast<std::size_t>(r)] =
            static_cast<std::int16_t>(yp | (corr << 15));
      } else {
        half[static_cast<std::size_t>(r)] = static_cast<std::int16_t>(yp);
      }
    }
    const std::int64_t slot = one - dense[0];  // word 0 is raw == min_raw
    ok = ok && fits_int16(slot) && (one == 0 || (slot >= 0 && slot <= 0x7FFF));
    if (ok) {
      half[static_cast<std::size_t>(max_raw) + 1] =
          static_cast<std::int16_t>(slot);
      // Exhaustive check over the full dense domain through the *same*
      // reconstruction formula the kernels use (table_entry_for_word):
      // every word must land on the dense sweep, or the fold is rejected.
      simd::TableView probe;
      probe.kind = f == Function::Sigmoid ? simd::TableKind::HalfSigmoid
                                          : simd::TableKind::HalfOdd;
      probe.entries = half.data();
      probe.one_raw = static_cast<std::int32_t>(one);
      for (std::size_t k = 0; k < dense_count && ok; ++k) {
        ok = simd::table_entry_for_word(probe, min_raw, k) == dense[k];
      }
    }
    if (ok) {
      store.entries = std::move(half);
      store.view.kind = f == Function::Sigmoid ? simd::TableKind::HalfSigmoid
                                               : simd::TableKind::HalfOdd;
      store.view.entries = store.entries.data();
      store.view.one_raw = static_cast<std::int32_t>(one);
      store.view.pwl = nullptr;
      store.resident_bytes = store.entries.size() * sizeof(std::int16_t);
      return;
    }
    half_rejected.add();
  }

  store.entries = std::move(dense);
  store.view.kind = simd::TableKind::Dense;
  store.view.entries = store.entries.data();
  store.view.one_raw = 0;
  store.view.pwl = nullptr;
  store.resident_bytes = store.entries.size() * sizeof(std::int16_t);
}

const simd::TableView* BatchNacu::table_for(Function f,
                                            std::size_t batch_size) const {
  if (!table_cacheable()) {
    return nullptr;
  }
  const auto index = static_cast<std::size_t>(f);
  if (!table_built_[index].load(std::memory_order_acquire) &&
      batch_size < options_.table_threshold) {
    return nullptr;  // too small to justify a full-domain sweep
  }
  std::call_once(table_once_[index], [&] {
    // Build with the *scalar* datapath over the entire domain — the table
    // is bit-identical to per-call evaluation by construction. Serial on
    // purpose: a nested parallel build could deadlock a caller already
    // running inside the pool, and the sweep is a few milliseconds.
    static obs::Counter& builds = obs::counter("core.batch_nacu.table_builds");
    static obs::Histogram& build_ns =
        obs::histogram("core.batch_nacu.table_build_ns");
    builds.add();
    const obs::ScopedTimer timer{build_ns};
    const obs::TraceSpan span{"BatchNacu::table_build"};
    build_table(f, tables_[index]);
    g_live_table_bytes.fetch_add(tables_[index].resident_bytes,
                                 std::memory_order_relaxed);
    table_built_[index].store(true, std::memory_order_release);
  });
  return &tables_[index].view;
}

void BatchNacu::for_range(
    std::size_t n,
    const std::function<void(std::size_t, std::size_t)>& body) const {
  if (n >= options_.parallel_threshold) {
    pool_->parallel_for(n, options_.parallel_grain, body);
  } else {
    body(0, n);
  }
}

void BatchNacu::evaluate(Function f, std::span<const fp::Fixed> in,
                         std::span<fp::Fixed> out) const {
  if (in.size() != out.size()) {
    throw std::invalid_argument("BatchNacu::evaluate: size mismatch");
  }
  const std::size_t n = in.size();
  if (n == 0) {
    return;
  }
  const fp::Format fmt = unit_.format();
  const simd::TableView* view = table_for(f, n);
  // Hoisted so the fault-free path pays one pointer compare per batch —
  // and, with a table, runs a branch-free kernel with no port check at all.
  fault::BitFaultPort* const port = fault_port_;
  const fault::Surface surface = table_surface(f);
  const simd::Backend backend = resolved_backend_;
  count_batch(n, view != nullptr, backend);
  for_range(n, [&](std::size_t begin, std::size_t end) {
    if (view != nullptr) {
      if (port == nullptr) {
        const std::size_t count = end - begin;
        const std::size_t done =
            simd::table_lookup_fixed(backend, *view, fmt, in.data() + begin,
                                     out.data() + begin, count);
        if (done != count) {
          throw std::invalid_argument(
              "BatchNacu::evaluate: input not in the datapath format");
        }
        return;
      }
      // Armed path: per-element port interception in the dense word domain
      // (word = raw − min_raw regardless of layout), semantics identical to
      // the fault-injection subsystem's contract (PR 2).
      const std::int64_t min_raw = fmt.min_raw();
      for (std::size_t k = begin; k < end; ++k) {
        if (in[k].format() != fmt) {
          throw std::invalid_argument(
              "BatchNacu::evaluate: input not in the datapath format");
        }
        const auto word = static_cast<std::size_t>(in[k].raw() - min_raw);
        std::int64_t entry = simd::table_entry_for_word(*view, min_raw, word);
        entry = port->read(surface, word, entry, fmt.width());
        out[k] = fp::Fixed::from_raw(entry, fmt);
      }
      return;
    }
    for (std::size_t k = begin; k < end; ++k) {
      if (in[k].format() != fmt) {
        throw std::invalid_argument(
            "BatchNacu::evaluate: input not in the datapath format");
      }
      switch (f) {
        case Function::Sigmoid:
          out[k] = unit_.sigmoid(in[k]);
          break;
        case Function::Tanh:
          out[k] = unit_.tanh(in[k]);
          break;
        case Function::Exp:
          out[k] = unit_.exp(in[k]);
          break;
      }
    }
  });
}

std::vector<fp::Fixed> BatchNacu::evaluate(
    Function f, std::span<const fp::Fixed> in) const {
  std::vector<fp::Fixed> out(in.size(), fp::Fixed::zero(unit_.format()));
  evaluate(f, in, out);
  return out;
}

void BatchNacu::evaluate_raw(Function f, std::span<const std::int64_t> in,
                             std::span<std::int64_t> out) const {
  if (in.size() != out.size()) {
    throw std::invalid_argument("BatchNacu::evaluate_raw: size mismatch");
  }
  const std::size_t n = in.size();
  if (n == 0) {
    return;
  }
  const fp::Format fmt = unit_.format();
  const simd::TableView* view = table_for(f, n);
  fault::BitFaultPort* const port = fault_port_;
  const fault::Surface surface = table_surface(f);
  const simd::Backend backend = resolved_backend_;
  count_batch(n, view != nullptr, backend);
  const std::int64_t min_raw = fmt.min_raw();
  const std::int64_t max_raw = fmt.max_raw();
  for_range(n, [&](std::size_t begin, std::size_t end) {
    if (view != nullptr && port == nullptr) {
      const std::size_t count = end - begin;
      const std::size_t done =
          simd::table_lookup_raw(backend, *view, min_raw, max_raw,
                                 in.data() + begin, out.data() + begin, count);
      if (done != count) {
        throw std::out_of_range(
            "BatchNacu::evaluate_raw: raw outside the datapath format");
      }
      return;
    }
    for (std::size_t k = begin; k < end; ++k) {
      const std::int64_t raw = in[k];
      if (raw < min_raw || raw > max_raw) {
        throw std::out_of_range(
            "BatchNacu::evaluate_raw: raw outside the datapath format");
      }
      if (view != nullptr) {
        const auto word = static_cast<std::size_t>(raw - min_raw);
        std::int64_t entry = simd::table_entry_for_word(*view, min_raw, word);
        if (port != nullptr) {
          entry = port->read(surface, word, entry, fmt.width());
        }
        out[k] = entry;
      } else {
        out[k] = scalar_raw(f, raw);
      }
    }
  });
}

std::vector<fp::Fixed> BatchNacu::softmax(
    std::span<const fp::Fixed> inputs) const {
  if (inputs.empty()) {
    return {};
  }
  static obs::Counter& fused_count =
      obs::counter("core.batch_nacu.softmax_fused");
  static obs::Counter& fixed_count =
      obs::counter("core.batch_nacu.softmax_fixed");
  const obs::TraceSpan span{"BatchNacu::softmax"};
  const fp::Format fmt = unit_.format();
  const std::size_t n = inputs.size();
  // Fused raw-domain path: needs the exp table (always Dense), no armed
  // fault port (the port contract is per-read interception), every input
  // already on the datapath grid, and ib >= 1 so from_double(1.0) is
  // exactly 2^fb — the preconditions under which the raw algebra below is
  // provably bit-identical to the Fixed-API passes. Anything else takes the
  // original path unchanged.
  if (fault_port_ == nullptr && fmt.integer_bits() >= 1) {
    if (const simd::TableView* exp_view = table_for(Function::Exp, n)) {
      bool uniform = true;
      for (const fp::Fixed& x : inputs) {
        if (x.format() != fmt) {
          uniform = false;
          break;
        }
      }
      if (uniform) {
        fused_count.add();
        return softmax_fused(inputs, *exp_view);
      }
    }
  }
  fixed_count.add();
  // Max-scan (Eq. 13), same comparator as core::Nacu::softmax.
  fp::Fixed x_max = inputs[0];
  for (const fp::Fixed& x : inputs) {
    if (x_max < x) {
      x_max = x;
    }
  }
  // Accumulator format: identical derivation to core::Nacu::softmax so the
  // MAC truncation sequence matches bit-for-bit.
  int sum_ib = 1;
  while ((std::size_t{1} << sum_ib) < n + 1) {
    ++sum_ib;
  }
  const fp::Format sum_fmt{sum_ib + 1, fmt.fractional_bits()};
  // Shift pass + batched exp (one table pass for the whole vector).
  std::vector<fp::Fixed> exps(n, fp::Fixed::zero(fmt));
  for_range(n, [&](std::size_t begin, std::size_t end) {
    for (std::size_t k = begin; k < end; ++k) {
      exps[k] = inputs[k].sub(x_max, fmt);
    }
  });
  evaluate(Function::Exp, exps, exps);
  // Denominator MAC accumulation stays sequential, preserving the exact
  // truncation order of the scalar path.
  const fp::Fixed one = fp::Fixed::from_double(1.0, fmt);
  fp::Fixed denom = fp::Fixed::zero(sum_fmt);
  for (const fp::Fixed& e : exps) {
    denom = unit_.mac(denom, e, one);
  }
  if (denom.is_zero()) {
    denom = fp::Fixed::from_raw(1, sum_fmt);
  }
  std::vector<fp::Fixed> out(n, fp::Fixed::zero(fmt));
  if (const ReciprocalUnit* recip = unit_.reciprocal_unit()) {
    // Approximate path (§VIII): one shared reciprocal, one multiply each.
    const fp::Format recip_fmt{
        1, fmt.fractional_bits() + config().divider_guard_bits + 2};
    const fp::Fixed denom_recip = recip->reciprocal(denom, recip_fmt);
    for_range(n, [&](std::size_t begin, std::size_t end) {
      for (std::size_t k = begin; k < end; ++k) {
        out[k] = exps[k].mul(denom_recip, fmt, fp::Rounding::Truncate,
                             fp::Overflow::Saturate);
      }
    });
    return out;
  }
  // Exact path: independent divider passes fan out across the pool.
  for_range(n, [&](std::size_t begin, std::size_t end) {
    for (std::size_t k = begin; k < end; ++k) {
      out[k] = exps[k].div(denom, fmt, fp::Rounding::Truncate);
    }
  });
  return out;
}

std::vector<fp::Fixed> BatchNacu::softmax_fused(
    std::span<const fp::Fixed> inputs, const simd::TableView& exp_view) const {
  const fp::Format fmt = unit_.format();
  const std::size_t n = inputs.size();
  const simd::Backend backend = resolved_backend_;
  const std::int64_t min_raw = fmt.min_raw();
  const std::int64_t max_raw = fmt.max_raw();
  const int fb = fmt.fractional_bits();
  // Pass 1 — max scan on raws. Same format everywhere, so a raw compare is
  // the value compare the Fixed path performs.
  std::int64_t x_max = inputs[0].raw();
  for (const fp::Fixed& x : inputs) {
    if (x.raw() > x_max) {
      x_max = x.raw();
    }
  }
  // Accumulator format: identical derivation to core::Nacu::softmax.
  int sum_ib = 1;
  while ((std::size_t{1} << sum_ib) < n + 1) {
    ++sum_ib;
  }
  const fp::Format sum_fmt{sum_ib + 1, fb};
  // Pass 2 — fused shift + exp. sub(x_max, fmt) with equal formats is
  // clamp(raw - x_max_raw) (the difference is <= 0, so only the lower clamp
  // can fire), and rebasing by -min_raw gives the table word directly; the
  // gather kernel then replaces the per-element Fixed round-trip.
  std::vector<std::int32_t> exps(n);
  for_range(n, [&](std::size_t begin, std::size_t end) {
    for (std::size_t k = begin; k < end; ++k) {
      std::int64_t diff = inputs[k].raw() - x_max;
      if (diff < min_raw) {
        diff = min_raw;
      }
      exps[k] = static_cast<std::int32_t>(diff - min_raw);
    }
    simd::table_lookup_i32(backend, exp_view, min_raw, exps.data() + begin,
                           exps.data() + begin, end - begin);
  });
  // Pass 3 — denominator. mac(denom, e, 1.0) with one_raw = 2^fb and
  // acc.fb == fb reduces to a per-step saturating add of the raw exp value,
  // in the same left-to-right order as the scalar accumulation.
  const std::int64_t sum_min = sum_fmt.min_raw();
  const std::int64_t sum_max = sum_fmt.max_raw();
  std::int64_t denom = 0;
  for (std::size_t k = 0; k < n; ++k) {
    std::int64_t next = denom + exps[k];
    if (next < sum_min) {
      next = sum_min;
    } else if (next > sum_max) {
      next = sum_max;
    }
    denom = next;
  }
  if (denom == 0) {
    denom = 1;  // the scalar path's 1-LSB floor against divide-by-zero
  }
  // Pass 4 — normalise.
  std::vector<fp::Fixed> out(n, fp::Fixed::zero(fmt));
  if (const ReciprocalUnit* recip = unit_.reciprocal_unit()) {
    // Approximate path (§VIII): mul(e, r, fmt, Truncate) with
    // e.fb == fmt.fb is ((e_raw * r_raw) >> recip_fmt.fb) floor-truncated
    // (arithmetic shift), then saturated into fmt.
    const fp::Format recip_fmt{
        1, fb + config().divider_guard_bits + 2};
    const fp::Fixed denom_recip = recip->reciprocal(
        fp::Fixed::from_raw(denom, sum_fmt), recip_fmt);
    const std::int64_t r_raw = denom_recip.raw();
    const int r_shift = recip_fmt.fractional_bits();
    for_range(n, [&](std::size_t begin, std::size_t end) {
      for (std::size_t k = begin; k < end; ++k) {
        std::int64_t q =
            (static_cast<std::int64_t>(exps[k]) * r_raw) >> r_shift;
        if (q < min_raw) {
          q = min_raw;
        } else if (q > max_raw) {
          q = max_raw;
        }
        out[k] = fp::Fixed::from_raw_unchecked(q, fmt);
      }
    });
    return out;
  }
  // Exact path: div(e, denom, fmt, Truncate) truncates the quotient toward
  // zero — precisely C++ integer division of (e_raw << fb) by denom_raw —
  // then saturates into fmt.
  for_range(n, [&](std::size_t begin, std::size_t end) {
    for (std::size_t k = begin; k < end; ++k) {
      std::int64_t q = (static_cast<std::int64_t>(exps[k]) << fb) / denom;
      if (q < min_raw) {
        q = min_raw;
      } else if (q > max_raw) {
        q = max_raw;
      }
      out[k] = fp::Fixed::from_raw_unchecked(q, fmt);
    }
  });
  return out;
}

std::vector<std::int64_t> BatchNacu::softmax_raw(
    std::span<const std::int64_t> inputs_raw) const {
  std::vector<fp::Fixed> inputs;
  inputs.reserve(inputs_raw.size());
  for (const std::int64_t raw : inputs_raw) {
    inputs.push_back(fp::Fixed::from_raw(raw, unit_.format()));
  }
  const std::vector<fp::Fixed> probs = softmax(inputs);
  std::vector<std::int64_t> out;
  out.reserve(probs.size());
  for (const fp::Fixed& p : probs) {
    out.push_back(p.raw());
  }
  return out;
}

}  // namespace nacu::core
