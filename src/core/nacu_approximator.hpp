// Adapter exposing a Nacu function as an approx::Approximator, so the NACU
// itself plugs into the same error-analysis sweeps and Fig. 4/Fig. 6
// comparisons as every baseline.
#pragma once

#include <memory>

#include "approx/approximator.hpp"
#include "core/nacu.hpp"

namespace nacu::core {

class NacuApproximator final : public approx::Approximator {
 public:
  NacuApproximator(std::shared_ptr<const Nacu> unit,
                   approx::FunctionKind kind)
      : unit_{std::move(unit)}, kind_{kind} {}

  /// Convenience: build a fresh NACU for @p total_bits.
  static NacuApproximator for_bits(int total_bits, approx::FunctionKind kind,
                                   std::size_t lut_entries = 0) {
    return NacuApproximator{
        std::make_shared<Nacu>(config_for_bits(total_bits, lut_entries)),
        kind};
  }

  [[nodiscard]] std::string name() const override {
    return "NACU-" + approx::to_string(kind_);
  }
  [[nodiscard]] approx::FunctionKind function() const override {
    return kind_;
  }
  [[nodiscard]] fp::Format input_format() const override {
    return unit_->format();
  }
  [[nodiscard]] fp::Format output_format() const override {
    return unit_->format();
  }
  [[nodiscard]] fp::Fixed evaluate(fp::Fixed x) const override {
    switch (kind_) {
      case approx::FunctionKind::Sigmoid:
        return unit_->sigmoid(x);
      case approx::FunctionKind::Tanh:
        return unit_->tanh(x);
      case approx::FunctionKind::Exp:
        return unit_->exp(x);
    }
    return unit_->sigmoid(x);  // unreachable
  }
  [[nodiscard]] std::size_t table_entries() const override {
    return unit_->lut().entries();
  }
  [[nodiscard]] std::size_t storage_bits() const override {
    return unit_->lut().storage_bits();
  }

  [[nodiscard]] const Nacu& unit() const noexcept { return *unit_; }

 private:
  std::shared_ptr<const Nacu> unit_;
  approx::FunctionKind kind_;
};

}  // namespace nacu::core
