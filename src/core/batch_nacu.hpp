// Batched NACU evaluation engine.
//
// The scalar core::Nacu walks the full Fig. 2 datapath — segment search,
// coefficient morphing, widened multiply-add, output quantisation — once
// per call. BatchNacu amortises that per-call cost for array-granularity
// consumers (dense layers, LSTM gates, conv feature maps, softmax):
//
//  * cached activation table — a datapath of width ≤ 16 bits has at most
//    2^16 representable inputs, so σ/tanh/e^x each collapse into one
//    raw→raw table. Tables are built lazily, once per (function, config),
//    under std::call_once, by running the *scalar* datapath over the whole
//    domain — a table lookup is therefore bit-identical to the scalar unit
//    by construction (and exhaustively re-proven by
//    tests/test_batch_differential.cpp);
//  * compressed table layouts — σ and tanh obey the paper's §IV symmetry
//    (Eq. 3): σ(−x) = 1 − σ(x), tanh(−x) = −tanh(x). Storing only the
//    non-negative half and reconstructing the other half in registers
//    halves the cache working set per (function, config); when many live
//    configs would still blow the cache budget, the table collapses
//    further into the compact PWL-coefficient form (simd::PwlTable): two
//    small per-segment LUT pairs plus the Fig. 2 multiply-add, no samples
//    at all. Every compressed layout is verified against the dense sweep
//    over the entire domain at build time and rejected (falling back a
//    layout) on any single-bit disagreement — compression is bit-identical
//    or it does not ship. See DESIGN.md §"Compressed activation tables".
//  * thread-pool fan-out — batches past Options::parallel_threshold split
//    across core::ThreadPool chunks. Every element is independent, so the
//    split cannot change results;
//  * batched softmax — the Eq. 13 passes (max-scan, exp, MAC-accumulated
//    denominator, normalise) run over whole vectors, with the exp pass on
//    the table and the per-element divider pass fanned out. The MAC
//    accumulation order is preserved, keeping the result bit-identical to
//    core::Nacu::softmax. (exp is asymmetric — Eq. 14 runs a divider — so
//    its table is always Dense.)
//
// Formats wider than 16 bits skip the table (2^width entries would not pay
// off) and keep the scalar datapath per element, still chunked across the
// pool. See DESIGN.md ("Batch evaluation engine") for the memory/speed
// trade-off numbers.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <span>
#include <vector>

#include "core/nacu.hpp"
#include "core/thread_pool.hpp"
#include "simd/dispatch.hpp"
#include "simd/kernels.hpp"

namespace nacu::core {

class BatchNacu {
 public:
  enum class Function { Sigmoid, Tanh, Exp };
  static constexpr std::size_t kFunctionCount = 3;
  /// Widest datapath that gets a cached table (Dense: 2^16 × 2 B = 128 KiB;
  /// HalfRange: ~64 KiB; Pwl: a few KiB of coefficients).
  static constexpr int kMaxTableWidth = 16;

  /// Physical layout policy for the cached activation tables.
  enum class TableMode : std::uint8_t {
    /// Exp stays Dense; σ/tanh take HalfRange, or the PWL-coefficient form
    /// when the process-wide resident-table total would exceed
    /// Options::cache_budget_bytes (many live configs sharing one cache).
    Auto,
    Dense,      ///< full 2^width sample table for every function
    HalfRange,  ///< σ/tanh store the non-negative half only; exp Dense
    Pwl,        ///< σ/tanh use coefficient LUTs + FMA, no samples; exp Dense
  };

  struct Options {
    /// Batch size at which a first use builds the activation table. Below
    /// it, fresh instances stay on the scalar path (a table costs a
    /// full-domain sweep to build); once built, the table serves every size.
    std::size_t table_threshold = 64;
    /// Batch size at which work fans out across the thread pool.
    std::size_t parallel_threshold = std::size_t{1} << 14;
    /// Minimum elements per pool chunk.
    std::size_t parallel_grain = std::size_t{1} << 12;
    /// Pool to fan out on; nullptr uses ThreadPool::shared().
    ThreadPool* pool = nullptr;
    /// Kernel backend for the table-lookup / fused-softmax fast paths
    /// (simd/dispatch.hpp). Defaults to the process-wide CPUID pick.
    /// Resolved against availability ONCE, at engine construction — later
    /// backend overrides (set_active_backend, NACU_BACKEND) do not retarget
    /// a live engine, so a batch never changes ISA mid-flight. backend()
    /// reports the resolved pick.
    simd::Backend backend = simd::active_backend();
    /// Table layout policy (see TableMode). Explicit modes still verify:
    /// a compressed layout that fails the exhaustive bit-identity sweep
    /// falls back (Pwl → HalfRange → Dense) rather than shipping wrong.
    TableMode table_mode = TableMode::Auto;
    /// Auto-mode threshold on the *process-wide* resident table bytes
    /// (live_table_bytes()): while under it new σ/tanh tables take
    /// HalfRange, above it they take the PWL form. Sized for a typical
    /// shared L2 slice; raise it on big-cache parts, lower it when many
    /// engine configs serve concurrently.
    std::size_t cache_budget_bytes = std::size_t{2} << 20;
  };

  explicit BatchNacu(const NacuConfig& config);
  BatchNacu(const NacuConfig& config, Options options);
  ~BatchNacu();

  BatchNacu(const BatchNacu&) = delete;
  BatchNacu& operator=(const BatchNacu&) = delete;

  [[nodiscard]] const Nacu& unit() const noexcept { return unit_; }
  /// Mutable access to the scalar unit — needed to arm fault-injection on
  /// the σ-LUT beneath this engine (fault/fault_port.hpp).
  [[nodiscard]] Nacu& unit() noexcept { return unit_; }
  [[nodiscard]] const NacuConfig& config() const noexcept {
    return unit_.config();
  }
  [[nodiscard]] fp::Format format() const noexcept { return unit_.format(); }
  [[nodiscard]] const Options& options() const noexcept { return options_; }
  /// The kernel backend this engine resolved at construction and uses for
  /// every batch (Options::backend degraded to what the host supports).
  [[nodiscard]] simd::Backend backend() const noexcept {
    return resolved_backend_;
  }

  /// Whether this config's domain is small enough for cached tables.
  [[nodiscard]] bool table_cacheable() const noexcept;
  /// Whether @p f's table has been built (lazily, by a prior batch).
  [[nodiscard]] bool table_built(Function f) const noexcept;
  /// Bytes one function's *dense* table occupies (0 when not cacheable) —
  /// the uncompressed reference size; see table_resident_bytes for what a
  /// built table actually holds.
  [[nodiscard]] std::size_t table_bytes() const noexcept;
  /// Bytes @p f's built table actually occupies (0 when not built):
  /// sample storage for Dense/HalfRange, coefficient LUTs for Pwl.
  [[nodiscard]] std::size_t table_resident_bytes(Function f) const noexcept;
  /// The physical layout @p f's built table landed on after verification
  /// (TableKind::Dense when not yet built — the scalar path's equivalent).
  [[nodiscard]] simd::TableKind table_kind(Function f) const noexcept;
  /// Process-wide resident bytes across every live BatchNacu's built
  /// tables — the value Auto mode budgets against. Exposed for the serving
  /// layer's working-set gauge and the cache-budget tests.
  [[nodiscard]] static std::size_t live_table_bytes() noexcept;
  /// Force-build @p f's table now (e.g. before timing-sensitive batches).
  void warm(Function f) const;

  /// Evaluate @p f element-wise: out[i] = f(in[i]), bit-identical to the
  /// scalar core::Nacu calls. Inputs must be in the datapath format;
  /// in.size() must equal out.size(). in and out may alias exactly.
  void evaluate(Function f, std::span<const fp::Fixed> in,
                std::span<fp::Fixed> out) const;
  [[nodiscard]] std::vector<fp::Fixed> evaluate(
      Function f, std::span<const fp::Fixed> in) const;

  /// Raw-value variant for consumers that carry datapath raws (CGRA,
  /// softmax engine). Raws must be representable in the datapath format.
  void evaluate_raw(Function f, std::span<const std::int64_t> in,
                    std::span<std::int64_t> out) const;

  /// Batched Eq. 13 softmax, bit-identical to core::Nacu::softmax.
  [[nodiscard]] std::vector<fp::Fixed> softmax(
      std::span<const fp::Fixed> inputs) const;
  [[nodiscard]] std::vector<std::int64_t> softmax_raw(
      std::span<const std::int64_t> inputs_raw) const;

  /// Fault injection (fault/fault_port.hpp): route every table entry read
  /// through @p port (surfaces TableSigmoid/TableTanh/TableExp). The fault
  /// surface's word addressing is the *dense* domain — word = raw − min_raw
  /// over all 2^width words — regardless of the physical layout, so
  /// injection campaigns and the PR 7 verify-before-release parity check
  /// behave identically on Dense, HalfRange and Pwl tables. nullptr disarms
  /// (the default); the fault-free path then costs one pointer compare per
  /// batch, hoisted out of the loops. Attaching is not thread-safe — attach
  /// only while no evaluation is in flight (the serving layer attaches at
  /// shard construction/rebuild). Armed batches may fan out across the
  /// pool, and a serving supervisor may scrub while a dispatcher reads,
  /// *if* the port itself is thread-safe — fault::FaultInjector is
  /// (mutex-guarded fault list, atomic counters).
  void attach_fault_port(fault::BitFaultPort* port) noexcept {
    fault_port_ = port;
  }
  [[nodiscard]] fault::BitFaultPort* fault_port() const noexcept {
    return fault_port_;
  }
  /// The TableSigmoid/TableTanh/TableExp surface backing @p f's table.
  [[nodiscard]] static fault::Surface table_surface(Function f) noexcept;

  /// Recovery: rewrite @p f's table storage from the scalar datapath (a
  /// controller scrub). Every physical word is recomputed and stored, and
  /// the attached port is told about each rewrite *in the dense word
  /// domain* — transient upsets heal, stuck-at defects persist (route those
  /// consumers to the scalar path instead). No-op when the table was never
  /// built. The layout chosen at build time is kept.
  void scrub_table(Function f) const;

 private:
  /// One built activation table: the owned storage (samples or coefficient
  /// LUTs) plus the non-owning simd::TableView the kernels consume. The
  /// view's pointers target the vectors *after* they reach their final
  /// address, and the layout never changes post-publish.
  struct TableStore {
    std::vector<std::int16_t> entries;
    std::vector<std::int64_t> coeff_pos;
    std::vector<std::int64_t> bias_pos;
    std::vector<std::int64_t> coeff_neg;
    std::vector<std::int64_t> bias_neg;
    simd::PwlTable pwl;
    simd::TableView view;
    std::size_t resident_bytes = 0;
  };

  /// Raw-domain Eq. 13 softmax over the exp table: single max scan, one
  /// fused shift+exp pass, the same ordered saturating denominator
  /// accumulation, then the divide/reciprocal pass — all on int raws,
  /// bit-identical to the Fixed-API path (see DESIGN.md for the algebra).
  /// Callable only when the exp table exists, no fault port is armed, every
  /// input is in the datapath format, and 1.0 is representable.
  [[nodiscard]] std::vector<fp::Fixed> softmax_fused(
      std::span<const fp::Fixed> inputs, const simd::TableView& exp_view) const;

  /// Scalar datapath result for one raw input.
  [[nodiscard]] std::int64_t scalar_raw(Function f, std::int64_t raw) const;
  /// The table view for @p f, building it if a batch of @p batch_size
  /// warrants one; nullptr when the scalar path should be used instead.
  [[nodiscard]] const simd::TableView* table_for(Function f,
                                                 std::size_t batch_size) const;
  /// Build @p f's table into @p store: dense sweep, layout policy, the
  /// exhaustive bit-identity verification and any fallback.
  void build_table(Function f, TableStore& store) const;
  /// Run @p body over [0, n), fanned out when n crosses the threshold.
  void for_range(std::size_t n,
                 const std::function<void(std::size_t, std::size_t)>& body)
      const;

  Nacu unit_;
  Options options_;
  ThreadPool* pool_;
  simd::Backend resolved_backend_;
  fault::BitFaultPort* fault_port_ = nullptr;
  mutable std::array<std::once_flag, kFunctionCount> table_once_;
  mutable std::array<TableStore, kFunctionCount> tables_;
  mutable std::array<std::atomic<bool>, kFunctionCount> table_built_{};
};

}  // namespace nacu::core
