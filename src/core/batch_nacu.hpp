// Batched NACU evaluation engine.
//
// The scalar core::Nacu walks the full Fig. 2 datapath — segment search,
// coefficient morphing, widened multiply-add, output quantisation — once
// per call. BatchNacu amortises that per-call cost for array-granularity
// consumers (dense layers, LSTM gates, conv feature maps, softmax):
//
//  * dense activation table — a datapath of width ≤ 16 bits has at most
//    2^16 representable inputs, so σ/tanh/e^x each collapse into one dense
//    raw→raw table (2^width × 2 B). Tables are built lazily, once per
//    (function, config), under std::call_once, by running the *scalar*
//    datapath over the whole domain — a table lookup is therefore
//    bit-identical to the scalar unit by construction (and exhaustively
//    re-proven by tests/test_batch_differential.cpp);
//  * thread-pool fan-out — batches past Options::parallel_threshold split
//    across core::ThreadPool chunks. Every element is independent, so the
//    split cannot change results;
//  * batched softmax — the Eq. 13 passes (max-scan, exp, MAC-accumulated
//    denominator, normalise) run over whole vectors, with the exp pass on
//    the table and the per-element divider pass fanned out. The MAC
//    accumulation order is preserved, keeping the result bit-identical to
//    core::Nacu::softmax.
//
// Formats wider than 16 bits skip the table (2^width entries would not pay
// off) and keep the scalar datapath per element, still chunked across the
// pool. See DESIGN.md ("Batch evaluation engine") for the memory/speed
// trade-off numbers.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <span>
#include <vector>

#include "core/nacu.hpp"
#include "core/thread_pool.hpp"
#include "simd/dispatch.hpp"

namespace nacu::core {

class BatchNacu {
 public:
  enum class Function { Sigmoid, Tanh, Exp };
  static constexpr std::size_t kFunctionCount = 3;
  /// Widest datapath that gets a dense table (2^16 × 2 B = 128 KiB).
  static constexpr int kMaxTableWidth = 16;

  struct Options {
    /// Batch size at which a first use builds the dense table. Below it,
    /// fresh instances stay on the scalar path (a table costs a full-domain
    /// sweep to build); once built, the table serves every size.
    std::size_t table_threshold = 64;
    /// Batch size at which work fans out across the thread pool.
    std::size_t parallel_threshold = std::size_t{1} << 14;
    /// Minimum elements per pool chunk.
    std::size_t parallel_grain = std::size_t{1} << 12;
    /// Pool to fan out on; nullptr uses ThreadPool::shared().
    ThreadPool* pool = nullptr;
    /// Kernel backend for the table-lookup / fused-softmax fast paths
    /// (simd/dispatch.hpp). Defaults to the process-wide CPUID pick;
    /// re-resolved against availability at every use, so a stale Avx2
    /// request degrades to Scalar rather than faulting.
    simd::Backend backend = simd::active_backend();
  };

  explicit BatchNacu(const NacuConfig& config);
  BatchNacu(const NacuConfig& config, Options options);

  [[nodiscard]] const Nacu& unit() const noexcept { return unit_; }
  /// Mutable access to the scalar unit — needed to arm fault-injection on
  /// the σ-LUT beneath this engine (fault/fault_port.hpp).
  [[nodiscard]] Nacu& unit() noexcept { return unit_; }
  [[nodiscard]] const NacuConfig& config() const noexcept {
    return unit_.config();
  }
  [[nodiscard]] fp::Format format() const noexcept { return unit_.format(); }
  [[nodiscard]] const Options& options() const noexcept { return options_; }

  /// Whether this config's domain is small enough for dense tables.
  [[nodiscard]] bool table_cacheable() const noexcept;
  /// Whether @p f's table has been built (lazily, by a prior batch).
  [[nodiscard]] bool table_built(Function f) const noexcept;
  /// Bytes one function's dense table occupies (0 when not cacheable).
  [[nodiscard]] std::size_t table_bytes() const noexcept;
  /// Force-build @p f's table now (e.g. before timing-sensitive batches).
  void warm(Function f) const;

  /// Evaluate @p f element-wise: out[i] = f(in[i]), bit-identical to the
  /// scalar core::Nacu calls. Inputs must be in the datapath format;
  /// in.size() must equal out.size(). in and out may alias exactly.
  void evaluate(Function f, std::span<const fp::Fixed> in,
                std::span<fp::Fixed> out) const;
  [[nodiscard]] std::vector<fp::Fixed> evaluate(
      Function f, std::span<const fp::Fixed> in) const;

  /// Raw-value variant for consumers that carry datapath raws (CGRA,
  /// softmax engine). Raws must be representable in the datapath format.
  void evaluate_raw(Function f, std::span<const std::int64_t> in,
                    std::span<std::int64_t> out) const;

  /// Batched Eq. 13 softmax, bit-identical to core::Nacu::softmax.
  [[nodiscard]] std::vector<fp::Fixed> softmax(
      std::span<const fp::Fixed> inputs) const;
  [[nodiscard]] std::vector<std::int64_t> softmax_raw(
      std::span<const std::int64_t> inputs_raw) const;

  /// Fault injection (fault/fault_port.hpp): route every dense-table entry
  /// read through @p port (surfaces TableSigmoid/TableTanh/TableExp, word =
  /// raw − min_raw). nullptr disarms (the default); the fault-free path
  /// then costs one pointer compare per batch, hoisted out of the loops.
  /// Attaching is not thread-safe — attach only while no evaluation is in
  /// flight (the serving layer attaches at shard construction/rebuild).
  /// Armed batches may fan out across the pool, and a serving supervisor
  /// may scrub while a dispatcher reads, *if* the port itself is
  /// thread-safe — fault::FaultInjector is (mutex-guarded fault list,
  /// atomic counters).
  void attach_fault_port(fault::BitFaultPort* port) noexcept {
    fault_port_ = port;
  }
  [[nodiscard]] fault::BitFaultPort* fault_port() const noexcept {
    return fault_port_;
  }
  /// The TableSigmoid/TableTanh/TableExp surface backing @p f's table.
  [[nodiscard]] static fault::Surface table_surface(Function f) noexcept;

  /// Recovery: rewrite @p f's dense table from the scalar datapath (a
  /// controller scrub). Every entry is recomputed and stored, and the
  /// attached port is told about each rewrite — transient upsets heal,
  /// stuck-at defects persist (route those consumers to the scalar path
  /// instead). No-op when the table was never built.
  void scrub_table(Function f) const;

 private:
  /// Raw-domain Eq. 13 softmax over the dense exp table: single max scan,
  /// one fused shift+exp pass, the same ordered saturating denominator
  /// accumulation, then the divide/reciprocal pass — all on int raws,
  /// bit-identical to the Fixed-API path (see DESIGN.md for the algebra).
  /// Callable only when the exp table exists, no fault port is armed, every
  /// input is in the datapath format, and 1.0 is representable.
  [[nodiscard]] std::vector<fp::Fixed> softmax_fused(
      std::span<const fp::Fixed> inputs,
      const std::vector<std::int16_t>& exp_table) const;

  /// Scalar datapath result for one raw input.
  [[nodiscard]] std::int64_t scalar_raw(Function f, std::int64_t raw) const;
  /// The dense table for @p f, building it if a batch of @p batch_size
  /// warrants one; nullptr when the scalar path should be used instead.
  [[nodiscard]] const std::vector<std::int16_t>* table_for(
      Function f, std::size_t batch_size) const;
  /// Run @p body over [0, n), fanned out when n crosses the threshold.
  void for_range(std::size_t n,
                 const std::function<void(std::size_t, std::size_t)>& body)
      const;

  Nacu unit_;
  Options options_;
  ThreadPool* pool_;
  fault::BitFaultPort* fault_port_ = nullptr;
  mutable std::array<std::once_flag, kFunctionCount> table_once_;
  mutable std::array<std::vector<std::int16_t>, kFunctionCount> tables_;
  mutable std::array<std::atomic<bool>, kFunctionCount> table_built_{};
};

}  // namespace nacu::core
