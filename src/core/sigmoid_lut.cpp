#include "core/sigmoid_lut.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "approx/fit.hpp"
#include "fixedpoint/format_select.hpp"

namespace nacu::core {

SigmoidLut::SigmoidLut(const Config& config) : config_{config} {
  if (config_.entries == 0) {
    throw std::invalid_argument("SigmoidLut needs at least one entry");
  }
  const double in_max = fp::input_max(config_.format);
  x_max_raw_ = fp::Fixed::from_double(in_max, config_.format).raw();
  const double step = in_max / static_cast<double>(config_.entries);
  const int fb = config_.coeff_format.fractional_bits();
  const std::int64_t q_lo = std::int64_t{1} << (fb - 1);  // 0.5
  const std::int64_t q_hi = std::int64_t{1} << fb;        // 1.0
  m_raw_.reserve(config_.entries);
  q_raw_.reserve(config_.entries);
  // Measured max error of quantised (m, q) over one segment's input grid.
  const auto segment_error = [&](double a, double b, std::int64_t m_raw,
                                 std::int64_t q_raw) {
    const double m = static_cast<double>(m_raw) *
                     config_.coeff_format.resolution();
    const double q = static_cast<double>(q_raw) *
                     config_.coeff_format.resolution();
    double worst = 0.0;
    constexpr int kProbes = 33;
    for (int p = 0; p <= kProbes; ++p) {
      const double x = a + (b - a) * p / kProbes;
      const double ref = 1.0 / (1.0 + std::exp(-x));
      worst = std::max(worst, std::abs(m * x + q - ref));
    }
    return worst;
  };

  for (std::size_t i = 0; i < config_.entries; ++i) {
    const double a = static_cast<double>(i) * step;
    const double b = a + step;
    const approx::LinearFit fit =
        config_.minimax
            ? approx::fit_minimax(approx::FunctionKind::Sigmoid, a, b)
            : approx::fit_least_squares(approx::FunctionKind::Sigmoid, a, b);
    std::int64_t m_raw = std::max<std::int64_t>(
        fp::Fixed::from_double(fit.slope, config_.coeff_format).raw(), 0);
    // The Fig. 3 units require q ∈ [0.5, 1]; quantisation can nudge a bias a
    // hair outside, so clamp onto the legal grid.
    std::int64_t q_raw = std::clamp(
        fp::Fixed::from_double(fit.intercept, config_.coeff_format).raw(),
        q_lo, q_hi);
    if (config_.refine_quantised) {
      // ±1 LSB neighbourhood search around the rounded pair.
      std::int64_t best_m = m_raw;
      std::int64_t best_q = q_raw;
      double best = segment_error(a, b, m_raw, q_raw);
      for (std::int64_t dm = -1; dm <= 1; ++dm) {
        for (std::int64_t dq = -1; dq <= 1; ++dq) {
          const std::int64_t cm = m_raw + dm;
          const std::int64_t cq = std::clamp(q_raw + dq, q_lo, q_hi);
          if (cm < 0) continue;
          const double err = segment_error(a, b, cm, cq);
          if (err < best) {
            best = err;
            best_m = cm;
            best_q = cq;
          }
        }
      }
      m_raw = best_m;
      q_raw = best_q;
    }
    m_raw_.push_back(m_raw);
    q_raw_.push_back(q_raw);
  }
}

void SigmoidLut::scrub() noexcept {
  if (fault_port_ == nullptr) {
    return;
  }
  for (std::size_t i = 0; i < m_raw_.size(); ++i) {
    fault_port_->on_rewrite(fault::Surface::LutSlope, i);
    fault_port_->on_rewrite(fault::Surface::LutBias, i);
  }
}

std::size_t SigmoidLut::segment_for(std::int64_t x_raw) const noexcept {
  const std::int64_t clamped = std::clamp<std::int64_t>(x_raw, 0, x_max_raw_);
  auto index = static_cast<std::int64_t>(
      (static_cast<__int128>(clamped) * static_cast<__int128>(entries())) /
      x_max_raw_);
  return static_cast<std::size_t>(std::clamp<std::int64_t>(
      index, 0, static_cast<std::int64_t>(entries()) - 1));
}

fp::Fixed SigmoidLut::slope(std::size_t i) const {
  // Through slope_raw so an armed fault port sees this read too. A fault
  // stays within the coefficient word's width, so from_raw cannot throw.
  return fp::Fixed::from_raw(slope_raw(i), config_.coeff_format);
}

fp::Fixed SigmoidLut::bias(std::size_t i) const {
  return fp::Fixed::from_raw(bias_raw(i), config_.coeff_format);
}

}  // namespace nacu::core
