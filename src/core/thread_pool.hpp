// Small reusable worker pool for batch evaluation fan-out.
//
// The pool owns a fixed set of worker threads and a shared FIFO task queue.
// Each run() call is a *batch*: the caller enqueues its tasks, helps drain
// the queue, and blocks until every task of its own batch has completed.
// The first exception thrown by any task is captured and rethrown on the
// calling thread, so batch evaluation keeps ordinary error semantics.
//
// The pool is deliberately minimal — no futures, no work stealing beyond
// the shared queue, no task priorities — because the only client is
// BatchNacu's data-parallel range splitting, where every task is a chunk of
// one homogeneous loop. Tasks must not enqueue nested run() batches on the
// same pool (a worker blocking on a nested batch could deadlock a pool
// whose other workers wait on it).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace nacu::core {

class ThreadPool {
 public:
  /// Spawn @p threads workers; 0 means std::thread::hardware_concurrency()
  /// (with a floor of one worker).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Run every task, block until all complete, rethrow the first exception.
  /// The calling thread participates in draining the queue.
  void run(std::vector<std::function<void()>> tasks);

  /// Split [0, count) into at most size() contiguous chunks of at least
  /// @p grain elements and run body(begin, end) over each. Runs inline on
  /// the caller when one chunk (or fewer than grain elements) remains.
  void parallel_for(std::size_t count, std::size_t grain,
                    const std::function<void(std::size_t, std::size_t)>& body);

  /// Process-wide pool shared by every BatchNacu that does not bring its
  /// own. Sized to the hardware concurrency.
  static ThreadPool& shared();

 private:
  void worker_loop();
  /// Pop one queued task, or an empty function when the queue is empty.
  std::function<void()> try_pop();

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
};

}  // namespace nacu::core
