// Small reusable worker pool for batch evaluation fan-out.
//
// The pool owns a fixed set of worker threads and a shared FIFO task queue.
// Each run() call is a *batch*: the caller enqueues its tasks, helps drain
// the queue, and blocks until every task of its own batch has completed.
// The first exception thrown by any task is captured and rethrown on the
// calling thread, so batch evaluation keeps ordinary error semantics.
//
// The pool is deliberately minimal — no futures, no work stealing beyond
// the shared queue, no task priorities — because the only clients are
// BatchNacu's data-parallel range splitting and the serving layer's
// dispatcher, where every task is a chunk of one homogeneous loop. Tasks
// must not enqueue nested run() batches on the same pool (a worker
// blocking on a nested batch could deadlock a pool whose other workers
// wait on it).
//
// Shutdown contract (the serving layer's drain path relies on it):
//  * stop() — and the destructor, which calls it — waits for every
//    in-flight run() batch to complete before joining the workers, so a
//    pool going down never drops queued tasks and never leaves a caller
//    blocked on a batch that no worker will finish;
//  * run() on a pool that is stopping or stopped executes its tasks inline
//    on the calling thread, with the same complete-then-rethrow semantics.
//    Submission during shutdown therefore degrades to serial execution
//    instead of deadlocking or losing work
//    (tests/test_thread_pool.cpp: *DuringShutdown*, *AfterStop*).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace nacu::core {

class ThreadPool {
 public:
  /// Spawn @p threads workers; 0 means std::thread::hardware_concurrency()
  /// (with a floor of one worker).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Run every task, block until all complete, rethrow the first exception.
  /// The calling thread participates in draining the queue. On a stopping
  /// or stopped pool the tasks run inline on the caller instead — every
  /// task still executes exactly once.
  void run(std::vector<std::function<void()>> tasks);

  /// Stop accepting pooled work: waits for in-flight run() batches to
  /// drain, then joins every worker. Idempotent; called by the destructor.
  /// Afterwards run() still works (inline on the caller).
  void stop();

  /// Whether stop() has begun (further run() calls execute inline).
  [[nodiscard]] bool stopped() const;

  /// Split [0, count) into at most size() contiguous chunks of at least
  /// @p grain elements and run body(begin, end) over each. Runs inline on
  /// the caller when one chunk (or fewer than grain elements) remains.
  void parallel_for(std::size_t count, std::size_t grain,
                    const std::function<void(std::size_t, std::size_t)>& body);

  /// Process-wide pool shared by every BatchNacu that does not bring its
  /// own. Sized to the hardware concurrency.
  static ThreadPool& shared();

 private:
  void worker_loop();
  /// Pop one queued task, or an empty function when the queue is empty.
  std::function<void()> try_pop();

  std::vector<std::thread> workers_;
  mutable std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable batches_idle_;  ///< signalled when a run() exits
  std::deque<std::function<void()>> queue_;
  std::size_t active_batches_ = 0;  ///< run() calls currently in flight
  bool stopping_ = false;
  std::once_flag stop_once_;  ///< concurrent stop() callers block until done
};

}  // namespace nacu::core
