// Approximate reciprocal unit — the paper's stated future work (§VIII):
// "we plan to optimise out the conventional divider with an approximate
// one. This will allow us to significantly lower the area cost with a
// small reduction in overall accuracy."
//
// Design: 1/v is computed by range reduction plus a small PWL table.
// A leading-one detector writes v = m · 2^k with mantissa m ∈ [1, 2); then
// 1/v = 2^−k · (1/m), and 1/m ∈ (0.5, 1] comes from a PWL approximation of
// the reciprocal over one octave — evaluated on the *same* multiply-add the
// σ/tanh path already owns. The 25-row restoring divider array disappears;
// what remains is a second small coefficient table and a shifter.
#pragma once

#include <cstdint>
#include <vector>

#include "fixedpoint/fixed.hpp"

namespace nacu::core {

class ReciprocalUnit {
 public:
  struct Config {
    /// PWL segments over the mantissa octave [1, 2).
    std::size_t entries = 16;
    /// Coefficient storage format; slopes of 1/m on [1,2) lie in [−1,−0.25]
    /// and intercepts in (0.5, 2], so one integer bit suffices with sign.
    fp::Format coeff_format{1, 14};
    /// Working fractional bits of the mantissa/reciprocal datapath.
    int mantissa_fractional_bits = 13;
  };

  explicit ReciprocalUnit(const Config& config);

  /// Approximate 1/v for v > 0, quantised into @p out (saturating).
  /// Throws std::domain_error when v <= 0.
  [[nodiscard]] fp::Fixed reciprocal(fp::Fixed v, fp::Format out) const;

  [[nodiscard]] std::size_t entries() const noexcept {
    return m_raw_.size();
  }
  /// Table bits: (m, q) per segment.
  [[nodiscard]] std::size_t storage_bits() const noexcept {
    return entries() * 2 *
           static_cast<std::size_t>(config_.coeff_format.width());
  }
  /// Continuous max relative error of the mantissa PWL (for tests/benches).
  [[nodiscard]] double worst_relative_error() const noexcept {
    return worst_relative_error_;
  }

 private:
  Config config_;
  std::vector<std::int64_t> m_raw_;
  std::vector<std::int64_t> q_raw_;
  double worst_relative_error_ = 0.0;
};

}  // namespace nacu::core
