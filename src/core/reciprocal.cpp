#include "core/reciprocal.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace nacu::core {

namespace {

/// Minimax line for the convex f(m) = 1/m on [a, b] (Chebyshev closed
/// form: slope = secant; the interior tangency point is √(ab)).
struct Line {
  double slope;
  double intercept;
  double max_error;
};

Line minimax_reciprocal(double a, double b) {
  const double slope = (1.0 / b - 1.0 / a) / (b - a);
  const double c = std::sqrt(a * b);  // where f'(c) == slope
  const double secant_at_c = 1.0 / a + slope * (c - a);
  const double intercept = 1.0 / a - slope * a + 0.5 * (1.0 / c - secant_at_c);
  const double max_error = std::abs(0.5 * (1.0 / c - secant_at_c));
  return Line{slope, intercept, max_error};
}

}  // namespace

ReciprocalUnit::ReciprocalUnit(const Config& config) : config_{config} {
  if (config_.entries == 0 || config_.mantissa_fractional_bits < 2) {
    throw std::invalid_argument(
        "ReciprocalUnit needs entries >= 1 and mantissa bits >= 2");
  }
  const double step = 1.0 / static_cast<double>(config_.entries);
  for (std::size_t i = 0; i < config_.entries; ++i) {
    const double a = 1.0 + static_cast<double>(i) * step;
    const Line line = minimax_reciprocal(a, a + step);
    m_raw_.push_back(
        fp::Fixed::from_double(line.slope, config_.coeff_format).raw());
    q_raw_.push_back(
        fp::Fixed::from_double(line.intercept, config_.coeff_format).raw());
    // Relative error on [1,2): absolute error / min value (1/b < 1).
    worst_relative_error_ =
        std::max(worst_relative_error_, line.max_error * (a + step));
  }
}

fp::Fixed ReciprocalUnit::reciprocal(fp::Fixed v, fp::Format out) const {
  if (v.raw() <= 0) {
    throw std::domain_error("ReciprocalUnit needs a positive operand");
  }
  const int fb = v.format().fractional_bits();
  const int mfb = config_.mantissa_fractional_bits;

  // Leading-one detection: v = m · 2^e with m ∈ [1, 2).
  int position = 63;
  while (((v.raw() >> position) & 1) == 0) {
    --position;
  }
  const int exponent = position - fb;
  // Mantissa on the Q1.mfb grid (truncating shift, as a barrel shifter
  // with dropped low bits would).
  const int shift = mfb - position;
  const std::int64_t mantissa_raw =
      shift >= 0 ? v.raw() << shift : v.raw() >> -shift;
  const fp::Format mant_fmt{1, mfb};

  // Segment select within the octave.
  const std::int64_t one = std::int64_t{1} << mfb;
  auto index = static_cast<std::int64_t>(
      (static_cast<__int128>(mantissa_raw - one) *
       static_cast<__int128>(m_raw_.size())) >>
      mfb);
  index = std::clamp<std::int64_t>(
      index, 0, static_cast<std::int64_t>(m_raw_.size()) - 1);
  const auto i = static_cast<std::size_t>(index);

  // The shared multiply-add computes r = m·mant + q ∈ (0.5, 1].
  const fp::Fixed mant = fp::Fixed::from_raw(mantissa_raw, mant_fmt);
  const fp::Fixed m = fp::Fixed::from_raw(m_raw_[i], config_.coeff_format);
  const fp::Fixed q = fp::Fixed::from_raw(q_raw_[i], config_.coeff_format);
  const fp::Fixed r = mant.mul_full(m).add_full(q).requantize(
      fp::Format{1, mfb}, fp::Rounding::Truncate, fp::Overflow::Saturate);

  // 1/v = r · 2^−e, regridded into `out` (one barrel shift).
  const int total_shift = mfb - out.fractional_bits() + exponent;
  const __int128 wide =
      total_shift >= 0
          ? static_cast<__int128>(r.raw()) >> std::min(total_shift, 126)
          : static_cast<__int128>(r.raw()) << std::min(-total_shift, 126);
  const std::int64_t raw =
      wide > out.max_raw() ? out.max_raw() : static_cast<std::int64_t>(wide);
  return fp::Fixed::from_raw(std::max<std::int64_t>(raw, 0), out);
}

}  // namespace nacu::core
