#include "net/wire.hpp"

namespace nacu::net {

const char* error_code_name(ErrorCode code) noexcept {
  switch (code) {
    case ErrorCode::kNone:
      return "none";
    case ErrorCode::kOverloaded:
      return "overloaded";
    case ErrorCode::kShutdown:
      return "shutdown";
    case ErrorCode::kQuotaExceeded:
      return "quota-exceeded";
    case ErrorCode::kDeadlineExpired:
      return "deadline-expired";
    case ErrorCode::kShardFailed:
      return "shard-failed";
    case ErrorCode::kBadRequest:
      return "bad-request";
    case ErrorCode::kUnsupported:
      return "unsupported";
    case ErrorCode::kInternal:
      return "internal";
  }
  return "unknown";
}

std::vector<std::uint8_t> finish_frame(std::vector<std::uint8_t> payload) {
  std::vector<std::uint8_t> frame;
  frame.reserve(kLengthPrefixBytes + payload.size());
  const auto length = static_cast<std::uint32_t>(payload.size());
  for (int shift = 0; shift < 32; shift += 8) {
    frame.push_back(static_cast<std::uint8_t>(length >> shift));
  }
  frame.insert(frame.end(), payload.begin(), payload.end());
  return frame;
}

void encode_submit_options(ByteWriter& w, const WireSubmitOptions& options) {
  w.u8(options.priority);
  w.u8(options.deadline_ns.has_value() ? 1 : 0);
  w.u64(options.tenant);
  w.u32(options.max_retries);
  w.i64(options.deadline_ns.value_or(0));
  w.f64(options.hedge_fraction);
}

std::optional<WireSubmitOptions> decode_submit_options(ByteReader& r) {
  const auto priority = r.u8();
  const auto flags = r.u8();
  const auto tenant = r.u64();
  const auto max_retries = r.u32();
  const auto deadline_ns = r.i64();
  const auto hedge = r.f64();
  if (!priority || !flags || !tenant || !max_retries || !deadline_ns ||
      !hedge) {
    return std::nullopt;
  }
  WireSubmitOptions options;
  options.priority = *priority;
  options.tenant = *tenant;
  options.max_retries = *max_retries;
  if ((*flags & 1u) != 0) {
    options.deadline_ns = *deadline_ns;
  }
  options.hedge_fraction = *hedge;
  return options;
}

std::vector<std::uint8_t> encode_hello(int integer_bits, int fractional_bits,
                                       std::uint8_t functions) {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(Opcode::kHello));
  w.u8(kProtocolVersion);
  w.u8(static_cast<std::uint8_t>(integer_bits));
  w.u8(static_cast<std::uint8_t>(fractional_bits));
  w.u8(functions);
  return finish_frame(w.take());
}

namespace {

void encode_request_head(ByteWriter& w, Opcode opcode, std::uint64_t id) {
  w.u8(static_cast<std::uint8_t>(opcode));
  w.u64(id);
}

void encode_i64_body(ByteWriter& w, std::span<const std::int64_t> raws) {
  w.u32(static_cast<std::uint32_t>(raws.size()));
  for (const auto raw : raws) {
    w.i64(raw);
  }
}

}  // namespace

std::vector<std::uint8_t> encode_submit(std::uint64_t id,
                                        std::uint8_t function,
                                        std::span<const std::int64_t> raws,
                                        const WireSubmitOptions& options) {
  ByteWriter w;
  encode_request_head(w, Opcode::kSubmit, id);
  w.u8(function);
  encode_submit_options(w, options);
  encode_i64_body(w, raws);
  return finish_frame(w.take());
}

std::vector<std::uint8_t> encode_submit_softmax(
    std::uint64_t id, std::span<const std::int64_t> raws,
    const WireSubmitOptions& options) {
  ByteWriter w;
  encode_request_head(w, Opcode::kSubmitSoftmax, id);
  encode_submit_options(w, options);
  encode_i64_body(w, raws);
  return finish_frame(w.take());
}

std::vector<std::uint8_t> encode_submit_mlp(std::uint64_t id,
                                            std::span<const double> input,
                                            const WireSubmitOptions& options) {
  ByteWriter w;
  encode_request_head(w, Opcode::kSubmitMlp, id);
  encode_submit_options(w, options);
  w.u32(static_cast<std::uint32_t>(input.size()));
  for (const auto v : input) {
    w.f64(v);
  }
  return finish_frame(w.take());
}

std::vector<std::uint8_t> encode_result_fixed(
    std::uint64_t id, std::span<const std::int64_t> raws) {
  ByteWriter w;
  encode_request_head(w, Opcode::kResultFixed, id);
  encode_i64_body(w, raws);
  return finish_frame(w.take());
}

std::vector<std::uint8_t> encode_result_f64(std::uint64_t id,
                                            std::span<const double> values) {
  ByteWriter w;
  encode_request_head(w, Opcode::kResultF64, id);
  w.u32(static_cast<std::uint32_t>(values.size()));
  for (const auto v : values) {
    w.f64(v);
  }
  return finish_frame(w.take());
}

std::vector<std::uint8_t> encode_error(std::uint64_t id, ErrorCode code,
                                       std::string_view message) {
  // Clamp the diagnostic text to its u16 length field; codes carry the
  // semantics, the text is best-effort.
  const std::size_t n = std::min<std::size_t>(message.size(), 0xFFFF);
  ByteWriter w;
  encode_request_head(w, Opcode::kError, id);
  w.u8(static_cast<std::uint8_t>(code));
  w.u16(static_cast<std::uint16_t>(n));
  w.raw(message.data(), n);
  return finish_frame(w.take());
}

}  // namespace nacu::net
