// The NACU wire protocol: binary length-prefix framing over TCP.
//
// This is the vocabulary of the network edge (net/server.hpp accepts it,
// net/client.hpp speaks it, bench_e2e drives it): a byte-exact, versioned
// encoding of the serving layer's submit API — every SubmitOptions field
// travels on the wire — plus typed error frames that map the admission
// exceptions (OverloadedError, DeadlineExpiredError, QuotaExceededError,
// ShutdownError, ShardFailedError) onto stable one-byte codes a client can
// switch on without parsing message text.
//
// Frame layout (all integers little-endian):
//
//   ┌──────────────┬──────────────────────────────────────┐
//   │ u32 length   │ payload (length bytes)               │
//   └──────────────┴──────────────────────────────────────┘
//
// length counts the payload only, must be ≥ 1 (the opcode byte) and at
// most kMaxFrameBytes — a zero-length or oversized prefix means the byte
// stream can no longer be trusted and the connection is closed. Every
// payload starts with a one-byte opcode; every request and response
// payload follows it with the u64 request id that correlates streamed
// responses back to pipelined requests (responses stream back per
// connection in submission order; ids make the pairing explicit and
// survive protocol evolution toward out-of-order completion).
//
// Payloads:
//
//   Hello (server → client, once, immediately after accept):
//     u8  opcode = kHello
//     u8  protocol version (kProtocolVersion)
//     u8  format integer bits   ┐ the server's datapath grid — raw i64
//     u8  format fractional bits┘ values on the wire live on it
//     u8  function count (how many Function values submits may carry)
//
//   Submit / SubmitSoftmax (client → server):
//     u8  opcode = kSubmit | kSubmitSoftmax
//     u64 request id
//     u8  function (kSubmit only; BatchNacu::Function index)
//     SubmitOptions block (below)
//     u32 element count
//     i64 × count    raw fixed-point values on the server's format grid
//
//   SubmitMlp (client → server; hosted-model forward pass):
//     u8  opcode = kSubmitMlp
//     u64 request id
//     SubmitOptions block
//     u32 element count
//     f64 × count    model inputs (IEEE-754 bits as u64)
//
//   SubmitOptions block (fixed 30 bytes, always present):
//     u8  priority (Priority index)
//     u8  flags (bit 0: deadline_ns is set)
//     u64 tenant id
//     u32 max retries
//     i64 deadline_ns — RELATIVE to server receipt. Absolute
//         steady_clock points are meaningless across processes; the
//         server resolves deadline = its own serving clock + deadline_ns
//         at the moment it parses the frame.
//     f64 hedge fraction
//
//   ResultFixed / ResultF64 (server → client):
//     u8  opcode = kResultFixed | kResultF64
//     u64 request id
//     u32 element count
//     i64 × count raw values   |   f64 × count doubles
//
//   Error (server → client):
//     u8  opcode = kError
//     u64 request id (0 when the failure has no parseable request)
//     u8  error code (ErrorCode)
//     u16 message length, then that many message bytes (diagnostic only;
//         clients switch on the code)
//
// Malformed-input contract (pinned by tests/test_net.cpp): a frame whose
// *stream framing* is broken — zero/oversized length prefix, or EOF mid
// frame — kills the connection (the stream cannot be resynchronised); a
// frame whose *payload* is broken but whose id parsed — unknown opcode,
// truncated body, out-of-format raw value — is answered with a
// kBadRequest error frame and the connection keeps serving. Either way
// the server never crashes and never leaks a pending promise.
#pragma once

#include <cstdint>
#include <cstring>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace nacu::net {

inline constexpr std::uint8_t kProtocolVersion = 1;
/// Hard per-frame payload bound: large enough for any realistic batch
/// (128 Ki elements), small enough that a corrupt length prefix cannot
/// make the reader allocate unbounded memory.
inline constexpr std::size_t kMaxFrameBytes = 1u << 20;
inline constexpr std::size_t kLengthPrefixBytes = 4;

enum class Opcode : std::uint8_t {
  kSubmit = 0x01,         ///< element-wise activation batch
  kSubmitSoftmax = 0x02,  ///< one Eq. 13 softmax row
  kSubmitMlp = 0x03,      ///< hosted-model QuantizedMlp forward pass
  kHello = 0x10,          ///< server → client greeting
  kResultFixed = 0x20,    ///< raw fixed-point result vector
  kResultF64 = 0x21,      ///< double result vector (MLP probabilities)
  kError = 0x30,          ///< typed failure for one request
};

/// Stable wire codes for every way a request can fail. Codes 1–5 map the
/// serve:: exception types one-to-one; 6–8 are network-edge failures that
/// have no serving-layer equivalent.
enum class ErrorCode : std::uint8_t {
  kNone = 0,
  kOverloaded = 1,       ///< serve::OverloadedError
  kShutdown = 2,         ///< serve::ShutdownError
  kQuotaExceeded = 3,    ///< serve::QuotaExceededError
  kDeadlineExpired = 4,  ///< serve::DeadlineExpiredError
  kShardFailed = 5,      ///< serve::ShardFailedError
  kBadRequest = 6,       ///< malformed payload / value outside the format
  kUnsupported = 7,      ///< opcode needs a capability the server lacks
  kInternal = 8,         ///< anything else (exception text in the message)
};

[[nodiscard]] const char* error_code_name(ErrorCode code) noexcept;

/// SubmitOptions as they travel: the deadline is relative (nanoseconds
/// from server receipt, < 0 meaning "already expired"), everything else
/// verbatim.
struct WireSubmitOptions {
  std::uint8_t priority = 1;  ///< serve::Priority index (Normal)
  std::uint64_t tenant = 0;
  std::uint32_t max_retries = 0;
  std::optional<std::int64_t> deadline_ns;  ///< relative to server receipt
  double hedge_fraction = 0.0;
};

// -- byte-level encode/decode ------------------------------------------------

/// Append-only little-endian byte writer. Frames are built payload-first,
/// then prefixed with their length by finish_frame.
class ByteWriter {
 public:
  void u8(std::uint8_t v) { bytes_.push_back(v); }
  void u16(std::uint16_t v) { append(&v, 2); }
  void u32(std::uint32_t v) { append(&v, 4); }
  void u64(std::uint64_t v) { append(&v, 8); }
  void i64(std::int64_t v) { append(&v, 8); }
  void f64(double v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, 8);
    u64(bits);
  }
  void raw(const void* data, std::size_t n) { append(data, n); }

  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const noexcept {
    return bytes_;
  }
  [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(bytes_); }

 private:
  void append(const void* data, std::size_t n) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    bytes_.insert(bytes_.end(), p, p + n);
  }
  std::vector<std::uint8_t> bytes_;
};

/// Bounds-checked little-endian reader over one received payload. Every
/// accessor returns nullopt past the end instead of reading out of
/// bounds — a truncated body parses to nullopt, never UB.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> bytes) : bytes_{bytes} {}

  [[nodiscard]] std::optional<std::uint8_t> u8() {
    if (pos_ + 1 > bytes_.size()) {
      return std::nullopt;
    }
    return bytes_[pos_++];
  }
  [[nodiscard]] std::optional<std::uint16_t> u16() {
    return fixed<std::uint16_t>();
  }
  [[nodiscard]] std::optional<std::uint32_t> u32() {
    return fixed<std::uint32_t>();
  }
  [[nodiscard]] std::optional<std::uint64_t> u64() {
    return fixed<std::uint64_t>();
  }
  [[nodiscard]] std::optional<std::int64_t> i64() {
    return fixed<std::int64_t>();
  }
  [[nodiscard]] std::optional<double> f64() {
    const auto bits = u64();
    if (!bits) {
      return std::nullopt;
    }
    double v = 0.0;
    std::memcpy(&v, &*bits, 8);
    return v;
  }
  [[nodiscard]] std::size_t remaining() const noexcept {
    return bytes_.size() - pos_;
  }
  [[nodiscard]] bool exhausted() const noexcept { return remaining() == 0; }

 private:
  template <typename T>
  [[nodiscard]] std::optional<T> fixed() {
    if (pos_ + sizeof(T) > bytes_.size()) {
      return std::nullopt;
    }
    T v{};
    std::memcpy(&v, bytes_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }
  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

// -- frame builders (payload + length prefix in one buffer) ------------------

/// Wrap @p payload in its u32 length prefix, ready for one send call.
[[nodiscard]] std::vector<std::uint8_t> finish_frame(
    std::vector<std::uint8_t> payload);

void encode_submit_options(ByteWriter& w, const WireSubmitOptions& options);
[[nodiscard]] std::optional<WireSubmitOptions> decode_submit_options(
    ByteReader& r);

[[nodiscard]] std::vector<std::uint8_t> encode_hello(int integer_bits,
                                                     int fractional_bits,
                                                     std::uint8_t functions);
[[nodiscard]] std::vector<std::uint8_t> encode_submit(
    std::uint64_t id, std::uint8_t function,
    std::span<const std::int64_t> raws, const WireSubmitOptions& options);
[[nodiscard]] std::vector<std::uint8_t> encode_submit_softmax(
    std::uint64_t id, std::span<const std::int64_t> raws,
    const WireSubmitOptions& options);
[[nodiscard]] std::vector<std::uint8_t> encode_submit_mlp(
    std::uint64_t id, std::span<const double> input,
    const WireSubmitOptions& options);
[[nodiscard]] std::vector<std::uint8_t> encode_result_fixed(
    std::uint64_t id, std::span<const std::int64_t> raws);
[[nodiscard]] std::vector<std::uint8_t> encode_result_f64(
    std::uint64_t id, std::span<const double> values);
[[nodiscard]] std::vector<std::uint8_t> encode_error(std::uint64_t id,
                                                     ErrorCode code,
                                                     std::string_view message);

}  // namespace nacu::net
