// Thin RAII wrappers over POSIX TCP sockets — everything the net layer
// needs and nothing more: a movable owning fd, short-read/short-write
// loops that survive EINTR, a loopback listener with a poll()-based
// accept so shutdown is a flag check away, and frame-level read/write
// built on the wire.hpp length prefix.
//
// All operations are blocking; concurrency comes from the thread-per-
// connection model in net/server.cpp, not from non-blocking I/O. SIGPIPE
// is suppressed per send (MSG_NOSIGNAL) so a client that vanished mid
// response surfaces as an error return, never a process signal.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "net/wire.hpp"

namespace nacu::net {

/// Owning socket fd. Move-only; close on destruction.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) noexcept : fd_{fd} {}
  ~Socket() { close(); }
  Socket(Socket&& other) noexcept : fd_{other.fd_} { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
  [[nodiscard]] int fd() const noexcept { return fd_; }

  /// Write exactly @p n bytes; false on any unrecoverable error
  /// (peer gone, fd closed under us). Retries EINTR.
  [[nodiscard]] bool send_all(const void* data, std::size_t n) const;

  enum class Read {
    kOk,    ///< all n bytes arrived
    kEof,   ///< clean EOF before the first byte
    kTorn,  ///< EOF or error after some bytes — the stream tore mid-unit
  };
  /// Read exactly @p n bytes. Retries EINTR.
  [[nodiscard]] Read read_exact(void* data, std::size_t n) const;

  /// Half-close: no more bytes will be sent (SHUT_WR) — the peer's next
  /// read sees EOF while our own reads keep draining. Used by clients to
  /// signal "done submitting" during drain tests.
  void shutdown_send() const noexcept;
  /// Wake a reader blocked in read_exact from another thread (SHUT_RD).
  void shutdown_receive() const noexcept;

  void close() noexcept;

 private:
  int fd_ = -1;
};

/// One length-prefixed frame, read blocking. Anything but kOk ends the
/// connection; the kEof/kBroken split only feeds diagnostics (a clean
/// close is normal, a broken one counts as a protocol error).
struct FrameRead {
  enum class Status {
    kOk,      ///< payload holds one complete frame
    kEof,     ///< peer closed cleanly between frames
    kBroken,  ///< zero/oversized length prefix, or the stream tore
              ///< mid-frame — the byte stream cannot be resynchronised
  };
  Status status = Status::kEof;
  std::vector<std::uint8_t> payload;
};
[[nodiscard]] FrameRead read_frame(const Socket& socket,
                                   std::size_t max_frame_bytes =
                                       kMaxFrameBytes);

/// Write one already-framed buffer (from wire.hpp's encode_* helpers).
[[nodiscard]] bool write_frame(const Socket& socket,
                               const std::vector<std::uint8_t>& frame);

/// Loopback listener (127.0.0.1). Binds at construction — port 0 picks
/// an ephemeral port, readable via port() immediately after.
class Listener {
 public:
  explicit Listener(std::uint16_t port = 0);
  [[nodiscard]] bool valid() const noexcept { return socket_.valid(); }
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// Wait up to @p timeout_ms for a connection. nullopt on timeout or
  /// when the listener has been closed — callers poll a stop flag
  /// between calls rather than blocking forever in accept(2).
  [[nodiscard]] std::optional<Socket> accept(int timeout_ms);

  void close() noexcept { socket_.close(); }

 private:
  Socket socket_;
  std::uint16_t port_ = 0;
};

/// Blocking connect to 127.0.0.1:port. Invalid Socket on failure.
[[nodiscard]] Socket connect_loopback(std::uint16_t port);

}  // namespace nacu::net
