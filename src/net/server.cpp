#include "net/server.hpp"

#include <stdexcept>
#include <utility>

#include "obs/metrics.hpp"

namespace nacu::net {
namespace {

/// How long the accept loop blocks in poll() before re-checking the stop
/// flag — the shutdown latency of an idle listener.
constexpr int kAcceptPollMs = 50;

}  // namespace

ErrorCode classify_exception(std::exception_ptr error, std::string& message) {
  try {
    std::rethrow_exception(std::move(error));
  } catch (const serve::OverloadedError& e) {
    message = e.what();
    return ErrorCode::kOverloaded;
  } catch (const serve::ShutdownError& e) {
    message = e.what();
    return ErrorCode::kShutdown;
  } catch (const serve::QuotaExceededError& e) {
    message = e.what();
    return ErrorCode::kQuotaExceeded;
  } catch (const serve::DeadlineExpiredError& e) {
    message = e.what();
    return ErrorCode::kDeadlineExpired;
  } catch (const serve::ShardFailedError& e) {
    message = e.what();
    return ErrorCode::kShardFailed;
  } catch (const std::out_of_range& e) {
    message = e.what();
    return ErrorCode::kBadRequest;
  } catch (const std::invalid_argument& e) {
    message = e.what();
    return ErrorCode::kBadRequest;
  } catch (const std::exception& e) {
    message = e.what();
    return ErrorCode::kInternal;
  } catch (...) {
    message = "unknown error";
    return ErrorCode::kInternal;
  }
}

NetServer::NetServer(serve::InferenceServer& inference,
                     NetServerOptions options)
    : inference_{inference},
      options_{options},
      listener_{options.port} {
  if (!listener_.valid()) {
    return;  // running() stays false; port() stays 0
  }
  listening_ = true;
  port_ = listener_.port();
  acceptor_ = std::thread{[this] { accept_loop(); }};
}

NetServer::~NetServer() { shutdown(); }

NetServer::Stats NetServer::stats() const {
  Stats s;
  s.connections = connections_accepted_.load(std::memory_order_relaxed);
  s.frames_read = frames_read_.load(std::memory_order_relaxed);
  s.requests_submitted = requests_submitted_.load(std::memory_order_relaxed);
  s.responses_written = responses_written_.load(std::memory_order_relaxed);
  s.immediate_errors = immediate_errors_.load(std::memory_order_relaxed);
  s.protocol_errors = protocol_errors_.load(std::memory_order_relaxed);
  s.write_failures = write_failures_.load(std::memory_order_relaxed);
  return s;
}

void NetServer::shutdown() {
  stopping_.store(true, std::memory_order_release);
  std::call_once(shutdown_once_, [this] {
    // Order is the drain guarantee:
    //  1. Stop accepting — no new connections, no new readers.
    if (acceptor_.joinable()) {
      acceptor_.join();  // exits on its next stop-flag check
    }
    listener_.close();
    //  2. Drain the inference layer. When this returns, every future a
    //     reader pushed is ready (value or typed error) — the serving
    //     layer's own graceful-shutdown contract.
    inference_.shutdown();
    //  3. Wake readers blocked in recv; in-flight submits now throw
    //     ShutdownError, which the reader turns into error frames.
    {
      const std::lock_guard<std::mutex> lock{connections_mutex_};
      for (auto& conn : connections_) {
        conn->socket.shutdown_receive();
      }
    }
    //  4. Join everything. Writers exit only once their pending queue is
    //     empty, so every response reaches the wire before its socket
    //     closes (unless the client itself vanished — write_failures).
    reap_connections(/*all=*/true);
  });
}

void NetServer::accept_loop() {
  static obs::Counter& accepted_m = obs::counter("net.connections");
  while (!stopping_.load(std::memory_order_acquire)) {
    std::optional<Socket> conn_socket = listener_.accept(kAcceptPollMs);
    reap_connections(/*all=*/false);
    if (!conn_socket) {
      continue;
    }
    const core::NacuConfig& config = inference_.engine().config();
    if (!write_frame(*conn_socket,
                     encode_hello(config.format.integer_bits(),
                                  config.format.fractional_bits(),
                                  core::BatchNacu::kFunctionCount))) {
      continue;  // greeting failed — peer already gone
    }
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    accepted_m.add();
    auto conn = std::make_unique<Connection>();
    conn->socket = std::move(*conn_socket);
    Connection& ref = *conn;
    {
      const std::lock_guard<std::mutex> lock{connections_mutex_};
      connections_.push_back(std::move(conn));
    }
    // Threads start only after the connection is registered: shutdown's
    // SHUT_RD sweep must be able to reach every reader.
    ref.reader = std::thread{[this, &ref] { reader_loop(ref); }};
    ref.writer = std::thread{[this, &ref] { writer_loop(ref); }};
  }
}

void NetServer::reap_connections(bool all) {
  std::list<std::unique_ptr<Connection>> done;
  {
    const std::lock_guard<std::mutex> lock{connections_mutex_};
    for (auto it = connections_.begin(); it != connections_.end();) {
      if (all ||
          (*it)->live_threads.load(std::memory_order_acquire) == 0) {
        done.push_back(std::move(*it));
        it = connections_.erase(it);
      } else {
        ++it;
      }
    }
  }
  // Join outside the lock: with all=true these joins block until the
  // writer drains, and a reader might be taking the lock to push pending.
  for (auto& conn : done) {
    if (conn->reader.joinable()) {
      conn->reader.join();
    }
    if (conn->writer.joinable()) {
      conn->writer.join();
    }
  }
}

void NetServer::push_pending(Connection& conn, Pending pending) {
  {
    const std::lock_guard<std::mutex> lock{conn.mutex};
    conn.pending.push_back(std::move(pending));
  }
  conn.cv.notify_one();
}

void NetServer::reader_loop(Connection& conn) {
  static obs::Counter& frames_m = obs::counter("net.frames_read");
  for (;;) {
    FrameRead frame = read_frame(conn.socket, options_.max_frame_bytes);
    if (frame.status != FrameRead::Status::kOk) {
      if (frame.status == FrameRead::Status::kBroken) {
        protocol_errors_.fetch_add(1, std::memory_order_relaxed);
        obs::counter("net.protocol_errors").add();
      }
      break;
    }
    frames_read_.fetch_add(1, std::memory_order_relaxed);
    frames_m.add();
    handle_frame(conn, frame.payload);
  }
  // No more pushes will come from this thread; let the writer drain what
  // is queued and exit. Responses for everything already submitted still
  // go out — the client may have half-closed (SHUT_WR) and be reading.
  {
    const std::lock_guard<std::mutex> lock{conn.mutex};
    conn.reader_done = true;
  }
  conn.cv.notify_one();
  conn.live_threads.fetch_sub(1, std::memory_order_acq_rel);
}

void NetServer::handle_frame(Connection& conn,
                             const std::vector<std::uint8_t>& payload) {
  ByteReader r{std::span<const std::uint8_t>{payload}};
  const auto opcode = r.u8();   // length ≥ 1 — cannot fail
  const auto id = r.u64();
  if (!id) {
    // Too short to even carry the id that an error frame would echo.
    immediate_errors_.fetch_add(1, std::memory_order_relaxed);
    push_pending(conn, PendingError{0, ErrorCode::kBadRequest,
                                    "frame too short for request id"});
    return;
  }
  const auto bad = [&](std::string message) {
    immediate_errors_.fetch_add(1, std::memory_order_relaxed);
    push_pending(conn,
                 PendingError{*id, ErrorCode::kBadRequest, std::move(message)});
  };

  std::uint8_t function = 0;
  const auto op = static_cast<Opcode>(*opcode);
  if (op == Opcode::kSubmit) {
    const auto f = r.u8();
    if (!f) {
      bad("truncated submit: missing function");
      return;
    }
    if (*f >= core::BatchNacu::kFunctionCount) {
      bad("unknown function index");
      return;
    }
    function = *f;
  }
  const auto wire_options = decode_submit_options(r);
  if (!wire_options) {
    bad("truncated submit options");
    return;
  }
  if (wire_options->priority >= serve::kPriorityCount) {
    bad("unknown priority class");
    return;
  }
  const auto count = r.u32();
  if (!count || r.remaining() != std::size_t{*count} * 8) {
    bad("element count does not match frame length");
    return;
  }

  serve::SubmitOptions submit_options;
  submit_options.priority = static_cast<serve::Priority>(wire_options->priority);
  submit_options.tenant = wire_options->tenant;
  submit_options.max_retries = wire_options->max_retries;
  submit_options.hedge_fraction = wire_options->hedge_fraction;
  if (wire_options->deadline_ns) {
    // Relative on the wire, absolute on the serving clock from here on.
    submit_options.deadline =
        inference_.now() + std::chrono::nanoseconds{*wire_options->deadline_ns};
  }

  try {
    switch (op) {
      case Opcode::kSubmit:
      case Opcode::kSubmitSoftmax: {
        const fp::Format format = inference_.engine().config().format;
        std::vector<fp::Fixed> input;
        input.reserve(*count);
        for (std::uint32_t i = 0; i < *count; ++i) {
          // from_raw throws out_of_range on a raw outside the format —
          // classified below as kBadRequest, connection keeps serving.
          input.push_back(fp::Fixed::from_raw(*r.i64(), format));
        }
        auto future =
            op == Opcode::kSubmit
                ? inference_.submit(
                      static_cast<core::BatchNacu::Function>(function),
                      std::move(input), submit_options)
                : inference_.submit_softmax(std::move(input), submit_options);
        requests_submitted_.fetch_add(1, std::memory_order_relaxed);
        push_pending(conn, PendingFixed{*id, std::move(future)});
        return;
      }
      case Opcode::kSubmitMlp: {
        if (options_.mlp == nullptr) {
          immediate_errors_.fetch_add(1, std::memory_order_relaxed);
          push_pending(conn, PendingError{*id, ErrorCode::kUnsupported,
                                          "no MLP model hosted"});
          return;
        }
        std::vector<double> input;
        input.reserve(*count);
        for (std::uint32_t i = 0; i < *count; ++i) {
          input.push_back(*r.f64());
        }
        auto future =
            inference_.submit_mlp(*options_.mlp, std::move(input),
                                  submit_options);
        requests_submitted_.fetch_add(1, std::memory_order_relaxed);
        push_pending(conn, PendingF64{*id, std::move(future)});
        return;
      }
      default:
        bad("unknown opcode");
        return;
    }
  } catch (...) {
    // Admission rejections (and bad raws) — typed error frame instead of
    // a future; the request was never accepted, nothing to drain.
    std::string message;
    const ErrorCode code = classify_exception(std::current_exception(),
                                              message);
    immediate_errors_.fetch_add(1, std::memory_order_relaxed);
    push_pending(conn, PendingError{*id, code, std::move(message)});
  }
}

void NetServer::writer_loop(Connection& conn) {
  static obs::Counter& responses_m = obs::counter("net.responses_written");
  std::vector<std::int64_t> raws;
  for (;;) {
    Pending pending = [&]() -> Pending {
      std::unique_lock<std::mutex> lock{conn.mutex};
      conn.cv.wait(lock,
                   [&] { return !conn.pending.empty() || conn.reader_done; });
      if (conn.pending.empty()) {
        return PendingError{0, ErrorCode::kNone, {}};  // sentinel: done
      }
      Pending p = std::move(conn.pending.front());
      conn.pending.pop_front();
      return p;
    }();
    if (auto* sentinel = std::get_if<PendingError>(&pending);
        sentinel != nullptr && sentinel->code == ErrorCode::kNone) {
      break;
    }
    std::vector<std::uint8_t> frame;
    bool answers_future = false;
    if (auto* fixed = std::get_if<PendingFixed>(&pending)) {
      answers_future = true;
      try {
        const std::vector<fp::Fixed> result = fixed->future.get();
        raws.clear();
        raws.reserve(result.size());
        for (const fp::Fixed& v : result) {
          raws.push_back(v.raw());
        }
        frame = encode_result_fixed(fixed->id, raws);
      } catch (...) {
        std::string message;
        const ErrorCode code =
            classify_exception(std::current_exception(), message);
        frame = encode_error(fixed->id, code, message);
      }
    } else if (auto* dbl = std::get_if<PendingF64>(&pending)) {
      answers_future = true;
      try {
        frame = encode_result_f64(dbl->id, dbl->future.get());
      } catch (...) {
        std::string message;
        const ErrorCode code =
            classify_exception(std::current_exception(), message);
        frame = encode_error(dbl->id, code, message);
      }
    } else {
      auto& error = std::get<PendingError>(pending);
      frame = encode_error(error.id, error.code, error.message);
    }
    // write_failed is writer-private state; no lock — and no lock held
    // across the (potentially blocking) send.
    bool wrote = false;
    if (!conn.write_failed) {
      wrote = write_frame(conn.socket, frame);
      if (!wrote) {
        conn.write_failed = true;
        // Wake the reader: a peer that cannot receive responses will
        // not be served further.
        conn.socket.shutdown_receive();
      }
    }
    if (wrote) {
      if (answers_future) {
        responses_written_.fetch_add(1, std::memory_order_relaxed);
      }
      responses_m.add();
    } else {
      write_failures_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  conn.live_threads.fetch_sub(1, std::memory_order_acq_rel);
}

}  // namespace nacu::net
