#include "net/socket.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace nacu::net {

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

bool Socket::send_all(const void* data, std::size_t n) const {
  const auto* p = static_cast<const std::uint8_t*>(data);
  while (n > 0) {
    const ssize_t sent = ::send(fd_, p, n, MSG_NOSIGNAL);
    if (sent < 0) {
      if (errno == EINTR) {
        continue;
      }
      return false;
    }
    if (sent == 0) {
      return false;
    }
    p += sent;
    n -= static_cast<std::size_t>(sent);
  }
  return true;
}

Socket::Read Socket::read_exact(void* data, std::size_t n) const {
  auto* p = static_cast<std::uint8_t*>(data);
  const std::size_t want = n;
  while (n > 0) {
    const ssize_t got = ::recv(fd_, p, n, 0);
    if (got < 0) {
      if (errno == EINTR) {
        continue;
      }
      return n == want ? Read::kEof : Read::kTorn;
    }
    if (got == 0) {
      return n == want ? Read::kEof : Read::kTorn;
    }
    p += got;
    n -= static_cast<std::size_t>(got);
  }
  return Read::kOk;
}

void Socket::shutdown_send() const noexcept {
  if (fd_ >= 0) {
    ::shutdown(fd_, SHUT_WR);
  }
}

void Socket::shutdown_receive() const noexcept {
  if (fd_ >= 0) {
    ::shutdown(fd_, SHUT_RD);
  }
}

void Socket::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

FrameRead read_frame(const Socket& socket, std::size_t max_frame_bytes) {
  FrameRead result;
  std::uint8_t prefix[kLengthPrefixBytes];
  switch (socket.read_exact(prefix, sizeof prefix)) {
    case Socket::Read::kOk:
      break;
    case Socket::Read::kEof:
      result.status = FrameRead::Status::kEof;
      return result;
    case Socket::Read::kTorn:
      result.status = FrameRead::Status::kBroken;
      return result;
  }
  std::uint32_t length = 0;
  for (int i = 0; i < 4; ++i) {
    length |= static_cast<std::uint32_t>(prefix[i]) << (8 * i);
  }
  if (length == 0 || length > max_frame_bytes) {
    result.status = FrameRead::Status::kBroken;
    return result;
  }
  result.payload.resize(length);
  if (socket.read_exact(result.payload.data(), result.payload.size()) !=
      Socket::Read::kOk) {
    result.status = FrameRead::Status::kBroken;
    result.payload.clear();
    return result;
  }
  result.status = FrameRead::Status::kOk;
  return result;
}

bool write_frame(const Socket& socket,
                 const std::vector<std::uint8_t>& frame) {
  return socket.send_all(frame.data(), frame.size());
}

Listener::Listener(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return;
  }
  Socket sock{fd};
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    return;
  }
  if (::listen(fd, SOMAXCONN) != 0) {
    return;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    return;
  }
  port_ = ntohs(bound.sin_port);
  socket_ = std::move(sock);
}

std::optional<Socket> Listener::accept(int timeout_ms) {
  if (!socket_.valid()) {
    return std::nullopt;
  }
  pollfd pfd{socket_.fd(), POLLIN, 0};
  const int ready = ::poll(&pfd, 1, timeout_ms);
  if (ready <= 0) {
    return std::nullopt;
  }
  const int fd = ::accept(socket_.fd(), nullptr, nullptr);
  if (fd < 0) {
    return std::nullopt;
  }
  Socket conn{fd};
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return conn;
}

Socket connect_loopback(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Socket{};
  }
  Socket sock{fd};
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr);
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    return Socket{};
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return sock;
}

}  // namespace nacu::net
