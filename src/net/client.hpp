// Client side of the NACU wire protocol (wire.hpp) over loopback TCP.
//
// A Client is one connection: connect, read the server's Hello (which
// pins the datapath fixed-point format raw values must live on), then
// pipeline requests with the send_* calls and collect responses with
// read_response() — responses arrive in submission order, each tagged
// with the id its send_* returned. call() wraps one request/response
// round trip for convenience; the load generator (bench_e2e) uses the
// split API to keep many requests in flight per connection.
//
// Not internally synchronised: one Client per thread (the bench's model),
// or external locking. close_send() half-closes the socket — the server
// reads EOF, drains every response still owed, then closes; this is how
// a closed-loop client participates in a graceful drain.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/batch_nacu.hpp"
#include "fixedpoint/fixed.hpp"
#include "net/socket.hpp"
#include "net/wire.hpp"

namespace nacu::net {

class Client {
 public:
  /// Connect to 127.0.0.1:@p port and read the Hello. valid() is false
  /// (and every other call a no-op) when either step failed.
  explicit Client(std::uint16_t port);

  [[nodiscard]] bool valid() const noexcept { return valid_; }
  /// The server's datapath format, from the Hello.
  [[nodiscard]] fp::Format format() const noexcept { return format_; }

  /// Pipeline one request; returns its id (sequential from 1), or 0 when
  /// the send failed (connection gone).
  [[nodiscard]] std::uint64_t send_submit(core::BatchNacu::Function function,
                                          std::span<const fp::Fixed> input,
                                          const WireSubmitOptions& options = {});
  [[nodiscard]] std::uint64_t send_softmax(
      std::span<const fp::Fixed> logits,
      const WireSubmitOptions& options = {});
  [[nodiscard]] std::uint64_t send_mlp(std::span<const double> input,
                                       const WireSubmitOptions& options = {});

  struct Response {
    std::uint64_t id = 0;
    ErrorCode error = ErrorCode::kNone;  ///< kNone = success
    std::string message;                 ///< diagnostic text on error
    std::vector<fp::Fixed> values;       ///< ResultFixed payload
    std::vector<double> doubles;         ///< ResultF64 payload
    [[nodiscard]] bool ok() const noexcept { return error == ErrorCode::kNone; }
  };
  /// Next response off the wire, blocking; nullopt once the server has
  /// closed (or the stream broke).
  [[nodiscard]] std::optional<Response> read_response();

  /// One synchronous activation round trip; throws std::runtime_error on
  /// any failure (tests use it where a typed error is itself the bug).
  [[nodiscard]] std::vector<fp::Fixed> call(core::BatchNacu::Function function,
                                            std::span<const fp::Fixed> input);

  /// Half-close: tells the server this client is done submitting, while
  /// responses still owed keep arriving (read_response until nullopt).
  void close_send() { socket_.shutdown_send(); }
  void close() { socket_.close(); }

  /// Escape hatch for protocol-robustness tests: the raw socket.
  [[nodiscard]] Socket& socket() noexcept { return socket_; }

 private:
  [[nodiscard]] std::uint64_t send(std::vector<std::uint8_t> frame);

  Socket socket_;
  bool valid_ = false;
  fp::Format format_{4, 11};
  std::uint64_t next_id_ = 1;
};

}  // namespace nacu::net
