// The network edge: a TCP front-end over serve::InferenceServer.
//
// Eight PRs of serving machinery end at std::future; this layer turns it
// into an actual server. One accept-loop thread hands each connection a
// reader thread and a writer thread:
//
//   reader: read frame → decode (wire.hpp) → InferenceServer::submit /
//           submit_softmax / submit_mlp → push the future onto the
//           connection's pending queue. Admission rejections (Overloaded,
//           Quota, Deadline, Shutdown — thrown from submit) become typed
//           error frames without ever entering the pending queue's future
//           path; malformed-but-framed payloads become kBadRequest frames
//           and the connection keeps serving.
//   writer: pop pending responses in submission order, future.get() each,
//           write a ResultFixed/ResultF64 frame — or map the exception
//           (DeadlineExpiredError, ShardFailedError, per-request input
//           errors) onto an Error frame. Responses therefore stream back
//           per connection in exactly the order requests were submitted,
//           while the inference layer batches, steals, retries, and hedges
//           them across shards in any order it likes.
//
// Graceful drain rides the InferenceServer::shutdown() contract:
// NetServer::shutdown() stops accepting, shuts down the inference layer
// (every accepted future becomes ready — the drain guarantee), then
// wakes each reader (SHUT_RD), lets it exit, and joins each writer only
// after the pending queue is empty — so every request that reached the
// inference layer is answered on the wire before its socket closes.
// The closed-loop gate in bench_e2e asserts exactly this:
// stats().requests_submitted == stats().responses_written after a
// shutdown under steady load, with clients holding their sockets open.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <thread>
#include <condition_variable>
#include <variant>

#include "net/socket.hpp"
#include "net/wire.hpp"
#include "serve/server.hpp"

namespace nacu::net {

struct NetServerOptions {
  /// 0 = ephemeral; read the bound port back via NetServer::port().
  std::uint16_t port = 0;
  /// Per-frame payload bound enforced on every connection.
  std::size_t max_frame_bytes = kMaxFrameBytes;
  /// Model served by kSubmitMlp frames (borrowed; keep alive for the
  /// server's lifetime). nullptr answers kSubmitMlp with kUnsupported.
  const nn::QuantizedMlp* mlp = nullptr;
};

/// Map a caught exception from submit / future.get() onto its wire code.
/// serve:: error types map one-to-one; std::out_of_range /
/// std::invalid_argument (a raw outside the datapath format) map to
/// kBadRequest; anything else to kInternal.
[[nodiscard]] ErrorCode classify_exception(std::exception_ptr error,
                                           std::string& message);

class NetServer {
 public:
  /// Binds and starts serving immediately. @p inference is borrowed and
  /// must outlive this object; its shutdown() is invoked (once) by ours.
  explicit NetServer(serve::InferenceServer& inference,
                     NetServerOptions options = {});
  ~NetServer();  ///< shutdown(): drain every pending response, then join.

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  [[nodiscard]] bool running() const noexcept {
    return listening_ && !stopping_.load(std::memory_order_acquire);
  }
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// Stop accepting, drain the inference layer, flush every pending
  /// response frame onto its socket, join everything. Idempotent.
  void shutdown();

  /// Always-on per-server tallies (mirroring InferenceServer::Counters'
  /// role): the drain guarantee is the invariant
  /// requests_submitted == responses_written after shutdown() when no
  /// client vanished mid-response (write_failures == 0).
  struct Stats {
    std::uint64_t connections = 0;      ///< accepted sockets
    std::uint64_t frames_read = 0;      ///< well-framed payloads received
    std::uint64_t requests_submitted = 0;  ///< futures obtained from serve
    std::uint64_t responses_written = 0;   ///< result/error frames answering
                                           ///< a submitted future
    std::uint64_t immediate_errors = 0;  ///< error frames for requests that
                                         ///< never produced a future
    std::uint64_t protocol_errors = 0;  ///< connections killed by broken
                                        ///< framing (bad length prefix /
                                        ///< EOF mid-frame)
    std::uint64_t write_failures = 0;  ///< frames lost to a vanished client
  };
  [[nodiscard]] Stats stats() const;

 private:
  /// One response owed to the client, in submission order. Futures are
  /// resolved by the writer thread (get() blocks until the inference
  /// layer fulfils the promise — shutdown's drain guarantees it will).
  struct PendingFixed {
    std::uint64_t id;
    std::future<std::vector<fp::Fixed>> future;
  };
  struct PendingF64 {
    std::uint64_t id;
    std::future<std::vector<double>> future;
  };
  struct PendingError {
    std::uint64_t id;
    ErrorCode code;
    std::string message;
  };
  using Pending = std::variant<PendingFixed, PendingF64, PendingError>;

  struct Connection {
    Socket socket;
    std::thread reader;
    std::thread writer;
    std::mutex mutex;
    std::condition_variable cv;
    std::deque<Pending> pending;  ///< FIFO — submission order
    bool reader_done = false;     ///< no more pending will be pushed
    bool write_failed = false;    ///< client gone; drop instead of send
    std::atomic<int> live_threads{2};  ///< reapable at 0
  };

  void accept_loop();
  void reader_loop(Connection& conn);
  void writer_loop(Connection& conn);
  /// Decode one framed payload and act on it. False only when the
  /// connection must close (unparseable beyond recovery is *not* such a
  /// case — framing intact means the stream is still synchronised).
  void handle_frame(Connection& conn, const std::vector<std::uint8_t>& payload);
  void push_pending(Connection& conn, Pending pending);
  /// Join and erase connections whose threads have both exited.
  void reap_connections(bool all);

  serve::InferenceServer& inference_;
  NetServerOptions options_;
  Listener listener_;
  bool listening_ = false;
  std::uint16_t port_ = 0;

  std::thread acceptor_;
  std::mutex connections_mutex_;
  std::list<std::unique_ptr<Connection>> connections_;

  std::atomic<bool> stopping_{false};
  std::once_flag shutdown_once_;

  std::atomic<std::uint64_t> connections_accepted_{0};
  std::atomic<std::uint64_t> frames_read_{0};
  std::atomic<std::uint64_t> requests_submitted_{0};
  std::atomic<std::uint64_t> responses_written_{0};
  std::atomic<std::uint64_t> immediate_errors_{0};
  std::atomic<std::uint64_t> protocol_errors_{0};
  std::atomic<std::uint64_t> write_failures_{0};
};

}  // namespace nacu::net
