#include "net/client.hpp"

#include <stdexcept>
#include <utility>

namespace nacu::net {

Client::Client(std::uint16_t port) : socket_{connect_loopback(port)} {
  if (!socket_.valid()) {
    return;
  }
  FrameRead hello = read_frame(socket_);
  if (hello.status != FrameRead::Status::kOk) {
    return;
  }
  ByteReader r{std::span<const std::uint8_t>{hello.payload}};
  const auto opcode = r.u8();
  const auto version = r.u8();
  const auto ib = r.u8();
  const auto fb = r.u8();
  if (!opcode || static_cast<Opcode>(*opcode) != Opcode::kHello || !version ||
      *version != kProtocolVersion || !ib || !fb) {
    return;
  }
  format_ = fp::Format{*ib, *fb};
  valid_ = true;
}

std::uint64_t Client::send(std::vector<std::uint8_t> frame) {
  if (!valid_ || !write_frame(socket_, frame)) {
    return 0;
  }
  return next_id_++;
}

std::uint64_t Client::send_submit(core::BatchNacu::Function function,
                                  std::span<const fp::Fixed> input,
                                  const WireSubmitOptions& options) {
  std::vector<std::int64_t> raws;
  raws.reserve(input.size());
  for (const fp::Fixed& v : input) {
    raws.push_back(v.raw());
  }
  return send(encode_submit(next_id_, static_cast<std::uint8_t>(function),
                            raws, options));
}

std::uint64_t Client::send_softmax(std::span<const fp::Fixed> logits,
                                   const WireSubmitOptions& options) {
  std::vector<std::int64_t> raws;
  raws.reserve(logits.size());
  for (const fp::Fixed& v : logits) {
    raws.push_back(v.raw());
  }
  return send(encode_submit_softmax(next_id_, raws, options));
}

std::uint64_t Client::send_mlp(std::span<const double> input,
                               const WireSubmitOptions& options) {
  return send(encode_submit_mlp(next_id_, input, options));
}

std::optional<Client::Response> Client::read_response() {
  if (!valid_) {
    return std::nullopt;
  }
  FrameRead frame = read_frame(socket_);
  if (frame.status != FrameRead::Status::kOk) {
    return std::nullopt;
  }
  ByteReader r{std::span<const std::uint8_t>{frame.payload}};
  const auto opcode = r.u8();
  const auto id = r.u64();
  if (!opcode || !id) {
    return std::nullopt;
  }
  Response response;
  response.id = *id;
  switch (static_cast<Opcode>(*opcode)) {
    case Opcode::kResultFixed: {
      const auto count = r.u32();
      if (!count) {
        return std::nullopt;
      }
      response.values.reserve(*count);
      for (std::uint32_t i = 0; i < *count; ++i) {
        const auto raw = r.i64();
        if (!raw) {
          return std::nullopt;
        }
        response.values.push_back(fp::Fixed::from_raw(*raw, format_));
      }
      return response;
    }
    case Opcode::kResultF64: {
      const auto count = r.u32();
      if (!count) {
        return std::nullopt;
      }
      response.doubles.reserve(*count);
      for (std::uint32_t i = 0; i < *count; ++i) {
        const auto v = r.f64();
        if (!v) {
          return std::nullopt;
        }
        response.doubles.push_back(*v);
      }
      return response;
    }
    case Opcode::kError: {
      const auto code = r.u8();
      const auto length = r.u16();
      if (!code || !length || r.remaining() < *length) {
        return std::nullopt;
      }
      response.error = static_cast<ErrorCode>(*code);
      response.message.assign(
          reinterpret_cast<const char*>(frame.payload.data() +
                                        (frame.payload.size() - r.remaining())),
          *length);
      return response;
    }
    default:
      return std::nullopt;
  }
}

std::vector<fp::Fixed> Client::call(core::BatchNacu::Function function,
                                    std::span<const fp::Fixed> input) {
  const std::uint64_t id = send_submit(function, input);
  if (id == 0) {
    throw std::runtime_error{"net: send failed"};
  }
  std::optional<Response> response = read_response();
  if (!response || response->id != id) {
    throw std::runtime_error{"net: connection closed mid-call"};
  }
  if (!response->ok()) {
    throw std::runtime_error{std::string{"net: "} +
                             error_code_name(response->error) + ": " +
                             response->message};
  }
  return std::move(response->values);
}

}  // namespace nacu::net
