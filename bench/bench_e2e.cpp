// End-to-end serving benchmark: the full network edge, measured from the
// client side of a real TCP connection.
//
// bench_serving.cpp measures the in-process serving layer (submit() to
// future); this bench adds everything a deployment actually pays for —
// frame encode/decode, kernel socket buffers, the per-connection reader
// and writer threads, response ordering — by driving src/net/ NetServer
// over loopback with the src/net/ Client. Three load shapes plus one
// correctness gate:
//
//   steady  — closed loop: N clients each keep a fixed window of
//             requests in flight and measure per-request round-trip
//             latency from their own clock. Throughput is the classic
//             saturating closed-loop number.
//   burst   — open loop: requests are sent on a precomputed schedule
//             (tight bursts every interval) and latency is measured from
//             the *scheduled* send instant, not the actual one, so a
//             stalled sender cannot hide queueing delay
//             (coordinated-omission aware).
//   diurnal — open loop with a sinusoidal arrival-rate ramp across the
//             run: the smallest honest stand-in for a day of traffic
//             against an autoscaling-free fixed shard count.
//   drain   — closed-loop load with a mid-flight NetServer::shutdown().
//             This is a GATE, not a measurement: the bench exits 1
//             unless every request the server accepted was answered on
//             the wire (stats().requests_submitted ==
//             stats().responses_written with zero write failures), and
//             emits answered_frac (deterministically 1.0) so CI compares
//             it structurally and exactly.
//
//   ./bench_e2e [--trials N] [--quick]   # --quick: CI smoke sizing
//
// Writes BENCH_e2e.json (schema nacu-bench-e2e-v1): one record per
// (shape, clients) cell — requests/s and client-observed p50/p99 ns —
// plus the drain gate record. Machine-dependent metrics are --ignore'd
// by CI but required structurally via bench_compare.py --require-metric
// (see docs/BENCHMARKS.md).
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <string_view>
#include <thread>
#include <vector>

#include "bench_json.hpp"
#include "core/batch_nacu.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "serve/server.hpp"

namespace {

using namespace nacu;
using Function = core::BatchNacu::Function;
using Clock = std::chrono::steady_clock;

constexpr std::size_t kElemsPerRequest = 8;
constexpr std::size_t kWindow = 16;  ///< closed-loop in-flight per client

/// The serving configuration under the edge: the sharded adaptive-batching
/// mode bench_serving.cpp showed winning, sized so the edge (not the
/// datapath) is what this bench exercises.
serve::ServerOptions serving_options() {
  serve::ServerOptions options;
  options.shards = 2;
  options.work_stealing = true;
  options.batcher.max_batch = 256;
  options.batcher.max_wait = std::chrono::microseconds{50};
  options.batcher.queue_capacity = 1 << 16;
  return options;
}

std::vector<fp::Fixed> make_input(const fp::Format& fmt) {
  std::vector<fp::Fixed> input;
  input.reserve(kElemsPerRequest);
  for (std::size_t i = 0; i < kElemsPerRequest; ++i) {
    const std::int64_t raw =
        fmt.min_raw() +
        static_cast<std::int64_t>(
            (i * 1031) %
            static_cast<std::size_t>(fmt.max_raw() - fmt.min_raw() + 1));
    input.push_back(fp::Fixed::from_raw(raw, fmt));
  }
  return input;
}

struct Cell {
  double requests_per_s = 0.0;
  std::uint64_t p50_ns = 0;
  std::uint64_t p99_ns = 0;
};

Cell summarize(std::vector<std::uint64_t>& latencies, double secs) {
  Cell cell;
  if (latencies.empty() || secs <= 0.0) {
    return cell;
  }
  std::sort(latencies.begin(), latencies.end());
  const auto at = [&](double q) {
    const auto idx = static_cast<std::size_t>(
        q * static_cast<double>(latencies.size()));
    return latencies[std::min(idx, latencies.size() - 1)];
  };
  cell.requests_per_s = static_cast<double>(latencies.size()) / secs;
  cell.p50_ns = at(0.50);
  cell.p99_ns = at(0.99);
  return cell;
}

// --- steady: closed loop -------------------------------------------------

/// N clients, each a windowed closed loop over its own connection:
/// keep kWindow requests pipelined, time each send→response round trip.
Cell run_steady(std::uint16_t port, std::size_t clients,
                std::size_t requests_per_client, const fp::Format& fmt) {
  const std::vector<fp::Fixed> input = make_input(fmt);
  std::vector<std::vector<std::uint64_t>> latencies(clients);
  std::vector<std::thread> threads;
  threads.reserve(clients);
  const auto start = Clock::now();
  for (std::size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      net::Client client{port};
      if (!client.valid()) {
        return;
      }
      latencies[c].reserve(requests_per_client);
      std::deque<Clock::time_point> sent_at;
      std::size_t sent = 0;
      std::size_t answered = 0;
      while (answered < requests_per_client) {
        while (sent < requests_per_client && sent_at.size() < kWindow) {
          const auto f = static_cast<Function>((c + sent) % 3);
          if (client.send_submit(f, input) == 0) {
            return;  // connection gone; this client contributes nothing
          }
          sent_at.push_back(Clock::now());
          ++sent;
        }
        const auto response = client.read_response();
        if (!response.has_value() || !response->ok()) {
          return;
        }
        latencies[c].push_back(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                Clock::now() - sent_at.front())
                .count()));
        sent_at.pop_front();
        ++answered;
      }
      client.close_send();
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  const double secs =
      std::chrono::duration<double>(Clock::now() - start).count();
  std::vector<std::uint64_t> all;
  for (auto& v : latencies) {
    all.insert(all.end(), v.begin(), v.end());
  }
  return summarize(all, secs);
}

// --- burst / diurnal: open loop ------------------------------------------

/// Open-loop run over a precomputed per-client arrival schedule (ns from
/// start). Each client splits into a sender thread (fires requests at
/// their scheduled instants — or as soon after as the socket allows) and
/// a reader thread; the two halves of the Client touch disjoint state
/// (send path / receive path), which is the one concurrent use the class
/// supports. Latency is measured from the SCHEDULED instant, so send-side
/// stalls count as latency instead of silently thinning the load
/// (coordinated omission).
Cell run_open(std::uint16_t port, std::size_t clients,
              const std::vector<std::int64_t>& schedule_ns,
              const fp::Format& fmt) {
  const std::vector<fp::Fixed> input = make_input(fmt);
  std::vector<std::vector<std::uint64_t>> latencies(clients);
  std::vector<std::thread> threads;
  threads.reserve(clients);
  const auto start = Clock::now();
  for (std::size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      net::Client client{port};
      if (!client.valid()) {
        return;
      }
      std::thread sender{[&] {
        for (std::size_t i = 0; i < schedule_ns.size(); ++i) {
          std::this_thread::sleep_until(
              start + std::chrono::nanoseconds{schedule_ns[i]});
          const auto f = static_cast<Function>((c + i) % 3);
          if (client.send_submit(f, input) == 0) {
            return;
          }
        }
      }};
      latencies[c].reserve(schedule_ns.size());
      for (std::size_t i = 0; i < schedule_ns.size(); ++i) {
        const auto response = client.read_response();
        if (!response.has_value() || !response->ok()) {
          break;
        }
        const auto intended =
            start + std::chrono::nanoseconds{schedule_ns[i]};
        latencies[c].push_back(static_cast<std::uint64_t>(std::max<
            std::int64_t>(
            0, std::chrono::duration_cast<std::chrono::nanoseconds>(
                   Clock::now() - intended)
                   .count())));
      }
      sender.join();
      client.close_send();
      while (client.read_response().has_value()) {
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  const double secs =
      std::chrono::duration<double>(Clock::now() - start).count();
  std::vector<std::uint64_t> all;
  for (auto& v : latencies) {
    all.insert(all.end(), v.begin(), v.end());
  }
  return summarize(all, secs);
}

/// Bursts of @p burst requests back to back every @p interval.
std::vector<std::int64_t> burst_schedule(std::size_t total, std::size_t burst,
                                         std::chrono::nanoseconds interval) {
  std::vector<std::int64_t> schedule;
  schedule.reserve(total);
  std::int64_t t = 0;
  while (schedule.size() < total) {
    for (std::size_t k = 0; k < burst && schedule.size() < total; ++k) {
      schedule.push_back(t);
    }
    t += interval.count();
  }
  return schedule;
}

/// Sinusoidal rate ramp: rate(t) = base * (1 + 0.8 sin(2πt/period)), one
/// full period across the run — the trough-to-peak-to-trough "day".
std::vector<std::int64_t> diurnal_schedule(std::size_t total,
                                           double base_rate_per_s,
                                           std::chrono::nanoseconds period) {
  std::vector<std::int64_t> schedule;
  schedule.reserve(total);
  double t_s = 0.0;
  const double period_s =
      std::chrono::duration<double>(period).count();
  for (std::size_t i = 0; i < total; ++i) {
    schedule.push_back(static_cast<std::int64_t>(t_s * 1e9));
    const double rate =
        base_rate_per_s *
        (1.0 + 0.8 * std::sin(2.0 * M_PI * t_s / period_s));
    t_s += 1.0 / std::max(rate, 1.0);
  }
  return schedule;
}

// --- drain: the correctness gate ------------------------------------------

/// Closed-loop load with a shutdown fired mid-flight. Returns true when
/// the drain guarantee held ON THE WIRE: the server wrote a response for
/// every request it accepted (clients keep their sockets open until EOF,
/// so nothing can be excused as a write failure).
bool run_drain_gate(const core::NacuConfig& config, std::size_t clients,
                    benchjson::Writer& writer) {
  serve::InferenceServer inference{config, serving_options()};
  net::NetServer server{inference};
  const std::vector<fp::Fixed> input = make_input(config.format);
  std::vector<std::thread> threads;
  threads.reserve(clients);
  std::vector<std::size_t> answered(clients, 0);
  for (std::size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      net::Client client{server.port()};
      if (!client.valid()) {
        return;
      }
      std::size_t in_flight = 0;
      bool sending = true;
      while (true) {
        while (sending && in_flight < kWindow) {
          if (client.send_submit(static_cast<Function>(in_flight % 3),
                                 input) == 0) {
            sending = false;
            break;
          }
          ++in_flight;
        }
        const auto response = client.read_response();
        if (!response.has_value()) {
          break;  // EOF: the server drained us and closed
        }
        ++answered[c];
        if (in_flight > 0) {
          --in_flight;
        }
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds{200});
  server.shutdown();
  for (std::thread& t : threads) {
    t.join();
  }
  const net::NetServer::Stats stats = server.stats();
  const serve::InferenceServer::Counters counters = inference.counters();
  const bool wire_drained = stats.write_failures == 0 &&
                            stats.requests_submitted == stats.responses_written;
  const bool serve_drained = counters.accepted == counters.completed;
  const double answered_frac =
      stats.requests_submitted == 0
          ? 0.0
          : static_cast<double>(stats.responses_written) /
                static_cast<double>(stats.requests_submitted);
  std::printf(
      "  drain   %4zu clients: accepted %llu, answered on wire %llu "
      "(answered_frac %.3f) -> %s\n",
      clients, static_cast<unsigned long long>(stats.requests_submitted),
      static_cast<unsigned long long>(stats.responses_written), answered_frac,
      wire_drained && serve_drained ? "OK" : "FAILED");
  writer.add(benchjson::Record{}
                 .add("bench", "e2e_drain")
                 .add("clients", clients)
                 .add("answered_frac", answered_frac));
  return wire_drained && serve_drained && stats.requests_submitted > 0;
}

void add_cell(benchjson::Writer& writer, const char* shape,
              std::size_t clients, const Cell& cell) {
  writer.add(benchjson::Record{}
                 .add("bench", std::string{"e2e_"} + shape)
                 .add("clients", clients)
                 .add("requests_per_s", cell.requests_per_s)
                 .add("p50_ns", static_cast<std::size_t>(cell.p50_ns))
                 .add("p99_ns", static_cast<std::size_t>(cell.p99_ns)));
}

void print_cell(const char* shape, std::size_t clients, const Cell& cell) {
  std::printf("  %-7s %4zu clients: %9.0f req/s   p50 %8lluns   p99 %8lluns\n",
              shape, clients, cell.requests_per_s,
              static_cast<unsigned long long>(cell.p50_ns),
              static_cast<unsigned long long>(cell.p99_ns));
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t trials = 3;
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg{argv[i]};
    if (arg == "--trials" && i + 1 < argc) {
      const long parsed = std::strtol(argv[++i], nullptr, 10);
      if (parsed > 0) {
        trials = static_cast<std::size_t>(parsed);
      }
    } else if (arg == "--quick") {
      quick = true;
    }
  }
  const core::NacuConfig config = core::config_for_bits(16);
  benchjson::Writer writer{"nacu-bench-e2e-v1"};
  std::printf("End-to-end TCP serving (%zu-element requests, window %zu, "
              "best of %zu%s)\n\n",
              kElemsPerRequest, kWindow, trials, quick ? ", quick" : "");

  // One server instance per shape keeps the shapes independent; steady
  // trials share one server (a trial is a fresh set of connections).
  const std::vector<std::size_t> steady_clients =
      quick ? std::vector<std::size_t>{1, 4} : std::vector<std::size_t>{1, 4, 8};
  const std::size_t steady_requests = quick ? 200 : 2000;
  {
    serve::InferenceServer inference{config, serving_options()};
    net::NetServer server{inference};
    for (const std::size_t clients : steady_clients) {
      Cell best;
      for (std::size_t t = 0; t < trials; ++t) {
        const Cell cell = run_steady(server.port(), clients, steady_requests,
                                     config.format);
        if (cell.requests_per_s > best.requests_per_s) {
          best = cell;
        }
      }
      print_cell("steady", clients, best);
      add_cell(writer, "steady", clients, best);
    }
    server.shutdown();
  }

  const std::size_t open_clients = 4;
  const std::size_t open_requests = quick ? 150 : 1500;
  {
    serve::InferenceServer inference{config, serving_options()};
    net::NetServer server{inference};
    const std::vector<std::int64_t> schedule = burst_schedule(
        open_requests, 32, std::chrono::milliseconds{quick ? 10 : 20});
    const Cell cell = run_open(server.port(), open_clients, schedule,
                               config.format);
    print_cell("burst", open_clients, cell);
    add_cell(writer, "burst", open_clients, cell);
    server.shutdown();
  }
  {
    serve::InferenceServer inference{config, serving_options()};
    net::NetServer server{inference};
    const auto period = std::chrono::milliseconds{quick ? 300 : 2000};
    const double base_rate =
        static_cast<double>(open_requests) /
        std::chrono::duration<double>(period).count();
    const std::vector<std::int64_t> schedule =
        diurnal_schedule(open_requests, base_rate, period);
    const Cell cell = run_open(server.port(), open_clients, schedule,
                               config.format);
    print_cell("diurnal", open_clients, cell);
    add_cell(writer, "diurnal", open_clients, cell);
    server.shutdown();
  }

  const bool drained = run_drain_gate(config, 4, writer);

  if (!writer.write("BENCH_e2e.json")) {
    std::fprintf(stderr, "error: could not write BENCH_e2e.json\n");
    return 1;
  }
  std::printf("\nwrote BENCH_e2e.json\n");
  if (!drained) {
    std::fprintf(stderr,
                 "error: drain gate failed — accepted requests went "
                 "unanswered on the wire\n");
    return 1;
  }
  return 0;
}
