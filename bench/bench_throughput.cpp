// Throughput microbenchmarks (google-benchmark) + the paper's timing claims.
//
// Measures host-side ops/s of the bit-accurate functional model and the
// cycle-accurate RTL model, and reports *simulated* hardware timing from the
// cycle counts: 3/3/8-cycle latencies at 3.75 ns — including the §VII.C
// claim that consecutive exps stream at one per clock after the fill.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "bench_json.hpp"
#include "core/batch_nacu.hpp"
#include "core/nacu.hpp"
#include "hwmodel/nacu_rtl.hpp"
#include "hwmodel/softmax_engine.hpp"
#include "obs/metrics.hpp"
#include "simd/dispatch.hpp"

namespace {

using namespace nacu;

const core::NacuConfig kConfig = core::config_for_bits(16);

/// A batch covering the datapath domain with a stride-17 walk (the same
/// input pattern the scalar benchmarks use).
std::vector<fp::Fixed> make_batch(std::size_t n) {
  std::vector<fp::Fixed> xs;
  xs.reserve(n);
  std::int64_t raw = kConfig.format.min_raw();
  for (std::size_t i = 0; i < n; ++i) {
    xs.push_back(fp::Fixed::from_raw(raw, kConfig.format));
    raw = raw >= kConfig.format.max_raw() ? kConfig.format.min_raw()
                                          : raw + 17;
  }
  return xs;
}

void BM_FunctionalSigmoid(benchmark::State& state) {
  const core::Nacu unit{kConfig};
  std::int64_t raw = kConfig.format.min_raw();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        unit.sigmoid(fp::Fixed::from_raw(raw, kConfig.format)));
    raw = raw >= kConfig.format.max_raw() ? kConfig.format.min_raw()
                                          : raw + 17;
  }
}
BENCHMARK(BM_FunctionalSigmoid);

void BM_FunctionalTanh(benchmark::State& state) {
  const core::Nacu unit{kConfig};
  std::int64_t raw = kConfig.format.min_raw();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        unit.tanh(fp::Fixed::from_raw(raw, kConfig.format)));
    raw = raw >= kConfig.format.max_raw() ? kConfig.format.min_raw()
                                          : raw + 17;
  }
}
BENCHMARK(BM_FunctionalTanh);

void BM_FunctionalExp(benchmark::State& state) {
  const core::Nacu unit{kConfig};
  std::int64_t raw = kConfig.format.min_raw();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        unit.exp(fp::Fixed::from_raw(raw, kConfig.format)));
    raw = raw >= 0 ? kConfig.format.min_raw() : raw + 17;
  }
}
BENCHMARK(BM_FunctionalExp);

void BM_FunctionalSoftmax(benchmark::State& state) {
  const core::Nacu unit{kConfig};
  std::vector<fp::Fixed> xs;
  for (int i = 0; i < state.range(0); ++i) {
    xs.push_back(fp::Fixed::from_double(0.1 * i - 2.0, kConfig.format));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(unit.softmax(xs));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FunctionalSoftmax)->Arg(10)->Arg(100)->Arg(1000);

/// Scalar baseline: one full Fig. 2 datapath walk per element.
void BM_BatchScalarLoop(benchmark::State& state, core::BatchNacu::Function f) {
  const core::Nacu unit{kConfig};
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::vector<fp::Fixed> xs = make_batch(n);
  std::vector<fp::Fixed> out(n, fp::Fixed::zero(kConfig.format));
  for (auto _ : state) {
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = f == core::BatchNacu::Function::Sigmoid ? unit.sigmoid(xs[i])
               : f == core::BatchNacu::Function::Tanh  ? unit.tanh(xs[i])
                                                       : unit.exp(xs[i]);
    }
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
void BM_BatchSigmoidScalar(benchmark::State& state) {
  BM_BatchScalarLoop(state, core::BatchNacu::Function::Sigmoid);
}
BENCHMARK(BM_BatchSigmoidScalar)->Arg(1 << 16)->Arg(1 << 18);
void BM_BatchTanhScalar(benchmark::State& state) {
  BM_BatchScalarLoop(state, core::BatchNacu::Function::Tanh);
}
BENCHMARK(BM_BatchTanhScalar)->Arg(1 << 16)->Arg(1 << 18);

/// Batched single-thread path: dense 2^16-entry table, no pool fan-out.
void BM_BatchCachedLoop(benchmark::State& state, core::BatchNacu::Function f) {
  core::BatchNacu::Options options;
  options.parallel_threshold = ~std::size_t{0};  // keep it on one thread
  const core::BatchNacu unit{kConfig, options};
  unit.warm(f);
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::vector<fp::Fixed> xs = make_batch(n);
  std::vector<fp::Fixed> out(n, fp::Fixed::zero(kConfig.format));
  for (auto _ : state) {
    unit.evaluate(f, xs, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
void BM_BatchSigmoidCached(benchmark::State& state) {
  BM_BatchCachedLoop(state, core::BatchNacu::Function::Sigmoid);
}
BENCHMARK(BM_BatchSigmoidCached)->Arg(1 << 16)->Arg(1 << 18);
void BM_BatchTanhCached(benchmark::State& state) {
  BM_BatchCachedLoop(state, core::BatchNacu::Function::Tanh);
}
BENCHMARK(BM_BatchTanhCached)->Arg(1 << 16)->Arg(1 << 18);

/// Batched parallel path: table + thread-pool fan-out (defaults).
void BM_BatchParallelLoop(benchmark::State& state,
                          core::BatchNacu::Function f) {
  const core::BatchNacu unit{kConfig};
  unit.warm(f);
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::vector<fp::Fixed> xs = make_batch(n);
  std::vector<fp::Fixed> out(n, fp::Fixed::zero(kConfig.format));
  for (auto _ : state) {
    unit.evaluate(f, xs, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
void BM_BatchSigmoidParallel(benchmark::State& state) {
  BM_BatchParallelLoop(state, core::BatchNacu::Function::Sigmoid);
}
BENCHMARK(BM_BatchSigmoidParallel)->Arg(1 << 16)->Arg(1 << 18);
void BM_BatchTanhParallel(benchmark::State& state) {
  BM_BatchParallelLoop(state, core::BatchNacu::Function::Tanh);
}
BENCHMARK(BM_BatchTanhParallel)->Arg(1 << 16)->Arg(1 << 18);

void BM_BatchSoftmax(benchmark::State& state) {
  const core::BatchNacu unit{kConfig};
  unit.warm(core::BatchNacu::Function::Exp);
  std::vector<fp::Fixed> xs;
  for (int i = 0; i < state.range(0); ++i) {
    xs.push_back(fp::Fixed::from_double(0.1 * i - 2.0, kConfig.format));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(unit.softmax(xs));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BatchSoftmax)->Arg(10)->Arg(100)->Arg(1000);

void BM_RtlSigmoidPipelined(benchmark::State& state) {
  // Streams one op per cycle; reports host cycles/sec of the cycle model.
  hw::NacuRtl rtl{kConfig};
  std::uint64_t tag = 0;
  std::int64_t raw = kConfig.format.min_raw();
  for (auto _ : state) {
    rtl.issue(hw::Func::Sigmoid, fp::Fixed::from_raw(raw, kConfig.format),
              tag++);
    rtl.tick();
    benchmark::DoNotOptimize(rtl.outputs());
    raw = raw >= kConfig.format.max_raw() ? kConfig.format.min_raw()
                                          : raw + 17;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RtlSigmoidPipelined);

void BM_RtlExpPipelined(benchmark::State& state) {
  hw::NacuRtl rtl{kConfig};
  std::uint64_t tag = 0;
  std::int64_t raw = kConfig.format.min_raw();
  for (auto _ : state) {
    rtl.issue(hw::Func::Exp, fp::Fixed::from_raw(raw, kConfig.format), tag++);
    rtl.tick();
    benchmark::DoNotOptimize(rtl.outputs());
    raw = raw >= 0 ? kConfig.format.min_raw() : raw + 17;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RtlExpPipelined);

}  // namespace

int main(int argc, char** argv) {
  // --metrics: enable the observability registry for the run and dump it
  // as JSON at the end. Stripped before benchmark::Initialize sees argv.
  bool metrics = false;
  {
    int kept = 1;
    for (int i = 1; i < argc; ++i) {
      if (std::string_view{argv[i]} == "--metrics") {
        metrics = true;
      } else {
        argv[kept++] = argv[i];
      }
    }
    argc = kept;
  }
  if (metrics) {
    obs::set_metrics_enabled(true);
  }

  std::printf("=== Simulated hardware timing (28 nm, 3.75 ns clock) ===\n");
  std::printf("  sigmoid latency: 3 cycles = 11.25 ns\n");
  std::printf("  tanh    latency: 3 cycles = 11.25 ns\n");
  std::printf("  exp     latency: 8 cycles = 30.00 ns\n");
  std::printf("  exp throughput after fill: 1/cycle = 3.75 ns per e "
              "(Sec. VII.C)\n");
  std::printf("  vs [14] sequential CORDIC scaled to 28 nm: ~42 ns per e\n\n");

  std::printf("=== Softmax engine (cycle-accurate, Eq. 13 phases) ===\n");
  std::printf("%6s %8s %10s %12s %14s\n", "N", "cycles", "ns", "cyc/elem",
              "phases (max/exp/div)");
  hw::SoftmaxEngine engine{kConfig};
  for (const std::size_t n : {2u, 4u, 10u, 16u, 64u, 256u}) {
    std::vector<std::int64_t> logits;
    for (std::size_t i = 0; i < n; ++i) {
      logits.push_back(fp::Fixed::from_double(
          0.01 * static_cast<double>(i) - 1.0, kConfig.format).raw());
    }
    const auto result = engine.run(logits);
    std::printf("%6zu %8llu %10.0f %12.2f %8llu/%llu/%llu\n", n,
                static_cast<unsigned long long>(result.cycles),
                static_cast<double>(result.cycles) * 3.75,
                static_cast<double>(result.cycles) / static_cast<double>(n),
                static_cast<unsigned long long>(result.max_phase_cycles),
                static_cast<unsigned long long>(result.exp_phase_cycles),
                static_cast<unsigned long long>(result.divide_phase_cycles));
  }
  std::printf("  (pipeline fill overhead: 10 cycles ~ 38 ns; cf. the "
              "paper's ~90 ns fill quote,\n   which also covers the MAC "
              "accumulation pass)\n\n");

  // Scalar datapath vs table (scalar kernel) vs table (SIMD kernel) vs
  // parallel elems/s. Every path is bit-identical (proved exhaustively by
  // test_batch_differential / test_simd_differential), so this table is
  // pure speed — and it feeds BENCH_throughput.json so runs accumulate
  // machine-comparable artifacts.
  std::printf("=== Batch evaluation engine: elems/s by path ===\n");
  {
    using Clock = std::chrono::steady_clock;
    const simd::Backend simd_backend = simd::active_backend();
    const char* simd_name = simd::backend_name(simd_backend);
    const std::size_t pool_threads = core::ThreadPool::shared().size();
    const std::string fmt_name = kConfig.format.to_string();
    // v2: adds table_bytes (resident activation-table bytes behind each
    // row) and configs (live engine configs in the working-set sweep).
    benchjson::Writer writer{"nacu-bench-throughput-v2"};

    const core::Nacu scalar{kConfig};
    core::BatchNacu::Options table_scalar_options;
    table_scalar_options.parallel_threshold = ~std::size_t{0};
    table_scalar_options.backend = simd::Backend::Scalar;
    const core::BatchNacu table_scalar{kConfig, table_scalar_options};
    core::BatchNacu::Options table_simd_options;
    table_simd_options.parallel_threshold = ~std::size_t{0};
    table_simd_options.backend = simd_backend;
    const core::BatchNacu table_simd{kConfig, table_simd_options};
    const core::BatchNacu parallel{kConfig};

    const auto time_ops = [](auto&& body) {
      // One warm-up pass, then the best of three timed passes.
      body();
      double best_s = 1e100;
      for (int rep = 0; rep < 3; ++rep) {
        const auto t0 = Clock::now();
        body();
        best_s = std::min(
            best_s, std::chrono::duration<double>(Clock::now() - t0).count());
      }
      return best_s;
    };
    const auto record = [&](const char* op, const char* backend,
                            std::size_t threads, std::size_t n,
                            double seconds, std::size_t table_bytes,
                            std::size_t configs = 1) {
      const double dn = static_cast<double>(n);
      writer.add(benchjson::Record{}
                     .add("op", op)
                     .add("format", fmt_name)
                     .add("backend", backend)
                     .add("threads", threads)
                     .add("elems", n)
                     .add("configs", configs)
                     .add("table_bytes", table_bytes)
                     .add("elems_per_s", dn / seconds)
                     .add("ns_per_elem", seconds * 1e9 / dn));
    };

    std::printf("  %-8s %8s %12s %12s %12s %12s %12s %9s\n", "func", "batch",
                "scalar el/s", "pr1 el/s", "table el/s", "simd el/s",
                "par el/s", "simd/pr1");
    std::string table_simd_label = "table-";
    table_simd_label += simd_name;
    for (const auto& [name, func] :
         {std::pair{"sigmoid", core::BatchNacu::Function::Sigmoid},
          std::pair{"tanh", core::BatchNacu::Function::Tanh},
          std::pair{"exp", core::BatchNacu::Function::Exp}}) {
      table_scalar.warm(func);
      table_simd.warm(func);
      parallel.warm(func);
      // PR 1 cached-table reference loop: per-element format check,
      // fault-port branch and range-checked from_raw — the acceptance
      // baseline the kernel layer replaces.
      const fp::Format fmt = kConfig.format;
      const std::int64_t min_raw = fmt.min_raw();
      const auto entries =
          static_cast<std::size_t>(fmt.max_raw() - min_raw + 1);
      std::vector<std::int16_t> table(entries);
      for (std::size_t k = 0; k < entries; ++k) {
        const fp::Fixed x = fp::Fixed::from_raw(
            min_raw + static_cast<std::int64_t>(k), fmt);
        const fp::Fixed y = func == core::BatchNacu::Function::Sigmoid
                                ? scalar.sigmoid(x)
                            : func == core::BatchNacu::Function::Tanh
                                ? scalar.tanh(x)
                                : scalar.exp(x);
        table[k] = static_cast<std::int16_t>(y.raw());
      }
      for (const std::size_t n : {std::size_t{1} << 16,
                                  std::size_t{1} << 18}) {
        const std::vector<fp::Fixed> xs = make_batch(n);
        std::vector<fp::Fixed> out(n, fp::Fixed::zero(kConfig.format));
        const core::BatchNacu::Function f = func;
        const double scalar_s = time_ops([&] {
          for (std::size_t i = 0; i < n; ++i) {
            out[i] = f == core::BatchNacu::Function::Sigmoid
                         ? scalar.sigmoid(xs[i])
                     : f == core::BatchNacu::Function::Tanh
                         ? scalar.tanh(xs[i])
                         : scalar.exp(xs[i]);
          }
        });
        fault::BitFaultPort* const port = nullptr;
        const double pr1_s = time_ops([&] {
          for (std::size_t i = 0; i < n; ++i) {
            if (xs[i].format() != fmt) {
              throw std::invalid_argument("input not in datapath format");
            }
            const auto word =
                static_cast<std::size_t>(xs[i].raw() - min_raw);
            std::int64_t entry = table[word];
            if (port != nullptr) {
              entry = port->read(core::BatchNacu::table_surface(f), word,
                                 entry, fmt.width());
            }
            out[i] = fp::Fixed::from_raw(entry, fmt);
          }
          benchmark::DoNotOptimize(out.data());
        });
        const double table_s =
            time_ops([&] { table_scalar.evaluate(f, xs, out); });
        const double simd_s =
            time_ops([&] { table_simd.evaluate(f, xs, out); });
        const double parallel_s =
            time_ops([&] { parallel.evaluate(f, xs, out); });
        const double dn = static_cast<double>(n);
        std::printf(
            "  %-8s %8zu %12.3e %12.3e %12.3e %12.3e %12.3e %8.1fx\n", name,
            n, dn / scalar_s, dn / pr1_s, dn / table_s, dn / simd_s,
            dn / parallel_s, pr1_s / simd_s);
        record(name, "scalar-datapath", 1, n, scalar_s, 0);
        record(name, "table-pr1", 1, n, pr1_s,
               entries * sizeof(std::int16_t));
        record(name, "table-scalar", 1, n, table_s,
               table_scalar.table_resident_bytes(f));
        record(name, table_simd_label.c_str(), 1, n, simd_s,
               table_simd.table_resident_bytes(f));
        record(name, "parallel", pool_threads, n, parallel_s,
               parallel.table_resident_bytes(f));
      }
    }
    // Batched softmax (fused raw-domain path when the exp table is up).
    {
      const std::size_t n = 1000;
      std::vector<fp::Fixed> xs;
      xs.reserve(n);
      for (std::size_t i = 0; i < n; ++i) {
        xs.push_back(fp::Fixed::from_double(
            0.01 * static_cast<double>(i) - 2.0, kConfig.format));
      }
      const double softmax_s =
          time_ops([&] { benchmark::DoNotOptimize(table_simd.softmax(xs)); });
      std::printf("  %-8s %8zu %12s %12s %12s %12.3e %12s %9s\n", "softmax",
                  n, "-", "-", "-", static_cast<double>(n) / softmax_s, "-",
                  "-");
      record("softmax", table_simd_label.c_str(), 1, n, softmax_s,
             table_simd.table_resident_bytes(core::BatchNacu::Function::Exp));
    }
    // === Working-set sweep: live configs × table mode × backend ===
    // Many deployed configs share one cache. Each cell builds `configs`
    // engines with *distinct* NacuConfigs (different LUT geometries →
    // different table contents), warms σ + tanh on each, then streams the
    // same total element count through them — so every cell does identical
    // arithmetic and differs only in resident table bytes. Dense at 8
    // configs is 8 × 2 × 128 KiB = 2 MiB of tables (a typical L2);
    // HalfRange halves that; Pwl collapses it to a few KiB.
    //
    // Methodology: every evaluation uses the *same* small scrambled input
    // chunk (uniform over the raw range, so gathers hit the tables
    // randomly instead of walking them linearly), and each round cycles
    // through all engines before touching the first again — each engine's
    // tables must survive the other configs' gathers to stay resident.
    // Rounds scale inversely with `configs` so total work per cell is
    // constant and only the live table footprint varies.
    std::printf("\n=== Working-set sweep: live configs x table mode ===\n");
    std::printf("  %-8s %-6s %8s %12s %12s\n", "backend", "mode", "configs",
                "tables KiB", "elems/s");
    {
      const std::size_t kSweepLutEntries[8] = {53, 61, 71, 47,
                                               59, 67, 73, 79};
      struct ModeRow {
        core::BatchNacu::TableMode mode;
        const char* name;
      };
      const ModeRow modes[] = {
          {core::BatchNacu::TableMode::Dense, "dense"},
          {core::BatchNacu::TableMode::HalfRange, "half"},
          {core::BatchNacu::TableMode::Pwl, "pwl"},
      };
      std::vector<std::pair<simd::Backend, const char*>> sweep_backends;
      sweep_backends.emplace_back(simd::Backend::Scalar, "scalar");
      if (simd::avx2_available()) {
        sweep_backends.emplace_back(simd::Backend::Avx2, "avx2");
      }
      if (simd::avx512_available()) {
        sweep_backends.emplace_back(simd::Backend::Avx512, "avx512");
      }
      if (simd::neon_available()) {
        sweep_backends.emplace_back(simd::Backend::Neon, "neon");
      }
      // Small chunks force frequent engine hand-offs: a mode whose live
      // tables exceed the L2 re-faults lines on every visit, one that fits
      // streams at full gather speed after the first round.
      const std::size_t kChunk = 4096;
      const std::size_t kRoundsAtOne = 128;  // rounds × configs is constant
      // Scrambled chunk: a fixed LCG walk over the full raw range, shared
      // by every cell (identical arithmetic everywhere, random gathers).
      std::vector<fp::Fixed> chunk;
      chunk.reserve(kChunk);
      {
        const std::int64_t span =
            kConfig.format.max_raw() - kConfig.format.min_raw() + 1;
        std::uint32_t s = 0x9E3779B9u;
        for (std::size_t i = 0; i < kChunk; ++i) {
          s = s * 1664525u + 1013904223u;
          chunk.push_back(fp::Fixed::from_raw(
              kConfig.format.min_raw() +
                  static_cast<std::int64_t>((s >> 8) % span),
              kConfig.format));
        }
      }
      std::vector<fp::Fixed> chunk_out(kChunk,
                                       fp::Fixed::zero(kConfig.format));
      // Contention robustness: a shared host can steal the core in
      // multi-second bursts, and back-to-back tries of one cell all land
      // inside the same burst. So every cell is built once up front, then
      // the whole grid is timed in several well-separated passes — each
      // visit runs the cell once untimed (tables re-resident, any burst
      // absorbed) and once timed, and a cell reports its best across
      // passes. A burst then costs one pass of a few cells, not a cell.
      struct SweepCell {
        const char* backend_name;
        const char* mode_name;
        std::size_t configs;
        std::size_t rounds;
        std::size_t resident;
        std::vector<std::unique_ptr<core::BatchNacu>> engines;
        double best_s;
      };
      std::vector<SweepCell> cells;
      for (const auto& [backend, backend_name] : sweep_backends) {
        for (const ModeRow& mode : modes) {
          for (const std::size_t configs : {std::size_t{1}, std::size_t{4},
                                            std::size_t{8}}) {
            SweepCell cell{backend_name, mode.name,   configs,
                           kRoundsAtOne / configs, 0, {},
                           1e100};
            core::BatchNacu::Options opts;
            opts.parallel_threshold = ~std::size_t{0};
            opts.backend = backend;
            opts.table_mode = mode.mode;
            for (std::size_t c = 0; c < configs; ++c) {
              cell.engines.push_back(std::make_unique<core::BatchNacu>(
                  core::config_for_bits(16, kSweepLutEntries[c]), opts));
              cell.engines.back()->warm(core::BatchNacu::Function::Sigmoid);
              cell.engines.back()->warm(core::BatchNacu::Function::Tanh);
              cell.resident += cell.engines.back()->table_resident_bytes(
                                   core::BatchNacu::Function::Sigmoid) +
                               cell.engines.back()->table_resident_bytes(
                                   core::BatchNacu::Function::Tanh);
            }
            cells.push_back(std::move(cell));
          }
        }
      }
      const auto run_cell = [&](SweepCell& cell) {
        for (std::size_t round = 0; round < cell.rounds; ++round) {
          for (std::size_t c = 0; c < cell.configs; ++c) {
            cell.engines[c]->evaluate(core::BatchNacu::Function::Sigmoid,
                                      chunk, chunk_out);
            cell.engines[c]->evaluate(core::BatchNacu::Function::Tanh,
                                      chunk, chunk_out);
          }
        }
        benchmark::DoNotOptimize(chunk_out.data());
      };
      for (int pass = 0; pass < 5; ++pass) {
        for (SweepCell& cell : cells) {
          run_cell(cell);
          const auto t0 = Clock::now();
          run_cell(cell);
          cell.best_s = std::min(
              cell.best_s,
              std::chrono::duration<double>(Clock::now() - t0).count());
        }
      }
      for (const SweepCell& cell : cells) {
        const std::size_t swept = cell.rounds * cell.configs * 2 * kChunk;
        std::printf("  %-8s %-6s %8zu %12zu %12.3e\n", cell.backend_name,
                    cell.mode_name, cell.configs, cell.resident / 1024,
                    static_cast<double>(swept) / cell.best_s);
        std::string label = "sweep-";
        label += cell.backend_name;
        label += '-';
        label += cell.mode_name;
        record("sweep", label.c_str(), 1, swept, cell.best_s, cell.resident,
               cell.configs);
      }
    }
    std::printf("  (activation table: %zu KiB dense / %zu KiB resident per "
                "function; simd backend %s; pool size %zu)\n",
                parallel.table_bytes() / 1024,
                parallel.table_resident_bytes(
                    core::BatchNacu::Function::Sigmoid) /
                    1024,
                simd_name, pool_threads);
    if (writer.write("BENCH_throughput.json")) {
      std::printf("  wrote BENCH_throughput.json\n\n");
    } else {
      std::printf("  FAILED to write BENCH_throughput.json\n\n");
    }
  }

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  if (metrics) {
    std::printf("\n--- metrics ---\n%s", obs::registry().to_json().c_str());
  }
  return 0;
}
