// Throughput microbenchmarks (google-benchmark) + the paper's timing claims.
//
// Measures host-side ops/s of the bit-accurate functional model and the
// cycle-accurate RTL model, and reports *simulated* hardware timing from the
// cycle counts: 3/3/8-cycle latencies at 3.75 ns — including the §VII.C
// claim that consecutive exps stream at one per clock after the fill.
#include <benchmark/benchmark.h>

#include <vector>

#include "core/nacu.hpp"
#include "hwmodel/nacu_rtl.hpp"
#include "hwmodel/softmax_engine.hpp"

namespace {

using namespace nacu;

const core::NacuConfig kConfig = core::config_for_bits(16);

void BM_FunctionalSigmoid(benchmark::State& state) {
  const core::Nacu unit{kConfig};
  std::int64_t raw = kConfig.format.min_raw();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        unit.sigmoid(fp::Fixed::from_raw(raw, kConfig.format)));
    raw = raw >= kConfig.format.max_raw() ? kConfig.format.min_raw()
                                          : raw + 17;
  }
}
BENCHMARK(BM_FunctionalSigmoid);

void BM_FunctionalTanh(benchmark::State& state) {
  const core::Nacu unit{kConfig};
  std::int64_t raw = kConfig.format.min_raw();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        unit.tanh(fp::Fixed::from_raw(raw, kConfig.format)));
    raw = raw >= kConfig.format.max_raw() ? kConfig.format.min_raw()
                                          : raw + 17;
  }
}
BENCHMARK(BM_FunctionalTanh);

void BM_FunctionalExp(benchmark::State& state) {
  const core::Nacu unit{kConfig};
  std::int64_t raw = kConfig.format.min_raw();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        unit.exp(fp::Fixed::from_raw(raw, kConfig.format)));
    raw = raw >= 0 ? kConfig.format.min_raw() : raw + 17;
  }
}
BENCHMARK(BM_FunctionalExp);

void BM_FunctionalSoftmax(benchmark::State& state) {
  const core::Nacu unit{kConfig};
  std::vector<fp::Fixed> xs;
  for (int i = 0; i < state.range(0); ++i) {
    xs.push_back(fp::Fixed::from_double(0.1 * i - 2.0, kConfig.format));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(unit.softmax(xs));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FunctionalSoftmax)->Arg(10)->Arg(100)->Arg(1000);

void BM_RtlSigmoidPipelined(benchmark::State& state) {
  // Streams one op per cycle; reports host cycles/sec of the cycle model.
  hw::NacuRtl rtl{kConfig};
  std::uint64_t tag = 0;
  std::int64_t raw = kConfig.format.min_raw();
  for (auto _ : state) {
    rtl.issue(hw::Func::Sigmoid, fp::Fixed::from_raw(raw, kConfig.format),
              tag++);
    rtl.tick();
    benchmark::DoNotOptimize(rtl.outputs());
    raw = raw >= kConfig.format.max_raw() ? kConfig.format.min_raw()
                                          : raw + 17;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RtlSigmoidPipelined);

void BM_RtlExpPipelined(benchmark::State& state) {
  hw::NacuRtl rtl{kConfig};
  std::uint64_t tag = 0;
  std::int64_t raw = kConfig.format.min_raw();
  for (auto _ : state) {
    rtl.issue(hw::Func::Exp, fp::Fixed::from_raw(raw, kConfig.format), tag++);
    rtl.tick();
    benchmark::DoNotOptimize(rtl.outputs());
    raw = raw >= 0 ? kConfig.format.min_raw() : raw + 17;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RtlExpPipelined);

}  // namespace

int main(int argc, char** argv) {
  std::printf("=== Simulated hardware timing (28 nm, 3.75 ns clock) ===\n");
  std::printf("  sigmoid latency: 3 cycles = 11.25 ns\n");
  std::printf("  tanh    latency: 3 cycles = 11.25 ns\n");
  std::printf("  exp     latency: 8 cycles = 30.00 ns\n");
  std::printf("  exp throughput after fill: 1/cycle = 3.75 ns per e "
              "(Sec. VII.C)\n");
  std::printf("  vs [14] sequential CORDIC scaled to 28 nm: ~42 ns per e\n\n");

  std::printf("=== Softmax engine (cycle-accurate, Eq. 13 phases) ===\n");
  std::printf("%6s %8s %10s %12s %14s\n", "N", "cycles", "ns", "cyc/elem",
              "phases (max/exp/div)");
  hw::SoftmaxEngine engine{kConfig};
  for (const std::size_t n : {2u, 4u, 10u, 16u, 64u, 256u}) {
    std::vector<std::int64_t> logits;
    for (std::size_t i = 0; i < n; ++i) {
      logits.push_back(fp::Fixed::from_double(
          0.01 * static_cast<double>(i) - 1.0, kConfig.format).raw());
    }
    const auto result = engine.run(logits);
    std::printf("%6zu %8llu %10.0f %12.2f %8llu/%llu/%llu\n", n,
                static_cast<unsigned long long>(result.cycles),
                static_cast<double>(result.cycles) * 3.75,
                static_cast<double>(result.cycles) / static_cast<double>(n),
                static_cast<unsigned long long>(result.max_phase_cycles),
                static_cast<unsigned long long>(result.exp_phase_cycles),
                static_cast<unsigned long long>(result.divide_phase_cycles));
  }
  std::printf("  (pipeline fill overhead: 10 cycles ~ 38 ns; cf. the "
              "paper's ~90 ns fill quote,\n   which also covers the MAC "
              "accumulation pass)\n\n");

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
