// Fault-injection resilience experiments over the NACU datapath.
//
// Tables:
//   (1) a 10k-trial randomized SEU/stuck-at campaign on the paper's Q4.11
//       unit — outcome matrix per surface, per-detector hit counts, and the
//       detection-coverage headline (fault/campaign.hpp);
//   (2) coverage per fault model in isolation (transients scrub away and
//       vote out; stuck-ats are where unrecoverable mass concentrates);
//   (3) end-to-end impact: QuantizedMlp classification accuracy as
//       stuck-at defects accumulate in the activation tables of a 10-bit
//       datapath (small enough that random upsets hit words the network
//       actually reads), with the invariant checker's verdict alongside —
//       detection fires from the very first defect, well before the
//       accuracy cliff. Transient SEUs under the same sweep barely register:
//       each one corrupts at most one read before the next scrub heals it.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <random>

#include "bench_json.hpp"
#include "fault/campaign.hpp"
#include "nn/quantized_mlp.hpp"
#include "simd/dispatch.hpp"

namespace {

using namespace nacu;
using F = core::BatchNacu::Function;

double run_model_campaign(fault::FaultModel model, std::size_t trials) {
  fault::CampaignConfig config;
  config.trials = trials;
  config.seed = 2;
  config.models = {model};
  const fault::CampaignReport report =
      fault::CampaignRunner{config}.run();
  return report.detection_coverage();
}

}  // namespace

int main(int argc, char** argv) {
  // Optional argv[1]: campaign trial count (default 10000) so CI smoke runs
  // can dial the cost down (e.g. `bench_fault_resilience 300`). Below 1000
  // trials the slow MLP accuracy sweep (3) is skipped as well.
  std::size_t trials = 10000;
  if (argc > 1) {
    const long parsed = std::strtol(argv[1], nullptr, 10);
    if (parsed > 0) {
      trials = static_cast<std::size_t>(parsed);
    }
  }
  const std::size_t model_trials = std::min<std::size_t>(trials, 3000);
  benchjson::Writer writer{"nacu-bench-fault-v1"};
  const std::string fmt_name = core::config_for_bits(16).format.to_string();
  const char* backend = simd::backend_name(simd::active_backend());

  std::printf("=== (1) randomized campaign, Q4.11, all surfaces/models ===\n");
  {
    fault::CampaignConfig config;
    config.trials = trials;
    config.seed = 1;
    const fault::CampaignRunner runner{config};
    const auto start = std::chrono::steady_clock::now();
    const fault::CampaignReport report = runner.run();
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    std::printf("%s", report.summary().c_str());
    std::printf("  wall time %.2f s (%.0f trials/s), fingerprint %016llx\n",
                secs, static_cast<double>(report.trials) / secs,
                static_cast<unsigned long long>(report.fingerprint()));
    writer.add(benchjson::Record{}
                   .add("op", "campaign-all-models")
                   .add("format", fmt_name)
                   .add("backend", backend)
                   .add("threads", core::ThreadPool::shared().size())
                   .add("trials", report.trials)
                   .add("trials_per_s",
                        static_cast<double>(report.trials) / secs)
                   .add("detection_coverage", report.detection_coverage()));
  }

  std::printf("\n=== (2) detection coverage per fault model ===\n");
  for (const fault::FaultModel model :
       {fault::FaultModel::TransientSeu, fault::FaultModel::StuckAt0,
        fault::FaultModel::StuckAt1}) {
    const double coverage = run_model_campaign(model, model_trials);
    std::printf("  %-12s coverage %.4f\n", fault::fault_model_name(model),
                coverage);
    std::string op_name = "campaign-";
    op_name += fault::fault_model_name(model);
    writer.add(benchjson::Record{}
                   .add("op", op_name)
                   .add("format", fmt_name)
                   .add("backend", backend)
                   .add("trials", model_trials)
                   .add("detection_coverage", coverage));
  }

  if (trials < 1000) {
    if (writer.write("BENCH_fault.json")) {
      std::printf("\nwrote BENCH_fault.json (accuracy sweep skipped at %zu "
                  "trials)\n", trials);
    }
    return 0;
  }

  std::printf("\n=== (3) QuantizedMlp accuracy vs accumulated table "
              "upsets ===\n");
  {
    nn::MlpConfig mlp_config;
    mlp_config.layer_sizes = {2, 16, 4};
    mlp_config.activation = nn::HiddenActivation::Sigmoid;
    mlp_config.epochs = 120;
    const nn::Dataset data = nn::make_blobs(120, 4);
    const nn::Split split = nn::train_test_split(data, 0.8);
    nn::Mlp mlp{mlp_config};
    mlp.train(split.train);

    const core::NacuConfig config = core::config_for_bits(10);
    nn::QuantizedMlp q{mlp, config};
    core::BatchNacu& engine = q.batch_unit();
    engine.warm(F::Sigmoid);
    engine.warm(F::Exp);
    const double clean_acc = q.accuracy(split.test);
    const fault::InvariantChecker checker{config};
    const auto words =
        static_cast<std::size_t>(config.format.max_raw() -
                                 config.format.min_raw() + 1);
    const int width = config.format.width();

    std::printf("  %s datapath, clean accuracy %.3f, %zu table words per "
                "function\n", config.format.to_string().c_str(), clean_acc,
                words);
    std::printf("  %8s %12s %12s %14s  %s\n", "faults", "stuck-at acc",
                "acc delta", "transient acc", "checker verdict (stuck-at)");
    std::mt19937_64 rng{99};
    for (const std::size_t count : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
      // Draw one fault list, apply it twice: once as permanent stuck-ats,
      // once as transients that a scrub wipes away.
      std::vector<fault::Fault> defects;
      for (std::size_t k = 0; k < count; ++k) {
        const fault::Surface surface = (rng() % 2) == 0
                                           ? fault::Surface::TableSigmoid
                                           : fault::Surface::TableExp;
        defects.push_back({surface, rng() % words,
                           static_cast<int>(rng() %
                                            static_cast<std::size_t>(width)),
                           (rng() % 2) == 0 ? fault::FaultModel::StuckAt0
                                            : fault::FaultModel::StuckAt1});
      }
      fault::FaultInjector stuck;
      for (const fault::Fault& d : defects) {
        stuck.arm(d);
      }
      engine.attach_fault_port(&stuck);
      const double stuck_acc = q.accuracy(split.test);
      const fault::DetectionReport detected = checker.check_batch(engine);

      fault::FaultInjector transient;
      for (fault::Fault d : defects) {
        d.model = fault::FaultModel::TransientSeu;
        transient.arm(d);
      }
      engine.attach_fault_port(&transient);
      engine.scrub_table(F::Sigmoid);  // controller scrub heals transients
      engine.scrub_table(F::Exp);
      const double transient_acc = q.accuracy(split.test);
      engine.attach_fault_port(nullptr);
      std::printf("  %8zu %12.3f %+12.3f %14.3f  %s\n", count, stuck_acc,
                  stuck_acc - clean_acc, transient_acc,
                  detected.to_string().c_str());
      writer.add(benchjson::Record{}
                     .add("op", "mlp-accuracy-stuck-at")
                     .add("format", config.format.to_string())
                     .add("backend", backend)
                     .add("faults", count)
                     .add("accuracy", stuck_acc)
                     .add("clean_accuracy", clean_acc));
    }
  }
  if (writer.write("BENCH_fault.json")) {
    std::printf("\nwrote BENCH_fault.json\n");
  }
  return 0;
}
