// Serving-layer throughput: per-request dispatch vs dynamic micro-batching
// vs the sharded scale-out, swept over concurrent client counts.
//
// The experiment the serving layer exists for: N concurrent clients each
// keep a window of small activation requests in flight against one
// InferenceServer and we measure end-to-end request throughput and tail
// latency under three configurations over identical workloads:
//
//   per-request — max_batch = 1, one shard: every request is its own
//                 dispatch group, paying the full dispatcher/engine
//                 per-call overhead — the "no dynamic batching" baseline
//                 every serving-system paper compares against;
//   micro-batch — max_batch = 256, max_wait = 0, one shard: the PR 5
//                 design — the dispatcher coalesces whatever is pending
//                 each time it wakes (adaptive batching — zero added
//                 latency, group size grows with load), but every client
//                 funnels through one ingress mutex and one dispatcher;
//   sharded     — the same adaptive batching across 4 dispatcher shards
//                 with per-thread shard affinity and work stealing: the
//                 submission path contends on 1/4 of the locks, which is
//                 where the single-dispatcher design measurably fell over
//                 as clients grew.
//
// Requests are deliberately small (kElemsPerRequest elements): at that
// size the fixed per-dispatch cost (dispatcher loop and locking, take/
// execute bookkeeping, per-call engine entry, per-request result
// allocation) rivals the table-lookup work itself, which is precisely the
// regime micro-batching and sharding exist for. Results are bit-identical
// across all three configurations (tests/test_serving.cpp proves it, over
// the full shards × max_batch × config matrix); this bench quantifies the
// throughput and tail-latency differences.
//
// Per-request p50/p99 enqueue→complete latency comes from the
// serve.request_latency_ns obs histogram (log2 buckets — the quantile is
// an upper bucket bound, coarse but machine-comparable), with the metrics
// registry reset around every cell so each snapshot is cell-local.
//
//   ./bench_serving [--trials N]    # default 3, best-of-N per cell
//
// Writes BENCH_serving.json (schema nacu-bench-serving-v2): one record per
// (mode, clients) cell — requests/s, elems/s, avg dispatch group, p50_ns,
// p99_ns — plus one speedup record per client count comparing both
// batched modes against per-request dispatch. scripts/bench_compare.py
// gates CI runs against bench/baselines/ (speed and latency metrics
// --ignore'd across machines but required structurally; see
// docs/BENCHMARKS.md).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <future>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "bench_json.hpp"
#include "core/batch_nacu.hpp"
#include "obs/metrics.hpp"
#include "serve/server.hpp"

namespace {

using namespace nacu;
using Function = core::BatchNacu::Function;

constexpr std::size_t kElemsPerRequest = 8;
constexpr std::size_t kWindow = 128;  ///< requests each client keeps in flight

struct Cell {
  double requests_per_s = 0.0;
  double elems_per_s = 0.0;
  double avg_group = 0.0;  ///< requests per dispatch group actually formed
  std::uint64_t p50_ns = 0;  ///< median enqueue→complete latency bound
  std::uint64_t p99_ns = 0;  ///< tail enqueue→complete latency bound
};

/// One (policy, clients) measurement: every client pushes kWindow requests,
/// drains the futures, repeats for @p rounds. Latency quantiles come from
/// the obs histogram, scoped to this cell by reset_all.
Cell run_cell(const core::NacuConfig& config, const serve::ServerOptions&
              options, std::size_t clients, std::size_t rounds) {
  obs::registry().reset_all();
  serve::InferenceServer server{config, options};
  // Identical per-client inputs: a stride walk across the representable
  // range, rotating through sigma/tanh/exp.
  std::vector<fp::Fixed> input;
  input.reserve(kElemsPerRequest);
  const fp::Format fmt = config.format;
  for (std::size_t i = 0; i < kElemsPerRequest; ++i) {
    const std::int64_t raw =
        fmt.min_raw() +
        static_cast<std::int64_t>(
            (i * 1031) % static_cast<std::size_t>(fmt.max_raw() -
                                                  fmt.min_raw() + 1));
    input.push_back(fp::Fixed::from_raw(raw, fmt));
  }
  // Payloads are materialised before the clock starts (a client has its
  // request bytes ready; generating them is not serving work) and moved
  // into submit so the timed region measures the serving path itself.
  std::vector<std::vector<std::vector<fp::Fixed>>> payloads(clients);
  for (std::size_t c = 0; c < clients; ++c) {
    payloads[c].assign(rounds * kWindow, input);
  }
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (std::size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&server, &payloads, rounds, c] {
      std::vector<std::future<std::vector<fp::Fixed>>> futures;
      futures.reserve(kWindow);
      for (std::size_t r = 0; r < rounds; ++r) {
        futures.clear();
        for (std::size_t k = 0; k < kWindow; ++k) {
          const auto f = static_cast<Function>((c + k) % 3);
          futures.push_back(
              server.submit(f, std::move(payloads[c][r * kWindow + k])));
        }
        for (auto& future : futures) {
          (void)future.get();
        }
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  const auto requests =
      static_cast<double>(clients) * static_cast<double>(rounds) *
      static_cast<double>(kWindow);
  Cell cell;
  cell.requests_per_s = requests / secs;
  cell.elems_per_s = requests * static_cast<double>(kElemsPerRequest) / secs;
  const auto counters = server.counters();
  cell.avg_group =
      counters.dispatches == 0
          ? 0.0
          : static_cast<double>(counters.completed) /
                static_cast<double>(counters.dispatches);
  const obs::Histogram::Snapshot latency =
      obs::histogram("serve.request_latency_ns").snapshot();
  cell.p50_ns = latency.quantile_bound(0.50);
  cell.p99_ns = latency.quantile_bound(0.99);
  return cell;
}

serve::ServerOptions per_request_options() {
  serve::ServerOptions options;
  options.batcher.max_batch = 1;
  options.batcher.max_wait = std::chrono::microseconds{0};
  options.batcher.queue_capacity = 1 << 16;
  return options;
}

serve::ServerOptions micro_batch_options() {
  serve::ServerOptions options;
  options.batcher.max_batch = 256;
  options.batcher.max_wait = std::chrono::microseconds{0};
  options.batcher.queue_capacity = 1 << 16;
  return options;
}

serve::ServerOptions sharded_options() {
  serve::ServerOptions options = micro_batch_options();
  options.shards = 4;
  options.work_stealing = true;
  return options;
}

void add_cell(benchjson::Writer& writer, const char* mode,
              std::size_t clients, std::size_t shards, const Cell& cell) {
  writer.add(benchjson::Record{}
                 .add("bench", "serving")
                 .add("mode", mode)
                 .add("clients", clients)
                 .add("shards", shards)
                 .add("requests_per_s", cell.requests_per_s)
                 .add("elems_per_s", cell.elems_per_s)
                 .add("avg_group", cell.avg_group)
                 .add("p50_ns", cell.p50_ns)
                 .add("p99_ns", cell.p99_ns));
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t trials = 3;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view{argv[i]} == "--trials" && i + 1 < argc) {
      const long parsed = std::strtol(argv[++i], nullptr, 10);
      if (parsed > 0) {
        trials = static_cast<std::size_t>(parsed);
      }
    }
  }
  // The latency histograms need the metrics switch on; it costs one clock
  // read per request in every mode, so the comparison stays fair.
  obs::set_metrics_enabled(true);
  const core::NacuConfig config = core::config_for_bits(16);
  const std::vector<std::size_t> client_counts{1, 2, 4, 8, 16};
  // Rounds scale down with client count so every cell does comparable
  // total work and the bench stays a few seconds end to end.
  const std::size_t base_rounds = 256;

  benchjson::Writer writer{"nacu-bench-serving-v2"};
  std::printf(
      "Serving throughput: per-request vs micro-batch vs sharded (4 shards)\n");
  std::printf("(%zu-element requests, window %zu per client, best of %zu)\n\n",
              kElemsPerRequest, kWindow, trials);
  std::printf("%8s %13s %13s %13s %8s %8s %10s %10s\n", "clients",
              "per-req req/s", "batch req/s", "shard req/s", "b-spdup",
              "s-spdup", "shard p50", "shard p99");
  for (const std::size_t clients : client_counts) {
    const std::size_t rounds =
        std::max<std::size_t>(16, base_rounds / clients);
    Cell per_request;
    Cell batched;
    Cell sharded;
    for (std::size_t t = 0; t < trials; ++t) {
      const Cell a = run_cell(config, per_request_options(), clients, rounds);
      const Cell b = run_cell(config, micro_batch_options(), clients, rounds);
      const Cell s = run_cell(config, sharded_options(), clients, rounds);
      if (a.requests_per_s > per_request.requests_per_s) {
        per_request = a;
      }
      if (b.requests_per_s > batched.requests_per_s) {
        batched = b;
      }
      if (s.requests_per_s > sharded.requests_per_s) {
        sharded = s;
      }
    }
    const double batched_speedup =
        batched.requests_per_s / per_request.requests_per_s;
    const double sharded_speedup =
        sharded.requests_per_s / per_request.requests_per_s;
    std::printf("%8zu %13.0f %13.0f %13.0f %7.2fx %7.2fx %9lluns %9lluns\n",
                clients, per_request.requests_per_s, batched.requests_per_s,
                sharded.requests_per_s, batched_speedup, sharded_speedup,
                static_cast<unsigned long long>(sharded.p50_ns),
                static_cast<unsigned long long>(sharded.p99_ns));
    add_cell(writer, "per-request", clients, 1, per_request);
    add_cell(writer, "micro-batch", clients, 1, batched);
    add_cell(writer, "sharded", clients, 4, sharded);
    writer.add(benchjson::Record{}
                   .add("bench", "serving_speedup")
                   .add("clients", clients)
                   .add("speedup", batched_speedup)
                   .add("sharded_speedup", sharded_speedup));
  }
  if (writer.write("BENCH_serving.json")) {
    std::printf("\nwrote BENCH_serving.json\n");
  } else {
    std::fprintf(stderr, "error: could not write BENCH_serving.json\n");
    return 1;
  }
  return 0;
}
