// §III worked example — the Eq. 7 fixed-point format-selection table.
//
// For every total width N, prints the smallest integer-bit count satisfying
// Eq. 7 (symmetric in/out case), the resulting In_max, and the saturation
// check e^−In_max < 2^−fb. The paper's quoted case is N = 16 → Q4.11.
#include <cstdio>

#include "fixedpoint/format_select.hpp"

int main() {
  using namespace nacu;
  std::printf("=== Eq. 7: minimum integer bits per total width ===\n");
  std::printf("%4s %6s %6s %6s %12s %14s %12s %s\n", "N", "ib", "fb",
              "format", "In_max", "e^-In_max", "2^-fb", "check");
  for (const fp::FormatBound& row : fp::format_bound_table(6, 28)) {
    const fp::Format fmt{row.min_integer_bits, row.fractional_bits};
    std::printf("%4d %6d %6d %6s %12.4f %14.3e %12.3e %s%s\n",
                row.total_bits, row.min_integer_bits, row.fractional_bits,
                fmt.to_string().c_str(), row.in_max, row.sigma_tail,
                row.output_lsb, row.sigma_tail < row.output_lsb ? "ok" : "FAIL",
                row.total_bits == 16 ? "   <- paper's worked example (Q4.11)"
                                     : "");
  }
  std::printf(
      "\nEq. 7 lower-bounds ib so that sigma saturates to 1 within the\n"
      "representable input range; all remaining bits go to the fraction.\n");
  return 0;
}
