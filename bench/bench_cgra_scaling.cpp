// CGRA extension — dense-layer mapping across NACU processing elements
// (paper §VII: NACU "is designed to be used as part of coarse grain
// reconfigurable architectures").
//
// Maps a quantised dense layer onto 1..16 PEs, runs each fabric cycle-
// accurately, verifies raw-exact agreement with the sequential reference,
// and prints cycles / speedup / utilisation / simulated time plus a
// measured-activity power estimate from the RTL toggle counters.
#include <cstdio>

#include "cgra/fabric.hpp"
#include "hwcost/nacu_cost.hpp"
#include "hwcost/technology.hpp"
#include "nn/rng.hpp"

int main() {
  using namespace nacu;
  const core::NacuConfig config = core::config_for_bits(16);

  // A 64-input, 96-neuron tanh layer with random weights.
  nn::Rng rng{11};
  constexpr std::size_t kIn = 64;
  constexpr std::size_t kOut = 96;
  std::vector<std::vector<double>> weights(kOut, std::vector<double>(kIn));
  std::vector<double> biases(kOut);
  for (auto& row : weights) {
    for (double& v : row) v = rng.uniform(-0.4, 0.4);
  }
  for (double& v : biases) v = rng.uniform(-0.4, 0.4);
  const cgra::DenseLayer layer =
      cgra::DenseLayer::quantise(weights, biases, 1, config.format);
  std::vector<std::int64_t> inputs;
  for (std::size_t i = 0; i < kIn; ++i) {
    inputs.push_back(
        fp::Fixed::from_double(rng.uniform(-1.0, 1.0), config.format).raw());
  }
  const auto reference =
      cgra::dense_layer_reference(layer, inputs, config);

  std::printf("=== CGRA fabric: 64-in x 96-out tanh layer, 16-bit NACU PEs "
              "===\n");
  std::printf("%5s %10s %9s %12s %12s %10s\n", "PEs", "cycles", "speedup",
              "utilisation", "time [ns]", "bit-exact");
  std::uint64_t base_cycles = 0;
  for (const std::size_t pes : {1u, 2u, 4u, 8u, 16u}) {
    cgra::Fabric fabric{config, pes};
    fabric.configure(layer);
    const auto out = fabric.run(inputs);
    const bool exact = out == reference;
    const cgra::FabricStats& s = fabric.stats();
    if (pes == 1) base_cycles = s.cycles;
    std::printf("%5zu %10llu %8.2fx %12.2f %12.0f %10s\n", pes,
                static_cast<unsigned long long>(s.cycles),
                static_cast<double>(base_cycles) /
                    static_cast<double>(s.cycles),
                s.utilisation, s.simulated_ns, exact ? "yes" : "NO");
  }

  // Measured-activity power: stream the same layer through one bare NACU
  // pipeline and convert its register toggles into dynamic power.
  hw::NacuRtl rtl{config};
  std::uint64_t tag = 0;
  for (std::size_t n = 0; n < kOut; ++n) {
    rtl.issue(hw::Func::Tanh,
              fp::Fixed::from_raw(reference[n], config.format), tag++);
    rtl.tick();
  }
  for (int i = 0; i < 8; ++i) rtl.tick();
  const cost::Breakdown breakdown = cost::nacu_breakdown(config);
  const cost::PowerEstimate measured = cost::power_from_toggles(
      breakdown, rtl.register_toggles(), rtl.cycles(),
      cost::Tech28::kClockNs);
  const cost::PowerEstimate modelled = cost::power_for_function(
      breakdown, cost::Function::Tanh, cost::Tech28::kClockNs);
  std::printf("\nPer-PE power while streaming tanh at 267 MHz:\n");
  std::printf("  activity-model estimate:   %.3f mW\n", modelled.total_mw());
  std::printf("  toggle-measured (RTL sim): %.3f mW  "
              "(%llu toggles / %llu cycles)\n",
              measured.total_mw(),
              static_cast<unsigned long long>(rtl.register_toggles()),
              static_cast<unsigned long long>(rtl.cycles()));
  std::printf(
      "\nOutputs are raw-identical at every PE count: the fabric scales\n"
      "throughput near-linearly without touching numerics — the paper's\n"
      "CGRA deployment story.\n");
  return 0;
}
