// Fig. 6 — error plots comparing NACU with the state-of-the-art.
//
// Reimplements each related-work scheme at its reported configuration and
// bit-width, measures max error (Fig. 6a–c) and average error (Fig. 6d–e)
// by exhaustive sweep, and normalises everything to the 16-bit NACU exactly
// as the paper plots do (values > 1 mean worse than NACU). NACU rows at the
// related work's own bit-widths mirror the extra bars of Fig. 6c–e.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "approx/cordic.hpp"
#include "approx/error_analysis.hpp"
#include "approx/gomar.hpp"
#include "approx/hybrid.hpp"
#include "approx/nupwl.hpp"
#include "approx/parabolic.hpp"
#include "approx/polynomial.hpp"
#include "approx/ralut.hpp"
#include "core/nacu_approximator.hpp"

namespace {

using namespace nacu;
using approx::FunctionKind;

struct Row {
  std::string label;
  approx::ErrorStats stats;
};

void print_section(const char* title, const std::vector<Row>& rows,
                   const approx::ErrorStats& nacu_ref) {
  std::printf("%s\n", title);
  std::printf("  %-34s %11s %11s %11s %11s\n", "design", "max err",
              "avg err", "max/NACU", "avg/NACU");
  for (const Row& row : rows) {
    std::printf("  %-34s %11.3e %11.3e %11.2f %11.2f\n", row.label.c_str(),
                row.stats.max_abs, row.stats.mean_abs,
                row.stats.max_abs / nacu_ref.max_abs,
                row.stats.mean_abs / nacu_ref.mean_abs);
  }
  std::printf("\n");
}

Row measure(std::string label, const approx::Approximator& a) {
  return Row{std::move(label), approx::analyze_natural(a)};
}

}  // namespace

int main() {
  std::printf("=== Fig. 6: error vs state-of-the-art, normalised to 16-bit "
              "NACU ===\n\n");

  // ---- Sigmoid (Fig. 6a max error, Fig. 6d average error) ----
  {
    const auto nacu16 =
        core::NacuApproximator::for_bits(16, FunctionKind::Sigmoid, 53);
    const approx::ErrorStats ref = approx::analyze_natural(nacu16);
    std::vector<Row> rows;
    rows.push_back(Row{"NACU 16-bit (PWL 53)", ref});
    // [6] NUPWL with 7 entries, 16 bits, power-of-two coefficients ->
    // shift-only multipliers; modelled as a 7-entry NUPWL.
    rows.push_back(measure(
        "[6] NUPWL (7 seg, 16b)",
        approx::Nupwl::with_max_entries(FunctionKind::Sigmoid,
                                        fp::Format{4, 11}, 7)));
    // [6] 2nd-order Taylor, 4 segments, 16 bits.
    rows.push_back(measure(
        "[6] 2nd-order Taylor (4 seg, 16b)",
        approx::Polynomial{approx::Polynomial::natural_config(
            FunctionKind::Sigmoid, fp::Format{4, 11}, 2, 4)}));
    // [10] 1st-order Taylor, 102 segments, 16 bits.
    rows.push_back(measure(
        "[10] 1st-order Taylor (102 seg)",
        approx::Polynomial{approx::Polynomial::natural_config(
            FunctionKind::Sigmoid, fp::Format{4, 11}, 1, 102)}));
    // [10] 2nd-order Taylor, 28 segments.
    rows.push_back(measure(
        "[10] 2nd-order Taylor (28 seg)",
        approx::Polynomial{approx::Polynomial::natural_config(
            FunctionKind::Sigmoid, fp::Format{4, 11}, 2, 28)}));
    // [11] sigma from e^x + divider, 14 bits.
    const fp::Format f14 = core::config_for_bits(14).format;
    rows.push_back(measure(
        "[11] based on e^x (14b)",
        approx::GomarSigmoidTanh{
            {.kind = FunctionKind::Sigmoid, .in = f14, .out = f14}}));
    rows.push_back(measure(
        "NACU 14-bit",
        core::NacuApproximator::for_bits(14, FunctionKind::Sigmoid)));
    print_section("-- sigmoid (Fig. 6a / 6d) --", rows, ref);
  }

  // ---- Tanh (Fig. 6b max error, Fig. 6e average error) ----
  {
    const auto nacu16 =
        core::NacuApproximator::for_bits(16, FunctionKind::Tanh, 53);
    const approx::ErrorStats ref = approx::analyze_natural(nacu16);
    std::vector<Row> rows;
    rows.push_back(Row{"NACU 16-bit (PWL 53)", ref});
    // [4] RALUT, 14 entries, 9-bit input.
    const fp::Format f9 = core::config_for_bits(9).format;
    rows.push_back(measure(
        "[4] RALUT (14 entries, 9b)",
        approx::Ralut::with_max_entries(FunctionKind::Tanh, f9, 14)));
    // [5] RALUT, 127 entries, 10 bits.
    const fp::Format f10 = core::config_for_bits(10).format;
    rows.push_back(measure(
        "[5] RALUT (127 entries, 10b)",
        approx::Ralut::with_max_entries(FunctionKind::Tanh, f10, 127)));
    // [8] hybrid: coarse PWL + RALUT residual correction at 10 bits.
    rows.push_back(measure(
        "[8] PWL & RALUT (10b)",
        approx::HybridPwlRalut{approx::HybridPwlRalut::natural_config(
            FunctionKind::Tanh, f10, 4, 48)}));
    // [11] tanh via Eq. 3 from e^x, 14 bits.
    const fp::Format f14 = core::config_for_bits(14).format;
    rows.push_back(measure(
        "[11] based on e^x (14b)",
        approx::GomarSigmoidTanh{
            {.kind = FunctionKind::Tanh, .in = f14, .out = f14}}));
    rows.push_back(measure(
        "NACU 9-bit",
        core::NacuApproximator::for_bits(9, FunctionKind::Tanh)));
    rows.push_back(measure(
        "NACU 10-bit",
        core::NacuApproximator::for_bits(10, FunctionKind::Tanh)));
    rows.push_back(measure(
        "NACU 14-bit",
        core::NacuApproximator::for_bits(14, FunctionKind::Tanh)));
    print_section("-- tanh (Fig. 6b / 6e) --", rows, ref);
  }

  // ---- Exp (Fig. 6c max error) ----
  {
    const auto nacu16 =
        core::NacuApproximator::for_bits(16, FunctionKind::Exp, 53);
    const approx::ErrorStats ref = approx::analyze_natural(nacu16);
    std::vector<Row> rows;
    rows.push_back(Row{"NACU 16-bit", ref});
    // [13] 6th-order Taylor at 18 bits.
    const fp::Format f18 = core::config_for_bits(18).format;
    rows.push_back(measure(
        "[13] 6th-order Taylor (18b)",
        approx::Polynomial{approx::Polynomial::natural_config(
            FunctionKind::Exp, f18, 6, 8)}));
    // [14] CORDIC at 21 bits.
    const fp::Format f21 = core::config_for_bits(21).format;
    rows.push_back(measure(
        "[14] CORDIC (21b)",
        approx::CordicExp{approx::CordicExp::natural_config(f21, 18)}));
    // [14] parabolic synthesis at 18 bits.
    rows.push_back(measure(
        "[14] Parabolic (18b)",
        approx::ParabolicExp{approx::ParabolicExp::natural_config(f18, 3)}));
    // [12] change-of-base with the 1+f line (the e^x inside [11]).
    rows.push_back(measure(
        "[12] 2^x with 1+f line (16b)",
        approx::GomarExp{{.in = fp::Format{4, 11},
                          .out = fp::Format{4, 11}}}));
    rows.push_back(measure(
        "NACU 18-bit",
        core::NacuApproximator::for_bits(18, FunctionKind::Exp)));
    rows.push_back(measure(
        "NACU 21-bit",
        core::NacuApproximator::for_bits(21, FunctionKind::Exp)));
    print_section("-- exp (Fig. 6c) --", rows, ref);
  }

  std::printf(
      "Reading the shape against the paper: NACU ~10x better than [6]'s\n"
      "NUPWL and the RALUT tanh designs; [10]'s 102-segment design ~10x\n"
      "better than NACU; [11] orders of magnitude worse on sigma/tanh; the\n"
      "18-21 bit exp designs [13,14] ~10x better than 16-bit NACU, with\n"
      "wider NACU closing the gap (Sec. VII).\n");
  return 0;
}
