// Fig. 5 — experimental results and area breakdown of NACU.
//
// Prints the structural-model reproduction of the paper's Fig. 5 panels:
// area breakdown per component (divider-dominated), power per function, and
// latency per function — plus the two ablations §VII argues: a dedicated
// tanh LUT (≈2× coefficient area) and a sequential divider (less area, far
// lower exp throughput).
#include <cstdio>

#include "hwcost/nacu_cost.hpp"
#include "hwcost/technology.hpp"

int main() {
  using namespace nacu;
  const core::NacuConfig config = core::config_for_bits(16);
  const cost::Breakdown b = cost::nacu_breakdown(config);

  std::printf("=== Fig. 5: NACU 16-bit, 28 nm structural model ===\n\n");
  std::printf("Area breakdown (paper: total ~9671 um2, divider-dominated):\n");
  std::printf("%-18s %10s %12s %8s\n", "component", "GE", "area [um2]",
              "share");
  for (const cost::Component& c : b.components) {
    std::printf("%-18s %10.0f %12.1f %7.1f%%\n", c.name.c_str(), c.ge,
                c.ge * cost::Tech28::kGateAreaUm2 *
                    cost::Tech28::kLayoutOverhead,
                100.0 * c.ge / b.total_ge());
  }
  std::printf("%-18s %10.0f %12.1f %8s\n", "TOTAL", b.total_ge(),
              b.area_um2(), "100%");

  std::printf("\nPower at %.2f ns clock (267 MHz):\n", cost::Tech28::kClockNs);
  std::printf("%-10s %12s %12s %12s\n", "function", "dynamic[mW]",
              "leakage[mW]", "total[mW]");
  for (const cost::Function f :
       {cost::Function::Sigmoid, cost::Function::Tanh, cost::Function::Exp,
        cost::Function::Softmax, cost::Function::Mac}) {
    const cost::PowerEstimate p =
        cost::power_for_function(b, f, cost::Tech28::kClockNs);
    std::printf("%-10s %12.3f %12.3f %12.3f\n", cost::to_string(f).c_str(),
                p.dynamic_mw, p.leakage_mw, p.total_mw());
  }

  std::printf("\nLatency (paper Table I: 3, 3, 8 cycles):\n");
  for (const cost::Function f :
       {cost::Function::Sigmoid, cost::Function::Tanh, cost::Function::Exp,
        cost::Function::Mac}) {
    const int cycles = cost::latency_cycles(f);
    std::printf("  %-8s %2d cycles  (%5.2f ns)\n", cost::to_string(f).c_str(),
                cycles, cycles * cost::Tech28::kClockNs);
  }

  std::printf("\n--- Ablation: dedicated tanh LUT (Sec. VII claim: ~2x "
              "coefficient area) ---\n");
  const cost::Breakdown ded =
      cost::nacu_breakdown(config, {.dedicated_tanh_lut = true});
  const double base_coeff =
      b.component_ge("coeff LUT") + b.component_ge("bias/coeff units");
  const double ded_coeff =
      ded.component_ge("coeff LUT") + ded.component_ge("bias/coeff units");
  std::printf("  derived-from-sigma coeff block: %7.0f GE\n", base_coeff);
  std::printf("  dedicated tanh LUT coeff block: %7.0f GE  (%.2fx)\n",
              ded_coeff, ded_coeff / base_coeff);

  std::printf("\n--- Ablation: sequential vs pipelined divider ---\n");
  const cost::Breakdown seq =
      cost::nacu_breakdown(config, {.pipelined_divider = false});
  std::printf("  pipelined:  %7.0f GE divider, exp latency %d cycles, "
              "1 exp/cycle steady state\n",
              b.component_ge("divider"), cost::latency_cycles(
                  cost::Function::Exp, {}));
  std::printf("  sequential: %7.0f GE divider, exp latency %d cycles, "
              "1 exp per %d cycles\n",
              seq.component_ge("divider"),
              cost::latency_cycles(cost::Function::Exp,
                                   {.pipelined_divider = false}),
              cost::latency_cycles(cost::Function::Exp,
                                   {.pipelined_divider = false}) - 4);
  std::printf("  total area: %7.0f vs %7.0f um2\n", b.area_um2(),
              seq.area_um2());

  std::printf("\n--- Scaling: area/power vs datapath width ---\n");
  std::printf("  %5s %8s %10s %12s %12s\n", "bits", "format", "GE",
              "area [um2]", "exp P [mW]");
  for (const int bits : {10, 12, 16, 20, 24}) {
    const core::NacuConfig c = core::config_for_bits(bits);
    const cost::Breakdown bw = cost::nacu_breakdown(c);
    std::printf("  %5d %8s %10.0f %12.0f %12.3f\n", bits,
                c.format.to_string().c_str(), bw.total_ge(), bw.area_um2(),
                cost::power_for_function(bw, cost::Function::Exp,
                                         cost::Tech28::kClockNs)
                    .total_mw());
  }

  std::printf("\n--- Ablation: Fig. 3 bit tricks vs general subtractors ---\n");
  const cost::Breakdown subs =
      cost::nacu_breakdown(config, {.general_subtractors = true});
  std::printf("  bias/coeff units: %5.0f GE (tricks) vs %5.0f GE "
              "(subtractors)\n",
              b.component_ge("bias/coeff units"),
              subs.component_ge("bias/coeff units"));
  std::printf("  decrementor:      %5.0f GE (tricks) vs %5.0f GE\n",
              b.component_ge("decrementor"),
              subs.component_ge("decrementor"));
  return 0;
}
