// SNN extension — AdEx integrate-and-fire neuron on NACU (paper §I's
// "biologically plausible integrate-and-fire neurons" motivation; the
// paper's refs [12, 15] are digital AdEx designs around an exp unit).
//
// Prints the f–I curve (firing rate vs input current) for the double
// reference and the NACU fixed-point neuron, the subthreshold voltage
// drift per datapath width, and spike-count convergence.
#include <cstdio>

#include "snn/adex.hpp"
#include "snn/network.hpp"

int main() {
  using namespace nacu;
  const snn::AdexParams params;
  const core::NacuConfig config = core::config_for_bits(16);

  std::printf("=== AdEx neuron on NACU (dimensionless, dt = 1/64) ===\n");
  std::printf("exp argument cap u_max = %.1f; folded constant gl*D*e^umax = "
              "%.2f (fits Q4.11)\n\n", params.u_max(),
              params.gl * params.delta_t * 54.598);

  std::printf("f-I curve (spikes per unit time, T = 200):\n");
  std::printf("%8s %12s %12s %12s\n", "I", "rate ref", "rate NACU", "delta");
  const std::vector<double> currents = {0.0, 0.5, 0.75, 1.0, 1.25, 1.5,
                                        2.0, 2.5, 3.0};
  for (const auto& pt : snn::fi_curve(params, config, currents, 200.0)) {
    std::printf("%8.2f %12.3f %12.3f %+12.3f\n", pt.current, pt.rate_ref,
                pt.rate_fixed, pt.rate_fixed - pt.rate_ref);
  }

  std::printf("\nSubthreshold voltage drift |v_fixed - v_ref| (I = 0.3, "
              "2000 steps):\n");
  std::printf("%6s %8s %12s\n", "bits", "format", "mean drift");
  for (const int bits : {12, 14, 16, 18, 20}) {
    const core::NacuConfig c = core::config_for_bits(bits);
    std::printf("%6d %8s %12.5f\n", bits, c.format.to_string().c_str(),
                snn::subthreshold_drift(params, c, 0.3, 2000));
  }

  std::printf("\nSpike-count convergence at I = 2.0 (8000 steps):\n");
  snn::AdexNeuronRef ref{params};
  for (int t = 0; t < 8000; ++t) ref.step(2.0);
  std::printf("%6s %8s %10s   (reference: %zu)\n", "bits", "format",
              "spikes", ref.spike_count());
  for (const int bits : {12, 14, 16, 18, 20}) {
    snn::AdexNeuronFixed fixed{params, core::config_for_bits(bits)};
    for (int t = 0; t < 8000; ++t) fixed.step(2.0);
    std::printf("%6d %8s %10zu\n", bits,
                core::config_for_bits(bits).format.to_string().c_str(),
                fixed.spike_count());
  }
  std::printf("\nRecurrent network (32 AdEx neurons, 20%% random synapses, "
              "6000 steps):\n");
  std::printf("%8s %16s %16s\n", "drive", "pop. rate ref", "pop. rate NACU");
  for (const double drive : {1.0, 1.5, 2.0, 2.5}) {
    snn::AdexNetwork::Config net_config;
    net_config.neurons = 32;
    snn::AdexNetwork network{net_config, config};
    const auto run = network.run(6000, drive);
    std::printf("%8.2f %16.4f %16.4f\n", drive, run.rate_ref,
                run.rate_fixed);
  }
  std::printf(
      "\nThe NACU neuron is quiescent below rheobase, fires above it, and\n"
      "its f-I curve tracks the reference with a small quantisation-induced\n"
      "rheobase shift that shrinks with datapath width — the same unit that\n"
      "serves ANN layers serves SNN dynamics (paper Sec. I).\n");
  return 0;
}
