// Table I — related-work implementation summary, plus the §VII.C scaled-area
// comparison.
//
// Prints the paper's Table I rows (reported as-published), the Stillmaker
// scaling of every reported area/clock to NACU's 28 nm node, and our
// structural model's own NACU numbers next to the paper's.
#include <cstdio>

#include "hwcost/nacu_cost.hpp"
#include "hwcost/technology.hpp"

int main() {
  using namespace nacu;

  std::printf("=== Table I: related work (reported metrics) ===\n");
  std::printf("%-6s %-22s %10s %5s %5s %9s %8s %8s %-28s\n", "ref",
              "implementation", "area[um2]", "node", "bits", "clock[ns]",
              "latency", "entries", "functions");
  for (const cost::RelatedWorkEntry& e : cost::related_work_table()) {
    char area[32];
    char entries[16];
    if (e.area_um2 >= 0) {
      std::snprintf(area, sizeof area, "%.0f", e.area_um2);
    } else {
      std::snprintf(area, sizeof area, "n/a");
    }
    if (e.lut_entries >= 0) {
      std::snprintf(entries, sizeof entries, "%d", e.lut_entries);
    } else {
      std::snprintf(entries, sizeof entries, "n/a");
    }
    std::printf("%-6s %-22s %10s %5d %5d %9.2f %8d %8s %-28s\n",
                e.ref.c_str(), e.implementation.c_str(), area, e.node_nm,
                e.bits, e.clock_ns, e.latency_cycles, entries,
                e.functions.c_str());
  }

  std::printf("\n=== Sec. VII.C: scaled to 28 nm (Stillmaker [16]) ===\n");
  std::printf("%-6s %-22s %12s %12s %12s\n", "ref", "implementation",
              "area@28[um2]", "clock@28[ns]", "paper quote");
  for (const cost::RelatedWorkEntry& e : cost::related_work_table()) {
    if (e.area_um2 < 0 || e.ref == "NACU") continue;
    const char* quote = "";
    if (e.implementation == "CORDIC") quote = "~5800 um2, 42 ns";
    if (e.implementation == "6th-order Taylor") quote = "~6200 um2, 20 ns";
    if (e.implementation == "Parabolic") quote = "~8000 um2, 10 ns";
    std::printf("%-6s %-22s %12.0f %12.1f %12s\n", e.ref.c_str(),
                e.implementation.c_str(), cost::area_scaled_to_28nm(e),
                cost::scale_delay(e.clock_ns, e.node_nm, 28), quote);
  }

  const cost::Breakdown b = cost::nacu_breakdown(core::config_for_bits(16));
  std::printf("\n=== Our structural NACU model vs the paper's silicon ===\n");
  std::printf("  area:  %8.0f um2 (paper: 9671 um2)\n", b.area_um2());
  std::printf("  clock: %8.2f ns  (paper: 3.75 ns / 267 MHz)\n",
              cost::Tech28::kClockNs);
  std::printf("  latency: sigma %d, tanh %d, exp %d cycles "
              "(paper: 3, 3, 8)\n",
              cost::latency_cycles(cost::Function::Sigmoid),
              cost::latency_cycles(cost::Function::Tanh),
              cost::latency_cycles(cost::Function::Exp));
  std::printf(
      "\nThe versatility argument: 16-bit NACU (~9.6k um2) computes sigma,\n"
      "tanh, exp, softmax and MAC; each scaled related-work block computes\n"
      "ONE of them at 5.8k-8k um2 (Sec. VII.C).\n");
  return 0;
}
