// Minimal machine-readable benchmark output (no third-party JSON dep).
//
// Benches print human tables to stdout AND append flat records here; the
// result is written as BENCH_*.json so runs accumulate comparable artifacts
// (scripts/bench_compare.py diffs two of them and flags regressions).
// Records are flat string/number maps on purpose — the compare script
// matches records on their string fields and compares the numeric ones.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace nacu::benchjson {

class Record {
 public:
  Record& add(const std::string& key, const std::string& value) {
    std::string field;
    field += '"';
    field += escape(key);
    field += "\":\"";
    field += escape(value);
    field += '"';
    fields_.push_back(std::move(field));
    return *this;
  }
  Record& add(const std::string& key, const char* value) {
    return add(key, std::string{value});
  }
  Record& add(const std::string& key, double value) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.12g", value);
    add_unquoted(key, buf);
    return *this;
  }
  Record& add(const std::string& key, std::size_t value) {
    add_unquoted(key, std::to_string(value));
    return *this;
  }

  [[nodiscard]] std::string to_json() const {
    std::string out = "{";
    for (std::size_t i = 0; i < fields_.size(); ++i) {
      if (i != 0) {
        out += ",";
      }
      out += fields_[i];
    }
    return out + "}";
  }

 private:
  void add_unquoted(const std::string& key, const std::string& value) {
    std::string field;
    field += '"';
    field += escape(key);
    field += "\":";
    field += value;
    fields_.push_back(std::move(field));
  }

  static std::string escape(const std::string& s) {
    std::string out;
    for (const char c : s) {
      if (c == '"' || c == '\\') {
        out += '\\';
      }
      out += c;
    }
    return out;
  }

  std::vector<std::string> fields_;
};

class Writer {
 public:
  explicit Writer(std::string schema) : schema_{std::move(schema)} {}

  void add(const Record& record) { records_.push_back(record.to_json()); }

  /// Write {"schema": ..., "records": [...]}; returns false on I/O error.
  [[nodiscard]] bool write(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      return false;
    }
    std::fprintf(f, "{\n  \"schema\": \"%s\",\n  \"records\": [\n",
                 schema_.c_str());
    for (std::size_t i = 0; i < records_.size(); ++i) {
      std::fprintf(f, "    %s%s\n", records_[i].c_str(),
                   i + 1 < records_.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    return std::fclose(f) == 0;
  }

 private:
  std::string schema_;
  std::vector<std::string> records_;
};

}  // namespace nacu::benchjson
