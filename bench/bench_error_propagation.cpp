// Eqs. 15–16 — error propagation from sigma to exp, and the normalisation
// bound.
//
// Empirically measures |∂e/∂σ| along the normalised input range, shows it
// never exceeds 4 (Eq. 16), shows what happens WITHOUT normalisation (the
// coefficient diverging as σ → 1, Eq. 15), and verifies the measured NACU
// exp error respects the 4× σ-error budget at several bit-widths.
#include <cmath>
#include <cstdio>

#include "approx/error_analysis.hpp"
#include "core/error_model.hpp"
#include "core/nacu_approximator.hpp"

int main() {
  using namespace nacu;
  using approx::FunctionKind;

  std::printf("=== Eq. 15: propagation coefficient 1/(1-sigma)^2 ===\n");
  std::printf("%10s %10s %16s\n", "x", "sigma(x)", "|de/dsigma|");
  for (const double x : {-16.0, -8.0, -4.0, -2.0, -1.0, -0.5, 0.0, 0.5, 1.0,
                         2.0, 4.0}) {
    const double s = 1.0 / (1.0 + std::exp(-x));
    std::printf("%10.2f %10.4f %16.2f%s\n", x, s,
                core::propagation_coefficient(s),
                x <= 0.0 ? "" : "   <- outside the normalised range");
  }
  std::printf("\nNormalised softmax inputs keep x' <= 0, so sigma <= 0.5 and "
              "the\ncoefficient is capped at %.0f (Eq. 16).\n\n",
              core::bounded_propagation_coefficient());

  std::printf("=== Eq. 16: measured NACU exp error vs the 4x sigma budget "
              "===\n");
  std::printf("%6s %14s %14s %14s %8s\n", "bits", "sigma max err",
              "4x budget", "exp max err", "holds");
  for (const int bits : {10, 12, 14, 16, 18, 20}) {
    const auto sig = core::NacuApproximator::for_bits(
        bits, FunctionKind::Sigmoid);
    const auto exp = core::NacuApproximator::for_bits(bits,
                                                      FunctionKind::Exp);
    const double sigma_err = approx::analyze_natural(sig).max_abs;
    const double exp_err = approx::analyze_natural(exp).max_abs;
    const double budget = core::exp_error_bound(sigma_err) +
                          sig.input_format().resolution();
    std::printf("%6d %14.3e %14.3e %14.3e %8s\n", bits, sigma_err,
                core::exp_error_bound(sigma_err), exp_err,
                exp_err <= budget ? "yes" : "NO");
  }
  std::printf("\n(budget check allows one output LSB for the divider's own "
              "quantisation)\n");
  return 0;
}
