// §VII.A/B headline numbers — RMSE and correlation of the 16-bit NACU
// against the floating-point benchmark, next to the paper's quotes and the
// [11] comparison the paper makes.
#include <cstdio>

#include "approx/error_analysis.hpp"
#include "approx/gomar.hpp"
#include "core/nacu_approximator.hpp"

int main() {
  using namespace nacu;
  using approx::FunctionKind;

  std::printf("=== Sec. VII.A/B: RMSE and correlation (16-bit) ===\n");
  std::printf("%-24s %12s %12s %14s\n", "design", "RMSE", "corr",
              "paper quote");

  const auto report = [](const char* label, const approx::ErrorStats& s,
                         const char* quote) {
    std::printf("%-24s %12.3e %12.4f %14s\n", label, s.rmse, s.correlation,
                quote);
  };

  report("NACU sigmoid",
         approx::analyze_natural(
             core::NacuApproximator::for_bits(16, FunctionKind::Sigmoid, 53)),
         "2.07e-4/0.999");
  report("NACU tanh",
         approx::analyze_natural(
             core::NacuApproximator::for_bits(16, FunctionKind::Tanh, 53)),
         "2.09e-4/0.999");
  report("NACU exp",
         approx::analyze_natural(
             core::NacuApproximator::for_bits(16, FunctionKind::Exp, 53)),
         "(not quoted)");

  const fp::Format fmt{4, 11};
  report("[11] sigmoid (reimpl.)",
         approx::analyze_natural(approx::GomarSigmoidTanh{
             {.kind = FunctionKind::Sigmoid, .in = fmt, .out = fmt}}),
         "9.1e-3/0.998");
  report("[11] tanh (reimpl.)",
         approx::analyze_natural(approx::GomarSigmoidTanh{
             {.kind = FunctionKind::Tanh, .in = fmt, .out = fmt}}),
         "1.77e-2/0.999");

  std::printf(
      "\nWho wins and by how much: NACU sigma/tanh RMSE sits at ~2e-4,\n"
      "one-to-two orders of magnitude below the exp-based design of [11],\n"
      "matching the paper's comparison.\n");
  return 0;
}
