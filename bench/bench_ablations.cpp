// Design-choice ablations — the knobs DESIGN.md calls out, each swept in
// isolation on the 16-bit NACU (or the PWL family it belongs to).
//
//  (a) power-of-two slopes vs full multiplier     (§VII.A's ~10× claim)
//  (b) per-segment fit: minimax vs least-squares
//  (c) output rounding: truncate vs nearest
//  (d) σ LUT entries around the paper's 53
//  (e) coefficient fractional width
//  (f) divider guard bits vs exp accuracy
//  (g) Fig. 3 bit tricks vs general subtractors (bit-exactness + area)
#include <cstdio>

#include "approx/error_analysis.hpp"
#include "approx/fit.hpp"
#include "approx/optimal_segments.hpp"
#include "approx/pwl.hpp"
#include "core/nacu_approximator.hpp"
#include "hwcost/nacu_cost.hpp"

namespace {

using namespace nacu;
using approx::FunctionKind;

approx::ErrorStats nacu_stats(const core::NacuConfig& config,
                              FunctionKind kind) {
  const auto unit = std::make_shared<core::Nacu>(config);
  return approx::analyze_natural(core::NacuApproximator{unit, kind});
}

}  // namespace

int main() {
  const core::NacuConfig base = core::config_for_bits(16);

  std::printf("=== (a) power-of-two slopes (shift-only multiplier, [6]) "
              "===\n");
  {
    auto config = approx::Pwl::natural_config(FunctionKind::Sigmoid,
                                              base.format, 53);
    const double full = analyze_natural(approx::Pwl{config}).max_abs;
    config.power_of_two_slopes = true;
    const double snapped = analyze_natural(approx::Pwl{config}).max_abs;
    std::printf("  full multiplier: %.3e | pow2 slopes: %.3e | ratio %.1fx "
                "(paper: ~10x)\n\n", full, snapped, snapped / full);
  }

  std::printf("=== (b) per-segment fit method ===\n");
  for (const bool minimax : {true, false}) {
    core::NacuConfig config = base;
    config.minimax_fit = minimax;
    const auto s = nacu_stats(config, FunctionKind::Sigmoid);
    std::printf("  %-13s max %.3e  rmse %.3e\n",
                minimax ? "minimax" : "least-squares", s.max_abs, s.rmse);
  }

  std::printf("\n=== (b2) quantisation-aware LUT refinement ===\n");
  for (const bool refine : {false, true}) {
    core::NacuConfig config = base;
    config.refine_quantised_lut = refine;
    const auto s = nacu_stats(config, FunctionKind::Sigmoid);
    std::printf("  %-13s max %.3e  rmse %.3e\n",
                refine ? "refined" : "rounded", s.max_abs, s.rmse);
  }

  std::printf("\n=== (c) output rounding ===\n");
  for (const auto rounding :
       {fp::Rounding::NearestUp, fp::Rounding::NearestEven,
        fp::Rounding::Truncate}) {
    core::NacuConfig config = base;
    config.output_rounding = rounding;
    const auto s = nacu_stats(config, FunctionKind::Sigmoid);
    const char* name = rounding == fp::Rounding::Truncate      ? "truncate"
                       : rounding == fp::Rounding::NearestEven ? "nearest-even"
                                                               : "nearest-up";
    std::printf("  %-13s max %.3e  rmse %.3e\n", name, s.max_abs, s.rmse);
  }

  std::printf("\n=== (d) sigma LUT entries (paper picks 53) ===\n");
  std::printf("  %8s %12s %12s %14s\n", "entries", "max err", "rmse",
              "LUT bits");
  for (const std::size_t entries : {13u, 27u, 53u, 107u, 213u}) {
    core::NacuConfig config = base;
    config.lut_entries = entries;
    const auto s = nacu_stats(config, FunctionKind::Sigmoid);
    std::printf("  %8zu %12.3e %12.3e %14zu\n", entries, s.max_abs, s.rmse,
                entries * 2 * 16);
  }

  std::printf("\n=== (e) coefficient fractional width ===\n");
  for (const int fb_c : {10, 12, 14, 16, 18}) {
    core::NacuConfig config = base;
    config.coeff_format = fp::Format{1, fb_c};
    const auto s = nacu_stats(config, FunctionKind::Sigmoid);
    std::printf("  Q1.%-3d max %.3e  rmse %.3e\n", fb_c, s.max_abs, s.rmse);
  }

  std::printf("\n=== (f) divider guard bits vs exp accuracy ===\n");
  for (const int guard : {0, 1, 2, 4, 6}) {
    core::NacuConfig config = base;
    config.divider_guard_bits = guard;
    const auto s = nacu_stats(config, FunctionKind::Exp);
    std::printf("  guard %d: max %.3e  rmse %.3e\n", guard, s.max_abs,
                s.rmse);
  }

  std::printf("\n=== (f1) heuristic vs DP-optimal segment placement ===\n");
  {
    std::printf("  %8s %14s %14s %9s   (continuous fit error, sigma)\n",
                "segments", "uniform", "DP-optimal", "gain");
    for (const std::size_t segments : {4u, 8u, 16u, 32u, 53u}) {
      double uniform_worst = 0.0;
      for (std::size_t i = 0; i < segments; ++i) {
        const double a = 16.0 * static_cast<double>(i) / segments;
        const double b2 = a + 16.0 / segments;
        uniform_worst = std::max(
            uniform_worst,
            approx::fit_minimax(FunctionKind::Sigmoid, a, b2).max_error);
      }
      const auto optimal = approx::optimal_linear_segments(
          FunctionKind::Sigmoid, 0.0, 16.0, segments, 385);
      std::printf("  %8zu %14.3e %14.3e %8.1fx\n", segments, uniform_worst,
                  optimal.max_error, uniform_worst / optimal.max_error);
    }
    std::printf("  (non-uniform placement buys ~11-15x in continuous error;\n"
                "   at 53 segments the 16-bit quantisation floor hides most "
                "of it)\n");
  }

  std::printf("\n=== (f2) where the error lives: per-region breakdown ===\n");
  {
    std::printf("  %-8s %12s %12s %12s   (max error per region)\n",
                "function", "|x|<1", "1<=|x|<4", "|x|>=4");
    for (const auto kind :
         {FunctionKind::Sigmoid, FunctionKind::Tanh, FunctionKind::Exp}) {
      const auto unit = std::make_shared<core::Nacu>(base);
      const approx::RegionBreakdown regions = approx::analyze_regions(
          core::NacuApproximator{unit, kind});
      std::printf("  %-8s %12.3e %12.3e %12.3e\n",
                  approx::to_string(kind).c_str(), regions.steep.max_abs,
                  regions.knee.max_abs, regions.tail.max_abs);
    }
    std::printf("  (sigma/tanh error peaks at the curvature knee; the "
                "saturated tail is near-exact)\n");
  }

  std::printf("\n=== (g) Fig. 3 bit tricks vs general subtractors ===\n");
  {
    core::NacuConfig tricks = base;
    core::NacuConfig subs = base;
    subs.use_bit_trick_units = false;
    const core::Nacu a{tricks};
    const core::Nacu b{subs};
    std::size_t mismatches = 0;
    std::size_t checks = 0;
    for (std::int64_t raw = base.format.min_raw();
         raw <= base.format.max_raw(); raw += 3) {
      const fp::Fixed x = fp::Fixed::from_raw(raw, base.format);
      mismatches += a.sigmoid(x).raw() != b.sigmoid(x).raw();
      mismatches += a.tanh(x).raw() != b.tanh(x).raw();
      mismatches += a.exp(x).raw() != b.exp(x).raw();
      checks += 3;
    }
    const auto area_tricks = cost::nacu_breakdown(base);
    const auto area_subs =
        cost::nacu_breakdown(base, {.general_subtractors = true});
    std::printf("  bit-exact: %zu mismatches / %zu checks\n", mismatches,
                checks);
    std::printf("  bias/coeff area: %.0f GE (tricks) vs %.0f GE "
                "(subtractors)\n",
                area_tricks.component_ge("bias/coeff units"),
                area_subs.component_ge("bias/coeff units"));
  }
  return 0;
}
