// Cross-validation of the structural cost model against the related work's
// reported silicon, scaled to 28 nm (paper Table I + §VII.C).
//
// For each baseline with a reported area, prints the Stillmaker-scaled
// silicon figure next to our gate-model estimate of the same datapath —
// the two should agree in regime (the model is structural, not a layout).
#include <cstdio>

#include "hwcost/baseline_costs.hpp"
#include "hwcost/nacu_cost.hpp"
#include "hwcost/technology.hpp"

namespace {

double to_um2(double ge) {
  using namespace nacu::cost;
  return ge * Tech28::kGateAreaUm2 * Tech28::kLayoutOverhead;
}

}  // namespace

int main() {
  using namespace nacu;

  std::printf("=== Structural model vs scaled silicon (28 nm) ===\n");
  std::printf("%-28s %14s %14s %8s\n", "design", "silicon@28nm",
              "our model", "ratio");

  struct Row {
    const char* name;
    double silicon_um2;  ///< reported area scaled to 28 nm
    double model_ge;
  };
  const Row rows[] = {
      {"[4] RALUT tanh (14e, 9b)", cost::scale_area(1280.66, 180, 28),
       cost::ralut_unit_ge(14, 9, 6)},
      {"[5] RALUT tanh (127e, 10b)", cost::scale_area(11871.53, 180, 28),
       cost::ralut_unit_ge(127, 10, 10)},
      {"[8] PWL+RALUT tanh (10b)", cost::scale_area(5130.78, 180, 28),
       cost::pwl_unit_ge(4, 10, 10) + cost::ralut_unit_ge(48, 10, 10)},
      {"[13] 6th-ord Taylor exp (18b)", cost::scale_area(20700, 65, 28),
       cost::polynomial_unit_ge(8, 6, 18, 18) * 4.0 /* wide const mults */},
      {"[14] CORDIC exp (21b)", cost::scale_area(19150, 65, 28),
       cost::cordic_unit_ge(18, 24)},
      {"[14] Parabolic exp (18b)", cost::scale_area(26400, 65, 28),
       cost::parabolic_unit_ge(3, 18)},
  };
  for (const Row& row : rows) {
    const double model = to_um2(row.model_ge);
    std::printf("%-28s %14.0f %14.0f %8.2f\n", row.name, row.silicon_um2,
                model, model / row.silicon_um2);
  }

  const cost::Breakdown nacu_model =
      cost::nacu_breakdown(core::config_for_bits(16));
  std::printf("%-28s %14.0f %14.0f %8.2f\n", "NACU (this work, 16b)", 9671.0,
              nacu_model.area_um2(), nacu_model.area_um2() / 9671.0);

  std::printf(
      "\nEvery estimate lands within a small factor of the scaled silicon\n"
      "(tiny macros deviate most — fixed overheads dominate them). The\n"
      "same gate model that reproduces NACU's 9.7k um2 also places each\n"
      "related-work datapath in its reported regime.\n");
  return 0;
}
