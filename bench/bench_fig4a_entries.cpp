// Fig. 4a — table entries needed per fractional-bit count, for the four
// σ/tanh implementation families (LUT / RALUT / PWL / NUPWL).
//
// For each output precision fb, searches the smallest entry count whose
// exhaustive max error is below one output LSB (the paper's "same level of
// accuracy"), exploring configurations the way §VI describes. The paper's
// quoted point: at fb = 10, PWL needs ~50 entries vs 668 (RALUT) and 1026
// (LUT).
#include <cstdio>

#include "approx/search.hpp"
#include "fixedpoint/format_select.hpp"

int main() {
  using namespace nacu;
  using approx::Family;
  const Family families[] = {Family::Lut, Family::Ralut, Family::Pwl,
                             Family::Nupwl};

  std::printf("=== Fig. 4a: entries to reach 1-LSB max error (sigmoid) ===\n");
  std::printf("%4s %8s |", "fb", "target");
  for (const Family f : families) {
    std::printf(" %10s", approx::to_string(f).c_str());
  }
  std::printf("\n");

  for (int fb = 6; fb <= 12; ++fb) {
    // Q4.fb: four integer bits satisfy Eq. 7 for every fb in this sweep.
    const fp::Format fmt{4, fb};
    const double target = fmt.resolution();
    std::printf("%4d %8.1e |", fb, target);
    for (const Family family : families) {
      const auto result = approx::min_entries_explored(
          family, approx::FunctionKind::Sigmoid, fmt, target);
      if (result) {
        std::printf(" %10zu", result->entries);
      } else {
        std::printf(" %10s", "-");
      }
    }
    std::printf("\n");
  }
  std::printf(
      "\nPaper's quoted shape at fb=10: PWL ~50 entries vs RALUT 668 and\n"
      "LUT 1026 — the PWL families need orders of magnitude fewer entries,\n"
      "and non-uniform segmentation helps the constant-approximation\n"
      "families far more than it helps PWL (Sec. VI).\n");
  return 0;
}
