// §VIII future work, implemented — "optimise out the conventional divider
// with an approximate one": a PWL reciprocal (range reduction + 16-entry
// table + the shared multiply-add) replacing the 25-row pipelined restoring
// divider.
//
// Prints the area/accuracy/latency trade-off across reciprocal table sizes,
// plus the end-to-end effect on softmax classification probabilities.
#include <cstdio>
#include <memory>

#include "approx/error_analysis.hpp"
#include "core/nacu_approximator.hpp"
#include "hwcost/nacu_cost.hpp"

int main() {
  using namespace nacu;
  const core::NacuConfig exact_config = core::config_for_bits(16);

  const auto exact_area = cost::nacu_breakdown(exact_config);
  const auto exact_stats = approx::analyze_natural(core::NacuApproximator{
      std::make_shared<core::Nacu>(exact_config),
      approx::FunctionKind::Exp});

  std::printf("=== Sec. VIII future work: approximate divider ===\n\n");
  std::printf("Baseline (pipelined restoring divider):\n");
  std::printf("  area %.0f um2 (divider %.0f GE), exp max err %.3e, "
              "exp latency %d cycles\n\n",
              exact_area.area_um2(), exact_area.component_ge("divider"),
              exact_stats.max_abs, cost::latency_cycles(cost::Function::Exp));

  std::printf("PWL reciprocal variants (range reduction + (m,q) table + "
              "shared MAC):\n");
  std::printf("%9s %12s %12s %13s %13s %9s\n", "entries", "area[um2]",
              "area saved", "exp max err", "exp rmse", "latency");
  for (const std::size_t entries : {4u, 8u, 16u, 32u, 64u}) {
    core::NacuConfig config = exact_config;
    config.approximate_reciprocal = true;
    config.reciprocal_entries = entries;
    const auto stats = approx::analyze_natural(core::NacuApproximator{
        std::make_shared<core::Nacu>(config), approx::FunctionKind::Exp});
    const auto area = cost::nacu_breakdown(
        config, {.approximate_reciprocal = true,
                 .reciprocal_entries = entries});
    std::printf("%9zu %12.0f %11.1f%% %13.3e %13.3e %9d\n", entries,
                area.area_um2(),
                100.0 * (1.0 - area.area_um2() / exact_area.area_um2()),
                stats.max_abs, stats.rmse,
                cost::latency_cycles(cost::Function::Exp,
                                     {.approximate_reciprocal = true}));
  }

  // End-to-end: softmax probabilities, exact vs approximate reciprocal.
  std::printf("\nSoftmax([0.5, 2.0, -1.0, 1.5]) comparison:\n");
  std::vector<fp::Fixed> xs;
  for (const double v : {0.5, 2.0, -1.0, 1.5}) {
    xs.push_back(fp::Fixed::from_double(v, exact_config.format));
  }
  core::NacuConfig approx_config = exact_config;
  approx_config.approximate_reciprocal = true;
  const core::Nacu exact_unit{exact_config};
  const core::Nacu approx_unit{approx_config};
  const auto pe = exact_unit.softmax(xs);
  const auto pa = approx_unit.softmax(xs);
  std::printf("  exact divider: [");
  for (const auto& p : pe) std::printf(" %.4f", p.to_double());
  std::printf(" ]\n  approx recip:  [");
  for (const auto& p : pa) std::printf(" %.4f", p.to_double());
  std::printf(" ]\n");

  std::printf(
      "\nThe paper's prediction holds: ~50%% of the macro area evaporates\n"
      "(the divider dominated it) while exp max error grows by well under\n"
      "2x and classification order/probabilities are preserved.\n");
  return 0;
}
