// Fig. 4b — maximum error vs number of entries at 11 fractional bits.
//
// Sweeps the entry budget for all four families at Q4.11 (the paper's 16-bit
// format) and prints the max-error series. The paper's observations: PWL and
// NUPWL scale much better than LUT/RALUT, and the curves flatten once
// coefficient/output quantisation dominates ("the improvement is minimal
// since it occurs after the knee").
#include <cstdio>

#include "approx/search.hpp"

int main() {
  using namespace nacu;
  using approx::Family;
  const fp::Format fmt{4, 11};
  const Family families[] = {Family::Lut, Family::Ralut, Family::Pwl,
                             Family::Nupwl};

  std::printf("=== Fig. 4b: max error vs entries (sigmoid, Q4.11) ===\n");
  std::printf("%8s |", "entries");
  for (const Family f : families) {
    std::printf(" %11s", approx::to_string(f).c_str());
  }
  std::printf("\n");
  for (const std::size_t entries :
       {2u, 4u, 8u, 16u, 32u, 64u, 128u, 256u, 512u, 1024u, 2048u}) {
    std::printf("%8zu |", entries);
    for (const Family family : families) {
      std::printf(" %11.3e",
                  approx::max_error_at_entries(
                      family, approx::FunctionKind::Sigmoid, fmt, entries));
    }
    std::printf("\n");
  }
  std::printf(
      "\nPWL/NUPWL reach the quantisation floor (~2^-12) with tens of\n"
      "entries; LUT/RALUT need thousands — the Fig. 4b scaling gap.\n");
  return 0;
}
