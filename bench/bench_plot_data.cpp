// Figure-data exporter — writes the series behind the paper's plots as CSV
// files under ./plots/ so they can be re-plotted with any tool.
//
//   plots/fig1_functions.csv       x, sigma, tanh, NACU sigma, NACU tanh
//   plots/fig4b_error.csv          entries, LUT, RALUT, PWL, NUPWL max err
//   plots/fig6_normalised.csv      design, function, max/avg error + ratios
//   plots/fi_curve.csv             current, rate_ref, rate_nacu
//
// Prints a one-line summary per file; exits non-zero if a file cannot be
// written.
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "approx/error_analysis.hpp"
#include "approx/search.hpp"
#include "core/nacu_approximator.hpp"
#include "snn/adex.hpp"

int main() {
  using namespace nacu;
  namespace fs = std::filesystem;
  fs::create_directories("plots");

  // Fig. 1 series.
  {
    std::ofstream out{"plots/fig1_functions.csv"};
    if (!out) {
      std::fprintf(stderr, "cannot write plots/fig1_functions.csv\n");
      return 1;
    }
    const core::NacuConfig config = core::config_for_bits(16);
    const core::Nacu unit{config};
    out << "x,sigma,tanh,nacu_sigma,nacu_tanh\n";
    for (double x = -8.0; x <= 8.0 + 1e-9; x += 0.0625) {
      const fp::Fixed xq = fp::Fixed::from_double(x, config.format);
      out << x << ','
          << approx::reference_eval(approx::FunctionKind::Sigmoid, x) << ','
          << approx::reference_eval(approx::FunctionKind::Tanh, x) << ','
          << unit.sigmoid(xq).to_double() << ','
          << unit.tanh(xq).to_double() << '\n';
    }
    std::printf("wrote plots/fig1_functions.csv (257 rows)\n");
  }

  // Fig. 4b series.
  {
    std::ofstream out{"plots/fig4b_error.csv"};
    out << "entries,lut,ralut,pwl,nupwl\n";
    const fp::Format fmt{4, 11};
    int rows = 0;
    for (const std::size_t entries :
         {2u, 4u, 8u, 16u, 32u, 64u, 128u, 256u, 512u, 1024u}) {
      out << entries;
      for (const auto family :
           {approx::Family::Lut, approx::Family::Ralut, approx::Family::Pwl,
            approx::Family::Nupwl}) {
        out << ','
            << approx::max_error_at_entries(
                   family, approx::FunctionKind::Sigmoid, fmt, entries);
      }
      out << '\n';
      ++rows;
    }
    std::printf("wrote plots/fig4b_error.csv (%d rows)\n", rows);
  }

  // Fig. 6 normalised bars (NACU widths only — the full related-work table
  // is in bench_fig6_error_comparison's stdout).
  {
    std::ofstream out{"plots/fig6_normalised.csv"};
    out << "bits,function,max_error,avg_error\n";
    int rows = 0;
    for (const int bits : {9, 10, 14, 16, 18, 21}) {
      for (const auto kind :
           {approx::FunctionKind::Sigmoid, approx::FunctionKind::Tanh,
            approx::FunctionKind::Exp}) {
        const auto stats = approx::analyze_natural(
            core::NacuApproximator::for_bits(bits, kind));
        out << bits << ',' << approx::to_string(kind) << ','
            << stats.max_abs << ',' << stats.mean_abs << '\n';
        ++rows;
      }
    }
    std::printf("wrote plots/fig6_normalised.csv (%d rows)\n", rows);
  }

  // f–I curve.
  {
    std::ofstream out{"plots/fi_curve.csv"};
    out << "current,rate_ref,rate_nacu\n";
    const snn::AdexParams params;
    std::vector<double> currents;
    for (double i = 0.0; i <= 3.0 + 1e-9; i += 0.25) {
      currents.push_back(i);
    }
    const auto curve =
        snn::fi_curve(params, core::config_for_bits(16), currents, 100.0);
    for (const auto& pt : curve) {
      out << pt.current << ',' << pt.rate_ref << ',' << pt.rate_fixed
          << '\n';
    }
    std::printf("wrote plots/fi_curve.csv (%zu rows)\n", curve.size());
  }
  return 0;
}
