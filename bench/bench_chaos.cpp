// Chaos benchmark: the self-healing serving layer under live faults.
//
// Three modes over an identical full-domain workload (4 clients sweeping
// every representable input word through σ/tanh/exp against a 2-shard
// server, verifying every element against precomputed golden tables):
//
//   baseline   — no faults, verification off: the p50/p99 and throughput
//                reference the other modes degrade from;
//   seu        — a chaos thread arms one single-bit transient SEU at a
//                time (random table surface / word / bit, per-shard
//                BitFaultPorts, verify-before-release on) and measures
//                arm→detection latency and detection→healthy recovery
//                time (scrub + circuit closed) for each, while clients
//                keep asserting bit-exactness — the paper's SEC parity
//                story (§VII) extended to the serving layer: zero wrong
//                answers reach a client;
//   shard-kill — the chaos thread crashes a dispatcher thread outright
//                (exception through the dispatch hook); the supervisor
//                joins, rebuilds the shard engine, respawns, and requeues
//                orphans against the retry budget. Clients carry retry
//                credit, so goodput continues on the surviving shard and
//                recovery time to a re-closed circuit is measured.
//
// The binary is its own pass/fail gate (CI chaos-smoke runs --trials 1):
//   * any client-visible wrong answer in any mode           → exit 1
//   * SEU detection coverage < 99%                          → exit 1
//   * any circuit not Closed once the chaos script finishes → exit 1
//
//   ./bench_chaos [--trials N]    # default 1 chaos campaign per mode
//
// Writes BENCH_chaos.json (schema nacu-bench-chaos-v1): one record per
// mode — requests/s, p50/p99 latency, correct_pct, coverage_pct,
// detection/recovery means, degraded-request goodput, kills/respawns.
// scripts/bench_compare.py gates CI runs against bench/baselines/.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <future>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "bench_json.hpp"
#include "core/batch_nacu.hpp"
#include "fault/fault_injector.hpp"
#include "obs/metrics.hpp"
#include "serve/server.hpp"

namespace {

using namespace nacu;
using Function = core::BatchNacu::Function;
using Clock = std::chrono::steady_clock;

constexpr std::size_t kShards = 2;
constexpr std::size_t kClients = 4;
constexpr std::size_t kChunk = 256;   ///< elements per request
constexpr std::size_t kWindow = 8;    ///< requests each client keeps in flight
constexpr std::size_t kSeuFaults = 12;
constexpr std::size_t kKills = 3;

const char* kModes[] = {"baseline", "seu", "shard-kill"};

/// xorshift64 — deterministic chaos schedule, no <random> heft.
struct Rng {
  std::uint64_t s = 0x9e3779b97f4a7c15ull;
  std::uint64_t next() {
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    return s;
  }
};

struct Golden {
  fp::Format fmt;
  std::vector<std::int64_t> raw[core::BatchNacu::kFunctionCount];
};

/// Full-domain golden outputs, one dense vector per function — what every
/// client asserts against, independent of the server under test.
Golden build_golden(const core::NacuConfig& config) {
  Golden g{config.format, {}};
  const core::BatchNacu direct{config};
  const std::int64_t min_raw = config.format.min_raw();
  const auto domain =
      static_cast<std::size_t>(config.format.max_raw() - min_raw + 1);
  std::vector<fp::Fixed> in;
  in.reserve(domain);
  for (std::size_t w = 0; w < domain; ++w) {
    in.push_back(
        fp::Fixed::from_raw(min_raw + static_cast<std::int64_t>(w),
                            config.format));
  }
  std::vector<fp::Fixed> out(domain, fp::Fixed::zero(config.format));
  for (std::size_t fi = 0; fi < core::BatchNacu::kFunctionCount; ++fi) {
    direct.evaluate(static_cast<Function>(fi), in, out);
    g.raw[fi].resize(domain);
    for (std::size_t w = 0; w < domain; ++w) {
      g.raw[fi][w] = out[w].raw();
    }
  }
  return g;
}

struct ModeResult {
  double requests_per_s = 0.0;
  std::uint64_t p50_ns = 0;
  std::uint64_t p99_ns = 0;
  std::uint64_t completed = 0;
  std::uint64_t wrong = 0;   ///< client-visible incorrect elements
  std::uint64_t failed = 0;  ///< requests resolved with an error
  std::uint64_t injected = 0;
  std::uint64_t detected = 0;
  double coverage_pct = 100.0;
  double detection_ms_mean = 0.0;
  double recovery_ms_mean = 0.0;
  std::uint64_t degraded_requests = 0;
  std::uint64_t scrubs = 0;
  std::uint64_t respawns = 0;
  std::uint64_t kills = 0;
  bool circuits_closed = true;
};

bool all_circuits_closed(const serve::InferenceServer& server) {
  for (std::size_t i = 0; i < kShards; ++i) {
    const serve::ShardHealthSnapshot h = server.shard_health(i);
    if (h.state != serve::CircuitState::Closed || h.quarantined != 0 ||
        h.dispatcher_dead) {
      return false;
    }
  }
  return true;
}

/// Spin (with a short sleep) until @p pred or the timeout elapses.
template <typename Pred>
bool await(Pred&& pred, std::chrono::milliseconds timeout) {
  const auto deadline = Clock::now() + timeout;
  while (!pred()) {
    if (Clock::now() >= deadline) {
      return false;
    }
    std::this_thread::sleep_for(std::chrono::microseconds{200});
  }
  return true;
}

ModeResult run_mode(const core::NacuConfig& config, const Golden& golden,
                    std::string_view mode) {
  obs::registry().reset_all();
  const bool seu = mode == "seu";
  const bool kill_mode = mode == "shard-kill";

  std::vector<fault::FaultInjector> injectors(kShards);
  std::atomic<std::int64_t> kill_shard{-1};

  serve::ServerOptions options;
  options.shards = kShards;
  options.batcher.max_batch = 64;
  options.batcher.max_wait = std::chrono::microseconds{100};
  options.batcher.queue_capacity = 1 << 16;
  options.resilience.watchdog_interval = std::chrono::microseconds{200};
  // The chaos campaign should never lose a request to budget exhaustion —
  // failures here would muddy the wrong-answer gate this bench exists for.
  options.resilience.retry_budget_per_s = 1e6;
  options.resilience.retry_budget_burst = 1e6;
  if (seu) {
    for (std::size_t i = 0; i < kShards; ++i) {
      options.resilience.shard_fault_ports.push_back(&injectors[i]);
    }
  }
  if (kill_mode) {
    options.resilience.dispatch_hook = [&kill_shard](std::size_t shard) {
      if (kill_shard.load(std::memory_order_acquire) ==
          static_cast<std::int64_t>(shard)) {
        throw std::runtime_error{"chaos: dispatcher killed"};
      }
    };
  }
  serve::InferenceServer server{config, options};

  const std::int64_t min_raw = config.format.min_raw();
  const auto domain = golden.raw[0].size();
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> wrong{0};
  std::atomic<std::uint64_t> failed{0};
  std::atomic<std::uint64_t> done_requests{0};

  const auto start = Clock::now();
  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      serve::SubmitOptions submit;
      submit.max_retries = 3;  // survive shard kills transparently
      struct InFlight {
        std::future<std::vector<fp::Fixed>> future;
        std::size_t fi;
        std::size_t w0;
      };
      std::vector<InFlight> window;
      std::vector<fp::Fixed> input(kChunk, fp::Fixed::zero(config.format));
      std::size_t pos = c * (domain / kClients);  // stagger sweep origins
      std::size_t round = 0;
      const auto drain = [&](InFlight& f) {
        try {
          const std::vector<fp::Fixed> out = f.future.get();
          for (std::size_t k = 0; k < out.size(); ++k) {
            const std::size_t w = (f.w0 + k) % domain;
            if (out[k].raw() != golden.raw[f.fi][w]) {
              wrong.fetch_add(1, std::memory_order_relaxed);
            }
          }
          done_requests.fetch_add(1, std::memory_order_relaxed);
        } catch (...) {
          failed.fetch_add(1, std::memory_order_relaxed);
        }
      };
      while (!stop.load(std::memory_order_acquire)) {
        const std::size_t fi = round % core::BatchNacu::kFunctionCount;
        for (std::size_t k = 0; k < kChunk; ++k) {
          input[k] = fp::Fixed::from_raw(
              min_raw + static_cast<std::int64_t>((pos + k) % domain),
              config.format);
        }
        try {
          window.push_back(InFlight{
              server.submit(static_cast<Function>(fi),
                            std::vector<fp::Fixed>{input}, submit),
              fi, pos});
        } catch (...) {
          failed.fetch_add(1, std::memory_order_relaxed);
        }
        pos = (pos + kChunk) % domain;
        ++round;
        if (window.size() >= kWindow) {
          for (InFlight& f : window) {
            drain(f);
          }
          window.clear();
        }
      }
      for (InFlight& f : window) {
        drain(f);
      }
    });
  }

  // The chaos script runs on this thread; clients hammer away meanwhile.
  ModeResult result;
  Rng rng;
  std::vector<double> detection_ms;
  std::vector<double> recovery_ms;
  if (seu) {
    constexpr fault::Surface kTables[] = {fault::Surface::TableSigmoid,
                                          fault::Surface::TableTanh,
                                          fault::Surface::TableExp};
    for (std::size_t n = 0; n < kSeuFaults; ++n) {
      const std::size_t shard = rng.next() % kShards;
      const fault::Surface surface = kTables[rng.next() % 3];
      const auto word = static_cast<std::size_t>(rng.next() % domain);
      const int bit = static_cast<int>(rng.next() %
                                       static_cast<std::uint64_t>(
                                           config.format.width()));
      const std::uint64_t det_before = server.counters().detections;
      ++result.injected;
      const auto armed_at = Clock::now();
      injectors[shard].arm(fault::Fault{surface, word, bit,
                                        fault::FaultModel::TransientSeu});
      // Every client sweeps the full domain, so the upset word is read
      // within one sweep — detection is a question of when, not if.
      if (await([&] { return server.counters().detections > det_before; },
                std::chrono::milliseconds{5000})) {
        ++result.detected;
        detection_ms.push_back(
            std::chrono::duration<double, std::milli>(Clock::now() -
                                                      armed_at)
                .count());
        const auto detected_at = Clock::now();
        // Recovery = scrub rebuilt the table, quarantine lifted, circuit
        // re-closed — back to full-speed table-path serving.
        if (await([&] { return all_circuits_closed(server); },
                  std::chrono::milliseconds{5000})) {
          recovery_ms.push_back(
              std::chrono::duration<double, std::milli>(Clock::now() -
                                                        detected_at)
                  .count());
        }
      } else {
        injectors[shard].disarm_all();  // stop an undetected fault leaking
      }
    }
  } else if (kill_mode) {
    for (std::size_t n = 0; n < kKills; ++n) {
      const std::size_t victim = rng.next() % kShards;
      const std::uint64_t respawns_before = server.counters().respawns;
      ++result.kills;
      const auto killed_at = Clock::now();
      kill_shard.store(static_cast<std::int64_t>(victim),
                       std::memory_order_release);
      // The watchdog can respawn faster than we can observe the transient
      // dead state — the respawn counter is the reliable death receipt.
      (void)await(
          [&] { return server.counters().respawns > respawns_before; },
          std::chrono::milliseconds{5000});
      kill_shard.store(-1, std::memory_order_release);
      if (await([&] { return all_circuits_closed(server); },
                std::chrono::milliseconds{5000})) {
        recovery_ms.push_back(
            std::chrono::duration<double, std::milli>(Clock::now() -
                                                      killed_at)
                .count());
      }
    }
  } else {
    // Baseline: let the clients run long enough for a stable measurement.
    std::this_thread::sleep_for(std::chrono::milliseconds{500});
  }

  // Give recovery a final chance to converge before judging the circuits.
  result.circuits_closed =
      await([&] { return all_circuits_closed(server); },
            std::chrono::milliseconds{5000});
  stop.store(true, std::memory_order_release);
  for (std::thread& t : clients) {
    t.join();
  }
  const double secs =
      std::chrono::duration<double>(Clock::now() - start).count();
  server.shutdown();

  const serve::InferenceServer::Counters counters = server.counters();
  result.requests_per_s =
      static_cast<double>(done_requests.load()) / secs;
  result.completed = counters.completed;
  result.wrong = wrong.load();
  result.failed = failed.load();
  result.degraded_requests = counters.degraded_requests;
  result.scrubs = counters.scrubs;
  result.respawns = counters.respawns;
  result.coverage_pct =
      result.injected == 0
          ? 100.0
          : 100.0 * static_cast<double>(result.detected) /
                static_cast<double>(result.injected);
  const auto mean = [](const std::vector<double>& v) {
    if (v.empty()) {
      return 0.0;
    }
    double sum = 0.0;
    for (const double x : v) {
      sum += x;
    }
    return sum / static_cast<double>(v.size());
  };
  result.detection_ms_mean = mean(detection_ms);
  result.recovery_ms_mean = mean(recovery_ms);
  const obs::Histogram::Snapshot latency =
      obs::histogram("serve.request_latency_ns").snapshot();
  result.p50_ns = latency.quantile_bound(0.50);
  result.p99_ns = latency.quantile_bound(0.99);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t trials = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view{argv[i]} == "--trials" && i + 1 < argc) {
      const long parsed = std::strtol(argv[++i], nullptr, 10);
      if (parsed > 0) {
        trials = static_cast<std::size_t>(parsed);
      }
    }
  }
  obs::set_metrics_enabled(true);
  const core::NacuConfig config = core::config_for_bits(16);
  const Golden golden = build_golden(config);

  benchjson::Writer writer{"nacu-bench-chaos-v1"};
  std::printf("Chaos: self-healing serving under SEUs and dispatcher kills\n");
  std::printf("(%zu shards, %zu clients, %zu-element full-domain sweeps, "
              "%zu trial(s))\n\n",
              kShards, kClients, kChunk, trials);
  std::printf("%11s %10s %10s %10s %8s %8s %9s %9s %9s\n", "mode", "req/s",
              "p50", "p99", "wrong", "cover%", "detect", "recover",
              "degraded");
  bool gate_failed = false;
  for (const char* mode : kModes) {
    ModeResult best;
    bool have = false;
    for (std::size_t t = 0; t < trials; ++t) {
      const ModeResult r = run_mode(config, golden, mode);
      // The correctness gates apply to *every* trial, not just the best.
      if (r.wrong != 0) {
        std::fprintf(stderr, "GATE: %s served %llu wrong elements\n", mode,
                     static_cast<unsigned long long>(r.wrong));
        gate_failed = true;
      }
      if (r.coverage_pct < 99.0) {
        std::fprintf(stderr, "GATE: %s detection coverage %.1f%% < 99%%\n",
                     mode, r.coverage_pct);
        gate_failed = true;
      }
      if (!r.circuits_closed) {
        std::fprintf(stderr,
                     "GATE: %s finished with a circuit not Closed\n", mode);
        gate_failed = true;
      }
      if (!have || r.requests_per_s > best.requests_per_s) {
        best = r;
        have = true;
      }
    }
    std::printf("%11s %10.0f %8lluns %8lluns %8llu %7.1f%% %7.2fms %7.2fms "
                "%9llu\n",
                mode, best.requests_per_s,
                static_cast<unsigned long long>(best.p50_ns),
                static_cast<unsigned long long>(best.p99_ns),
                static_cast<unsigned long long>(best.wrong),
                best.coverage_pct, best.detection_ms_mean,
                best.recovery_ms_mean,
                static_cast<unsigned long long>(best.degraded_requests));
    writer.add(benchjson::Record{}
                   .add("bench", "chaos")
                   .add("mode", mode)
                   .add("shards", kShards)
                   .add("clients", kClients)
                   .add("requests_per_s", best.requests_per_s)
                   .add("p50_ns", best.p50_ns)
                   .add("p99_ns", best.p99_ns)
                   .add("completed", best.completed)
                   .add("wrong", best.wrong)
                   .add("failed_requests", best.failed)
                   .add("injected", best.injected)
                   .add("detected", best.detected)
                   .add("coverage_pct", best.coverage_pct)
                   .add("detection_ms_mean", best.detection_ms_mean)
                   .add("recovery_ms_mean", best.recovery_ms_mean)
                   .add("degraded_requests", best.degraded_requests)
                   .add("scrubs", best.scrubs)
                   .add("respawns", best.respawns)
                   .add("kills", best.kills)
                   .add("circuits_closed",
                        static_cast<std::size_t>(best.circuits_closed)));
  }
  if (writer.write("BENCH_chaos.json")) {
    std::printf("\nwrote BENCH_chaos.json\n");
  } else {
    std::fprintf(stderr, "error: could not write BENCH_chaos.json\n");
    return 1;
  }
  if (gate_failed) {
    std::fprintf(stderr, "\nchaos gates FAILED\n");
    return 1;
  }
  std::printf("chaos gates passed: zero wrong answers, coverage >= 99%%, "
              "all circuits closed\n");
  return 0;
}
