// Fig. 1 — sigmoid and hyperbolic tangent function shapes.
//
// Regenerates the series behind the paper's Fig. 1 (σ vs tanh over the input
// range) from the NACU fixed-point datapath itself, alongside the
// floating-point reference, and prints the gradient comparison that
// motivates modelling σ (not tanh) in the LUT (§II).
#include <cmath>
#include <cstdio>

#include "approx/reference.hpp"
#include "core/nacu.hpp"

int main() {
  using namespace nacu;
  const core::NacuConfig config = core::config_for_bits(16);
  const core::Nacu unit{config};

  std::printf("=== Fig. 1: sigmoid vs tanh (reference and 16-bit NACU) ===\n");
  std::printf("%8s %12s %12s %12s %12s %10s %10s\n", "x", "sigma(x)",
              "NACU sigma", "tanh(x)", "NACU tanh", "sigma'", "tanh'");
  for (double x = -8.0; x <= 8.0 + 1e-9; x += 1.0) {
    const fp::Fixed xq = fp::Fixed::from_double(x, config.format);
    std::printf("%8.2f %12.6f %12.6f %12.6f %12.6f %10.4f %10.4f\n", x,
                approx::reference_eval(approx::FunctionKind::Sigmoid, x),
                unit.sigmoid(xq).to_double(),
                approx::reference_eval(approx::FunctionKind::Tanh, x),
                unit.tanh(xq).to_double(),
                approx::reference_derivative(approx::FunctionKind::Sigmoid, x),
                approx::reference_derivative(approx::FunctionKind::Tanh, x));
  }
  std::printf(
      "\nGradient at origin: sigma' = 0.25, tanh' = 1.00 (4x steeper).\n"
      "Smaller gradient -> fewer quantisation levels for the same accuracy,\n"
      "which is why the shared LUT models sigma and derives tanh (paper "
      "Sec. II).\n");
  return 0;
}
