// End-to-end NN accuracy — the paper's motivating claim, closed on synthetic
// tasks: replacing every non-linearity with bit-accurate NACU evaluations
// (and quantising weights/activations to the NACU format) preserves
// classification accuracy.
//
// Tables: MLP accuracy float vs NACU-fixed per bit-width on two datasets,
// probability drift, and LSTM hidden-state drift per width.
#include <cstdio>

#include "nn/lstm.hpp"
#include "nn/quantized_mlp.hpp"
#include "nn/reservoir.hpp"

int main() {
  using namespace nacu;

  struct Task {
    const char* name;
    nn::Dataset data;
    nn::MlpConfig config;
  };
  std::vector<Task> tasks;
  {
    Task blobs{"gaussian-blobs (4 classes)", nn::make_blobs(120, 4), {}};
    blobs.config.layer_sizes = {2, 16, 4};
    blobs.config.activation = nn::HiddenActivation::Sigmoid;
    blobs.config.epochs = 120;
    tasks.push_back(std::move(blobs));
    Task spirals{"two-spirals", nn::make_spirals(200), {}};
    spirals.config.layer_sizes = {2, 24, 24, 2};
    spirals.config.activation = nn::HiddenActivation::Tanh;
    spirals.config.epochs = 400;
    spirals.config.learning_rate = 0.04;
    tasks.push_back(std::move(spirals));
  }

  std::printf("=== MLP inference: float reference vs NACU fixed-point ===\n");
  for (Task& task : tasks) {
    const nn::Split split = nn::train_test_split(task.data, 0.8);
    nn::Mlp mlp{task.config};
    mlp.train(split.train);
    const double float_acc = mlp.accuracy(split.test);
    std::printf("\n%s  (float test accuracy %.3f, hidden: %s)\n", task.name,
                float_acc,
                task.config.activation == nn::HiddenActivation::Sigmoid
                    ? "sigmoid"
                    : "tanh");
    std::printf("  %6s %8s %12s %12s %14s\n", "bits", "format", "NACU acc",
                "acc delta", "prob drift");
    for (const int bits : {8, 10, 12, 16, 20}) {
      const core::NacuConfig config = core::config_for_bits(bits);
      if (mlp.max_parameter_magnitude() >= config.format.max_value()) {
        std::printf("  %6d %8s %12s\n", bits,
                    config.format.to_string().c_str(), "(weights overflow)");
        continue;
      }
      const nn::QuantizedMlp q{mlp, config};
      const double acc = q.accuracy(split.test);
      std::printf("  %6d %8s %12.3f %+12.3f %14.5f\n", bits,
                  config.format.to_string().c_str(), acc, acc - float_acc,
                  q.mean_probability_drift(mlp, split.test));
    }
  }

  std::printf("\n=== LSTM cell: hidden-state drift vs float reference ===\n");
  std::printf("(5 NACU evaluations per cell element per step: 3 sigma + 2 "
              "tanh)\n");
  const nn::LstmWeights weights = nn::LstmWeights::random(4, 16);
  std::printf("  %6s %8s %18s\n", "bits", "format", "mean |h - h_ref|");
  for (const int bits : {10, 12, 14, 16, 20}) {
    const core::NacuConfig config = core::config_for_bits(bits);
    std::printf("  %6d %8s %18.6f\n", bits,
                config.format.to_string().c_str(),
                nn::lstm_state_drift(weights, config, 64));
  }
  std::printf("\n=== LSTM reservoir sequence classification "
              "(frequency task) ===\n");
  {
    const nn::LstmReservoir reservoir{1, 16};
    const nn::SequenceDataset train_sequences =
        nn::make_frequency_sequences(40, 32);
    const nn::SequenceDataset test_sequences =
        nn::make_frequency_sequences(15, 32, 3, 0.15, 91);
    const auto featurise = [&](const nn::SequenceDataset& sequences,
                               bool fixed, const core::NacuConfig& config) {
      nn::Dataset out;
      out.classes = sequences.classes;
      out.labels = sequences.labels;
      out.inputs = nn::MatrixD{sequences.size(), reservoir.feature_size()};
      for (std::size_t s = 0; s < sequences.size(); ++s) {
        const auto f =
            fixed ? reservoir.features_fixed(sequences.sequences[s], config)
                  : reservoir.features_float(sequences.sequences[s]);
        for (std::size_t i = 0; i < f.size(); ++i) {
          out.inputs(s, i) = f[i];
        }
      }
      return out;
    };
    const core::NacuConfig cfg16 = core::config_for_bits(16);
    nn::MlpConfig readout_config;
    readout_config.layer_sizes = {reservoir.feature_size(), 3};
    readout_config.epochs = 150;
    readout_config.learning_rate = 0.1;
    nn::Mlp readout{readout_config};
    readout.train(featurise(train_sequences, false, cfg16));
    const double float_acc =
        readout.accuracy(featurise(test_sequences, false, cfg16));
    std::printf("  float reservoir accuracy: %.3f\n", float_acc);
    std::printf("  %6s %8s %12s\n", "bits", "format", "NACU acc");
    for (const int bits : {12, 14, 16, 20}) {
      const core::NacuConfig config = core::config_for_bits(bits);
      std::printf("  %6d %8s %12.3f\n", bits,
                  config.format.to_string().c_str(),
                  readout.accuracy(featurise(test_sequences, true, config)));
    }
  }

  std::printf(
      "\n16-bit NACU inference matches float accuracy to within a couple of\n"
      "test samples on both tasks, and LSTM state drift shrinks with the\n"
      "datapath width — the reconfigurable unit serves CNN/MLP and LSTM\n"
      "workloads from one LUT (paper Sec. I motivation).\n");
  return 0;
}
