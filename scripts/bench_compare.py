#!/usr/bin/env python3
"""Diff two BENCH_*.json files and flag regressions.

Usage:
    bench_compare.py BASELINE.json CANDIDATE.json [--threshold 0.10]
                     [--ignore FRAGMENT ...]

Records (written by bench/bench_json.hpp) are flat maps. Two records match
when every string-valued field (op, format, backend, ...) is equal; their
numeric fields are then compared pairwise. Direction is inferred from the
metric name: throughput-like metrics (elems_per_s, trials_per_s, coverage,
accuracy) must not drop, latency-like metrics (ns_per_elem) must not rise.
A relative change past the threshold (default 10%) in the bad direction is
a regression and the exit code is 1; new/vanished records are reported but
are not failures (benches grow over time).

--ignore skips metrics whose name contains the given fragment (repeatable).
CI uses it to compare committed baselines across machines: deterministic
metrics (coverage, accuracy) hold to a tight threshold while machine-speed
metrics (elems_per_s, trials_per_s, p50_ns/p99_ns latency quantiles) are
ignored or held loosely.

--require-metric asserts the candidate is *structurally* intact even when
the metric's value is ignored: every candidate record whose baseline
counterpart carries a *positive* value for a metric containing the
fragment must itself report a positive value (a baseline of 0 marks the
metric as legitimately absent there — e.g. table_bytes on rows with no
cached table). CI combines `--ignore p50 --require-metric p50_ns` to say
"tail-latency numbers are machine-speed, but a run that stopped reporting
them (e.g. a histogram wired up wrong) is a failure, not a silent pass".

Stdlib only — no pip dependencies.
"""

import argparse
import json
import sys

# Metric-name fragments where LOWER is better; everything else numeric is
# treated as higher-is-better. Count-like match keys (elems, trials,
# threads, faults, clients) are string-ified into the match key instead.
# Careful with short fragments: "ms" is a substring of "elems", so
# millisecond metrics match on "_ms" (detection_ms_mean, recovery_ms_mean).
# The nacu-dse-v1 fragments: error/rmse (accuracy), _bits (storage),
# area_um2/power_mw (hardware cost) — all regress upward.
LOWER_IS_BETTER = ("ns_per", "latency", "seconds", "bytes", "p50", "p99",
                   "_ms", "error", "rmse", "_bits", "area_um2", "power_mw")
MATCH_NUMERIC_KEYS = ("elems", "trials", "threads", "faults", "clients",
                      "shards", "kills", "injected", "configs",
                      # nacu-dse-v1 design-point identity (two budgets can
                      # share one impl name when a search converges):
                      "budget", "entries", "samples", "servable")


def load_records(path):
    """Load one BENCH_*.json; every malformation is a one-line error."""
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except OSError as err:
        sys.exit(
            f"error: cannot read {path}: {err.strerror or err} "
            "(run the bench to generate it, e.g. ./bench_<name> --trials 1)"
        )
    except json.JSONDecodeError as err:
        sys.exit(f"error: {path} is not valid JSON: {err}")
    if not isinstance(doc, dict) or "records" not in doc:
        sys.exit(f"error: {path} is not a bench JSON (no 'records' array)")
    records = doc["records"]
    if not isinstance(records, list) or not all(
        isinstance(r, dict) for r in records
    ):
        sys.exit(f"error: {path} 'records' must be an array of objects")
    return doc.get("schema", "?"), records


def record_key(record):
    parts = []
    for key in sorted(record):
        value = record[key]
        if isinstance(value, str) or key in MATCH_NUMERIC_KEYS:
            parts.append(f"{key}={value}")
    return " ".join(parts)


def metrics(record):
    return {
        key: value
        for key, value in record.items()
        if isinstance(value, (int, float)) and key not in MATCH_NUMERIC_KEYS
    }


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline")
    parser.add_argument("candidate")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.10,
        help="relative regression threshold (default 0.10 = 10%%)",
    )
    parser.add_argument(
        "--ignore",
        action="append",
        default=[],
        metavar="FRAGMENT",
        help="skip metrics whose name contains FRAGMENT (repeatable)",
    )
    parser.add_argument(
        "--require-metric",
        action="append",
        default=[],
        metavar="FRAGMENT",
        help="fail unless every candidate record that should carry a metric "
        "whose name contains FRAGMENT reports a positive value for it "
        "(structural gate for --ignore'd machine-speed metrics; repeatable)",
    )
    args = parser.parse_args()

    base_schema, base_records = load_records(args.baseline)
    cand_schema, cand_records = load_records(args.candidate)
    if base_schema != cand_schema:
        print(
            f"warning: schema mismatch ({base_schema} vs {cand_schema}); "
            "comparing anyway"
        )

    base_by_key = {record_key(r): r for r in base_records}
    cand_by_key = {record_key(r): r for r in cand_records}

    regressions = []
    improvements = []
    compared = 0
    for key, base in sorted(base_by_key.items()):
        cand = cand_by_key.get(key)
        if cand is None:
            print(f"  [gone]  {key}")
            continue
        base_metrics = metrics(base)
        for name, base_value in sorted(base_metrics.items()):
            if any(fragment in name for fragment in args.ignore):
                continue
            cand_value = cand.get(name)
            if not isinstance(cand_value, (int, float)) or base_value == 0:
                continue
            compared += 1
            delta = (cand_value - base_value) / abs(base_value)
            lower_better = any(frag in name for frag in LOWER_IS_BETTER)
            regressed = delta > args.threshold if lower_better \
                else delta < -args.threshold
            improved = delta < -args.threshold if lower_better \
                else delta > args.threshold
            line = (
                f"{key} :: {name}: {base_value:.6g} -> {cand_value:.6g} "
                f"({delta:+.1%})"
            )
            if regressed:
                regressions.append(line)
            elif improved:
                improvements.append(line)
    for key in sorted(set(cand_by_key) - set(base_by_key)):
        print(f"  [new]   {key}")

    # Structural gates: a metric may be --ignore'd by value (machine speed)
    # yet still required to exist and be positive in every candidate record
    # whose baseline counterpart carries a positive value for it.
    structural_failures = []
    for fragment in args.require_metric:
        checked = 0
        for key, base in sorted(base_by_key.items()):
            names = [
                name
                for name, value in metrics(base).items()
                if fragment in name and value > 0
            ]
            if not names:
                continue
            cand = cand_by_key.get(key)
            if cand is None:
                continue  # already reported as [gone]
            for name in names:
                checked += 1
                value = cand.get(name)
                if not isinstance(value, (int, float)) or value <= 0:
                    structural_failures.append(
                        f"{key} :: {name} missing or non-positive "
                        f"({value!r})"
                    )
        if checked == 0:
            structural_failures.append(
                f"no matched record carries a metric containing "
                f"'{fragment}'"
            )

    if improvements:
        print(f"improvements (>{args.threshold:.0%}):")
        for line in improvements:
            print(f"  [better] {line}")
    failed = False
    if regressions:
        print(f"REGRESSIONS (>{args.threshold:.0%} in the bad direction):")
        for line in regressions:
            print(f"  [WORSE]  {line}")
        print(f"{len(regressions)} regression(s) across {compared} metrics")
        failed = True
    if structural_failures:
        print("STRUCTURAL FAILURES (--require-metric):")
        for line in structural_failures:
            print(f"  [MISSING] {line}")
        failed = True
    if failed:
        return 1
    print(f"no regressions across {compared} compared metrics")
    return 0


if __name__ == "__main__":
    sys.exit(main())
