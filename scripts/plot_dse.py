#!/usr/bin/env python3
"""Plot a nacu-dse-v1 Pareto frontier: error vs cost, one panel per function.

Usage:
    python3 scripts/plot_dse.py BENCH_dse.json [-o dse_frontier.png]
        [--x area_um2|storage_bits|table_bytes|power_mw]

Each panel scatters the frontier for one activation function with
max_abs_error (log scale) against the chosen cost axis (log scale),
coloured by family; servable NACU points get a star marker — the staircase
the autotuner's select() walks down. Requires matplotlib (not a repo
dependency): without it the script explains and exits 2 so docs/CI can
call it opportunistically.
"""

import argparse
import json
import sys

FUNCTIONS = ("sigmoid", "tanh", "exp")


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("frontier")
    parser.add_argument("-o", "--output", default="dse_frontier.png")
    parser.add_argument(
        "--x", default="area_um2",
        choices=("area_um2", "storage_bits", "table_bytes", "power_mw"),
        help="cost axis (default area_um2)")
    args = parser.parse_args()

    try:
        import matplotlib
        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        print("plot_dse.py: matplotlib is not installed; skipping plot "
              "(the frontier JSON itself is the canonical artifact)")
        return 2

    with open(args.frontier, encoding="utf-8") as f:
        document = json.load(f)
    if document.get("schema") != "nacu-dse-v1":
        print(f"error: {args.frontier} is not a nacu-dse-v1 file")
        return 1
    records = document["records"]

    families = sorted({r["family"] for r in records})
    cmap = plt.get_cmap("tab10")
    colors = {fam: cmap(i % 10) for i, fam in enumerate(families)}

    fig, axes = plt.subplots(1, len(FUNCTIONS), figsize=(15, 4.5),
                             sharey=True)
    for ax, fn in zip(axes, FUNCTIONS):
        group = [r for r in records if r["function"] == fn]
        for fam in families:
            pts = [r for r in group if r["family"] == fam]
            if not pts:
                continue
            servable = bool(pts[0]["servable"])
            ax.scatter([p[args.x] for p in pts],
                       [p["max_abs_error"] for p in pts],
                       s=80 if servable else 28,
                       marker="*" if servable else "o",
                       color=colors[fam], label=fam,
                       alpha=0.85, edgecolors="none")
        ax.set_xscale("log")
        ax.set_yscale("log")
        ax.set_title(fn)
        ax.set_xlabel(args.x)
        ax.grid(True, which="both", alpha=0.25)
    axes[0].set_ylabel("max abs error (exhaustive)")
    axes[-1].legend(fontsize=8, loc="upper right")
    fig.suptitle("NACU DSE Pareto frontier (nacu-dse-v1)")
    fig.tight_layout()
    fig.savefig(args.output, dpi=150)
    print(f"wrote {args.output} ({len(records)} frontier points)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
