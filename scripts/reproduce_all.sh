#!/usr/bin/env bash
# Reproduce every result in EXPERIMENTS.md from a clean tree.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build

echo "== tests =="
ctest --test-dir build --output-on-failure | tee test_output.txt

echo "== benches (one per paper table/figure + extensions) =="
for b in build/bench/*; do
  echo "== $b"
  "$b"
done | tee bench_output.txt

echo "== examples =="
./build/examples/quickstart
./build/examples/format_explorer 16
./build/examples/generate_rtl 16 32
./build/examples/trace_waveform nacu_trace.vcd

echo "All reproduction outputs regenerated."
