#!/usr/bin/env python3
"""Fail on broken relative links in the repository's Markdown files.

Usage:
    check_links.py [ROOT]

Walks every *.md under ROOT (default: the repository root, i.e. the parent
of this script's directory), extracts inline Markdown links and images
([text](target), ![alt](target)), and checks that every *relative* target
resolves to an existing file or directory. Absolute URLs (http/https/
mailto), pure in-page anchors (#section), and absolute paths are skipped —
this is a docs-tree integrity check, not a web crawler. Anchor fragments
on relative links (FILE.md#section) are checked for file existence only.

Exit code 1 with one line per broken link; 0 when the tree is clean.
Stdlib only — no pip dependencies.
"""

import pathlib
import re
import sys

# Inline links/images: [text](target) — target ends at the first unmatched
# ')' or whitespace (titles like (file.md "Title") are split off below).
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^()\s]+(?:\([^()]*\)[^()\s]*)*)\)")
SKIP_PREFIXES = ("http://", "https://", "mailto:", "ftp://", "#", "/")
SKIP_DIRS = {".git", "build", ".cache", "node_modules"}


def markdown_files(root):
    for path in sorted(root.rglob("*.md")):
        if not any(part in SKIP_DIRS for part in path.parts):
            yield path


def check_file(path, root):
    broken = []
    text = path.read_text(encoding="utf-8", errors="replace")
    for lineno, line in enumerate(text.splitlines(), start=1):
        for match in LINK_RE.finditer(line):
            target = match.group(1)
            if target.startswith(SKIP_PREFIXES):
                continue
            # Strip anchor fragments and angle brackets.
            target = target.split("#", 1)[0].strip("<>")
            if not target:
                continue
            resolved = (path.parent / target).resolve()
            if not resolved.exists():
                rel = path.relative_to(root)
                broken.append(f"{rel}:{lineno}: broken link -> {target}")
    return broken


def main():
    root = pathlib.Path(
        sys.argv[1] if len(sys.argv) > 1
        else pathlib.Path(__file__).resolve().parent.parent
    ).resolve()
    broken = []
    checked = 0
    for md in markdown_files(root):
        checked += 1
        broken.extend(check_file(md, root))
    for line in broken:
        print(line)
    if broken:
        print(f"{len(broken)} broken link(s) across {checked} Markdown files")
        return 1
    print(f"all relative links resolve across {checked} Markdown files")
    return 0


if __name__ == "__main__":
    sys.exit(main())
