#!/usr/bin/env python3
"""Validate a nacu-dse-v1 frontier file (structure, types, invariants).

Usage:
    python3 scripts/check_dse_schema.py BENCH_dse.json
    python3 scripts/check_dse_schema.py BENCH_dse.json \
        --min-families 4 --min-formats 3   # full-sweep coverage gate

Checks, in order:
  1. document shape — {"schema": "nacu-dse-v1", "records": [...]};
  2. per-record fields — every required key present with the right JSON
     type, error metrics finite and non-negative, counts positive;
  3. frontier invariants — no duplicate design point, no baseline point
     dominated within its function group on (max_abs_error, rmse,
     storage_bits, area_um2), no servable NACU config dominated at config
     granularity, and every servable config complete (sigmoid+tanh+exp);
  4. optional coverage floors (--min-families/--min-formats) per function,
     counting baseline families only (NACU rows ride on top).

Exit 0 when clean; exit 1 listing every violation. Stdlib only.
"""

import argparse
import json
import math
import sys

SCHEMA = "nacu-dse-v1"
STRING_FIELDS = ("function", "family", "format", "impl")
COUNT_FIELDS = ("budget", "entries", "storage_bits", "table_bytes",
                "samples", "servable")
METRIC_FIELDS = ("max_abs_error", "rmse", "mean_abs_error", "worst_x", "ge",
                 "area_um2", "power_mw", "elems_per_s")
FUNCTIONS = ("sigmoid", "tanh", "exp")


def check_record(index, record, errors):
    label = f"records[{index}]"
    if not isinstance(record, dict):
        errors.append(f"{label}: not an object")
        return False
    ok = True
    for key in STRING_FIELDS:
        if not isinstance(record.get(key), str) or not record.get(key):
            errors.append(f"{label}: '{key}' missing or not a string")
            ok = False
    for key in COUNT_FIELDS:
        value = record.get(key)
        if not isinstance(value, int) or isinstance(value, bool) or value < 0:
            errors.append(f"{label}: '{key}' missing or not a count")
            ok = False
    for key in METRIC_FIELDS:
        value = record.get(key)
        if not isinstance(value, (int, float)) or isinstance(value, bool) \
                or not math.isfinite(value):
            errors.append(f"{label}: '{key}' missing or not finite")
            ok = False
    if not ok:
        return False
    if record["function"] not in FUNCTIONS:
        errors.append(f"{label}: unknown function '{record['function']}'")
        ok = False
    if record["servable"] not in (0, 1):
        errors.append(f"{label}: 'servable' must be 0 or 1")
        ok = False
    for key in ("max_abs_error", "rmse", "mean_abs_error"):
        if record[key] < 0:
            errors.append(f"{label}: '{key}' is negative")
            ok = False
    # entries/storage_bits may be zero (table-less designs: Gomar, and the
    # CORDIC datapath counts its angle ROM in ge, not storage) — but an
    # empty error sweep is always a bug.
    if record["samples"] == 0:
        errors.append(f"{label}: 'samples' is zero")
        ok = False
    if record["area_um2"] <= 0 or record["ge"] <= 0:
        errors.append(f"{label}: non-positive hardware cost")
        ok = False
    return ok


def dominates(a, b):
    axes = ("max_abs_error", "rmse", "storage_bits", "area_um2")
    if any(a[k] > b[k] for k in axes):
        return False
    return any(a[k] < b[k] for k in axes)


def check_frontier_invariants(records, errors):
    seen = set()
    for r in records:
        key = (r["function"], r["family"], r["format"], r["impl"],
               r["budget"])
        if key in seen:
            errors.append(f"duplicate design point {key}")
        seen.add(key)

    for fn in FUNCTIONS:
        group = [r for r in records
                 if r["function"] == fn and not r["servable"]]
        for a in group:
            for b in group:
                if a is not b and dominates(a, b):
                    errors.append(
                        f"{fn}: {a['impl']}@{a['format']} dominates "
                        f"{b['impl']}@{b['format']}")

    configs = {}
    for r in records:
        if r["servable"]:
            configs.setdefault((r["format"], r["budget"]), {})[
                r["function"]] = r
    for key, rows in configs.items():
        if set(rows) != set(FUNCTIONS):
            errors.append(
                f"servable config {key} incomplete: has {sorted(rows)}")
    complete = {k: v for k, v in configs.items()
                if set(v) == set(FUNCTIONS)}
    for ka, a in complete.items():
        for kb, b in complete.items():
            if ka == kb:
                continue
            sa, sb = a["sigmoid"], b["sigmoid"]
            all_le = (sa["storage_bits"] <= sb["storage_bits"]
                      and sa["area_um2"] <= sb["area_um2"])
            any_lt = (sa["storage_bits"] < sb["storage_bits"]
                      or sa["area_um2"] < sb["area_um2"])
            for fn in FUNCTIONS:
                ea, eb = a[fn]["max_abs_error"], b[fn]["max_abs_error"]
                all_le = all_le and ea <= eb
                any_lt = any_lt or ea < eb
            if all_le and any_lt:
                errors.append(f"servable config {ka} dominates {kb}")


def check_coverage(records, min_families, min_formats, errors):
    for fn in FUNCTIONS:
        group = [r for r in records if r["function"] == fn]
        if not group:
            errors.append(f"no records for function '{fn}'")
            continue
        families = {r["family"] for r in group if not r["servable"]}
        formats = {r["format"] for r in group}
        if len(families) < min_families:
            errors.append(
                f"{fn}: {len(families)} baseline families "
                f"({sorted(families)}), need >= {min_families}")
        if len(formats) < min_formats:
            errors.append(
                f"{fn}: {len(formats)} formats ({sorted(formats)}), "
                f"need >= {min_formats}")


def main():
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0])
    parser.add_argument("frontier")
    parser.add_argument("--min-families", type=int, default=1,
                        help="per-function baseline-family floor")
    parser.add_argument("--min-formats", type=int, default=1,
                        help="per-function Q-format floor")
    args = parser.parse_args()

    try:
        with open(args.frontier, encoding="utf-8") as f:
            document = json.load(f)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error: cannot load {args.frontier}: {exc}")
        return 1

    errors = []
    if not isinstance(document, dict):
        errors.append("top level is not an object")
    elif document.get("schema") != SCHEMA:
        errors.append(
            f"schema is {document.get('schema')!r}, want '{SCHEMA}'")
    elif not isinstance(document.get("records"), list):
        errors.append("'records' missing or not an array")
    elif not document["records"]:
        errors.append("'records' is empty")
    else:
        records = document["records"]
        clean = [r for i, r in enumerate(records)
                 if check_record(i, r, errors)]
        if clean:
            check_frontier_invariants(clean, errors)
            check_coverage(clean, args.min_families, args.min_formats,
                           errors)

    if errors:
        for line in errors:
            print(f"  [BAD] {line}")
        print(f"{len(errors)} schema violation(s) in {args.frontier}")
        return 1
    count = len(document["records"])
    print(f"{args.frontier}: valid {SCHEMA} frontier, {count} records")
    return 0


if __name__ == "__main__":
    sys.exit(main())
