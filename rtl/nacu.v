// NACU — generated from the verified C++ model (Q4.11 datapath, 53-entry sigma LUT).
// Blocks follow paper Fig. 2; Fig. 3 bias units are wired,
// not subtracted. The divider is behavioural (quotient +
// DIV_STAGES delay line) — swap in a restoring array for
// synthesis; latency and values are unchanged.

module nacu_sigmoid_lut (
  input [5:0] seg,
  output reg [15:0] m1,
  output reg [15:0] q
);
  localparam ENTRIES = 53;

  // (m1, q) per PWL segment of the positive sigma half-range —
  // the same quantised table the verified C++ model uses.
  always @* begin
    case (seg)
      0: begin m1 = 16'b0000111111100001; q = 16'b0010000000000010; end
      1: begin m1 = 16'b0000111100101111; q = 16'b0010000000111011; end
      2: begin m1 = 16'b0000110111101000; q = 16'b0010000100000011; end
      3: begin m1 = 16'b0000110000111110; q = 16'b0010001010000101; end
      4: begin m1 = 16'b0000101001101010; q = 16'b0010010010111100; end
      5: begin m1 = 16'b0000100010011000; q = 16'b0010011101111001; end
      6: begin m1 = 16'b0000011011101101; q = 16'b0010101001111111; end
      7: begin m1 = 16'b0000010101111000; q = 16'b0010110110010010; end
      8: begin m1 = 16'b0000010001000000; q = 16'b0011000010000001; end
      9: begin m1 = 16'b0000001101000100; q = 16'b0011001100101110; end
      10: begin m1 = 16'b0000001001111100; q = 16'b0011010110001001; end
      11: begin m1 = 16'b0000000111100000; q = 16'b0011011110001100; end
      12: begin m1 = 16'b0000000101101001; q = 16'b0011100100111100; end
      13: begin m1 = 16'b0000000100001110; q = 16'b0011101010100000; end
      14: begin m1 = 16'b0000000011001001; q = 16'b0011101111000010; end
      15: begin m1 = 16'b0000000010010110; q = 16'b0011110010101011; end
      16: begin m1 = 16'b0000000001101111; q = 16'b0011110101100101; end
      17: begin m1 = 16'b0000000001010011; q = 16'b0011110111111000; end
      18: begin m1 = 16'b0000000000111101; q = 16'b0011111001101100; end
      19: begin m1 = 16'b0000000000101101; q = 16'b0011111011000111; end
      20: begin m1 = 16'b0000000000100010; q = 16'b0011111100001110; end
      21: begin m1 = 16'b0000000000011001; q = 16'b0011111101000101; end
      22: begin m1 = 16'b0000000000010010; q = 16'b0011111101110000; end
      23: begin m1 = 16'b0000000000001110; q = 16'b0011111110010010; end
      24: begin m1 = 16'b0000000000001010; q = 16'b0011111110101011; end
      25: begin m1 = 16'b0000000000000111; q = 16'b0011111110111111; end
      26: begin m1 = 16'b0000000000000110; q = 16'b0011111111001110; end
      27: begin m1 = 16'b0000000000000100; q = 16'b0011111111011010; end
      28: begin m1 = 16'b0000000000000011; q = 16'b0011111111100011; end
      29: begin m1 = 16'b0000000000000010; q = 16'b0011111111101010; end
      30: begin m1 = 16'b0000000000000010; q = 16'b0011111111101111; end
      31: begin m1 = 16'b0000000000000001; q = 16'b0011111111110011; end
      32: begin m1 = 16'b0000000000000001; q = 16'b0011111111110110; end
      33: begin m1 = 16'b0000000000000001; q = 16'b0011111111111001; end
      34: begin m1 = 16'b0000000000000000; q = 16'b0011111111111010; end
      35: begin m1 = 16'b0000000000000000; q = 16'b0011111111111100; end
      36: begin m1 = 16'b0000000000000000; q = 16'b0011111111111101; end
      37: begin m1 = 16'b0000000000000000; q = 16'b0011111111111110; end
      38: begin m1 = 16'b0000000000000000; q = 16'b0011111111111110; end
      39: begin m1 = 16'b0000000000000000; q = 16'b0011111111111111; end
      40: begin m1 = 16'b0000000000000000; q = 16'b0011111111111111; end
      41: begin m1 = 16'b0000000000000000; q = 16'b0011111111111111; end
      42: begin m1 = 16'b0000000000000000; q = 16'b0011111111111111; end
      43: begin m1 = 16'b0000000000000000; q = 16'b0100000000000000; end
      44: begin m1 = 16'b0000000000000000; q = 16'b0100000000000000; end
      45: begin m1 = 16'b0000000000000000; q = 16'b0100000000000000; end
      46: begin m1 = 16'b0000000000000000; q = 16'b0100000000000000; end
      47: begin m1 = 16'b0000000000000000; q = 16'b0100000000000000; end
      48: begin m1 = 16'b0000000000000000; q = 16'b0100000000000000; end
      49: begin m1 = 16'b0000000000000000; q = 16'b0100000000000000; end
      50: begin m1 = 16'b0000000000000000; q = 16'b0100000000000000; end
      51: begin m1 = 16'b0000000000000000; q = 16'b0100000000000000; end
      52: begin m1 = 16'b0000000000000000; q = 16'b0100000000000000; end
      default: begin m1 = 16'b0000000000000000; q = 16'b0100000000000000; end
    endcase
  end
endmodule

module nacu_bias_units (
  input [15:0] q,
  output [16:0] one_minus_q,
  output [16:0] two_q_minus_one,
  output [16:0] one_minus_two_q
);
  // Fig. 3a: integer bits zero, fractional field two's-complement.
  assign one_minus_q = {3'b0, (~q[13:0]) + 1'b1};

  // Fig. 3b: 2q-1 — fractional bits pass, a1 propagates into a0.
  wire [16:0] q2 = {q, 1'b0};
  assign two_q_minus_one = {2'b0, q2[15], q2[13:0]};

  // Fig. 3c: 1-2q = (-2q)+1 — fractional bits pass, every integer
  // bit takes ~a0 of -2q.
  wire [16:0] t = ~q2 + 1'b1;
  assign one_minus_two_q = {{3{~t[14]}}, t[13:0]};
endmodule

module nacu_top (
  input clk,
  input rst,
  input in_valid,
  input [1:0] in_func,
  input [15:0] in_x,
  output out_valid_a,
  output [15:0] out_a,
  output reg out_valid_e,
  output reg [15:0] out_e
);
  localparam N = 16;
  localparam FB = 11;
  localparam CW = 16;
  localparam CFB = 14;
  localparam FBQ = 13;
  localparam XMAX = 32767;
  localparam ENTRIES = 53;
  localparam QMAX = 262143;
  localparam DIV_STAGES = 4;


  // round half away from zero, then drop `sh` fractional bits
  function signed [47:0] round_shift;
    input signed [47:0] v; input integer sh;
    begin
      if (v >= 0) round_shift = (v + (48'sd1 <<< (sh-1))) >>> sh;
      else round_shift = -((-v + (48'sd1 <<< (sh-1))) >>> sh);
    end
  endfunction

  function signed [47:0] saturate_n;
    input signed [47:0] v;
    begin
      if (v > 48'sd32767) saturate_n = 48'sd32767;
      else if (v < -48'sd32768) saturate_n = -48'sd32768;
      else saturate_n = v;
    end
  endfunction

  // ---- S1: negate-for-exp, magnitude, segment select ----------
  wire signed [N-1:0] x_eff = (in_func == 2'd2) ? saturate_n(-$signed(in_x)) : $signed(in_x);
  wire neg_in = x_eff[N-1];
  wire [N-1:0] mag_in = neg_in ? saturate_n(-x_eff) : x_eff;
  wire [N-1:0] mag2_in = (in_func == 2'd1) ? ((mag_in > (XMAX>>1)) ? XMAX[N-1:0] : (mag_in << 1)) : mag_in;
  wire [31:0] seg_wide = (mag2_in * ENTRIES) / XMAX;
  wire [5:0] seg_in = (seg_wide >= ENTRIES) ? ENTRIES[5:0] - 1'b1 : seg_wide[5:0];

  reg s1_valid; reg [1:0] s1_func; reg s1_neg;
  reg [N-1:0] s1_mag; reg [5:0] s1_seg;
  always @(posedge clk) begin
    if (rst) s1_valid <= 1'b0;
    else begin
      s1_valid <= in_valid; s1_func <= in_func; s1_neg <= neg_in;
      s1_mag <= mag_in; s1_seg <= seg_in;
    end
  end

  // ---- S2: LUT read, Fig. 3 morphing, multiply ----------------
  wire [CW-1:0] lut_m, lut_q;
  nacu_sigmoid_lut u_lut (.seg(s1_seg), .m1(lut_m), .q(lut_q));
  wire [CW:0] b_1mq, b_2qm1, b_1m2q;
  nacu_bias_units u_bias (.q(lut_q), .one_minus_q(b_1mq), .two_q_minus_one(b_2qm1), .one_minus_two_q(b_1m2q));
  wire [1:0] mode = (s1_func == 2'd1) ? (s1_neg ? 2'd3 : 2'd2)
                                      : (s1_neg ? 2'd1 : 2'd0);
  wire signed [CW:0] m_ext = {1'b0, lut_m};
  wire signed [CW:0] coeff = (mode == 2'd0) ? m_ext :
                             (mode == 2'd1) ? -m_ext :
                             (mode == 2'd2) ? (m_ext <<< 2) : -(m_ext <<< 2);
  wire signed [CW:0] bias = (mode == 2'd0) ? {1'b0, lut_q} :
                            (mode == 2'd1) ? $signed(b_1mq) :
                            (mode == 2'd2) ? $signed(b_2qm1) : $signed(b_1m2q);

  reg s2_valid; reg [1:0] s2_func;
  reg signed [47:0] s2_product; reg signed [CW:0] s2_bias;
  always @(posedge clk) begin
    if (rst) s2_valid <= 1'b0;
    else begin
      s2_valid <= s1_valid; s2_func <= s1_func;
      s2_product <= $signed({1'b0, s1_mag}) * coeff;
      s2_bias <= bias;
    end
  end

  // ---- S3: add, round-half-away, saturate ---------------------
  wire signed [47:0] s3_sum = s2_product + ($signed(s2_bias) <<< FB);
  wire signed [47:0] s3_rounded = saturate_n(round_shift(s3_sum, CFB));
  reg s3_valid; reg [1:0] s3_func; reg signed [N-1:0] s3_result;
  always @(posedge clk) begin
    if (rst) s3_valid <= 1'b0;
    else begin
      s3_valid <= s2_valid; s3_func <= s2_func;
      s3_result <= s3_rounded[N-1:0];
    end
  end
  assign out_valid_a = s3_valid && (s3_func != 2'd2);
  assign out_a = s3_result;

  // ---- divider pipeline (behavioural quotient + DIV_STAGES
  //      delay; replace with a restoring array for synthesis) ----
  wire signed [47:0] den = (s3_valid && s3_func == 2'd2) ?
      (($signed(s3_result) <= 0) ? 48'sd1 : {{32{1'b0}}, s3_result}) : 48'sd1;
  wire signed [47:0] quot_full = (48'sd1 <<< (FB + FBQ)) / den;
  wire signed [47:0] quot_sat = (quot_full > QMAX) ? QMAX : quot_full;
  reg [DIV_STAGES:1] dv; reg signed [47:0] dq [DIV_STAGES:1];
  integer k;
  always @(posedge clk) begin
    if (rst) dv <= {DIV_STAGES{1'b0}};
    else begin
      dv[1] <= s3_valid && (s3_func == 2'd2); dq[1] <= quot_sat;
      for (k = 2; k <= DIV_STAGES; k = k + 1) begin
        dv[k] <= dv[k-1]; dq[k] <= dq[k-1];
      end
    end
  end

  // ---- DEC: sigma' - 1 via the Fig. 3b wiring when sigma' is in
  //      [1, 2], general decrement otherwise; round into N bits --
  wire signed [47:0] q_in = dq[DIV_STAGES];
  wire in_band = (q_in >= (48'sd1 <<< FBQ)) && (q_in <= (48'sd1 <<< (FBQ+1)));
  wire signed [47:0] dec_trick = {q_in[47:FBQ+2], 1'b0, q_in[FBQ+1], q_in[FBQ-1:0]};
  wire signed [47:0] dec_gen = q_in - (48'sd1 <<< FBQ);
  wire signed [47:0] dec_v = in_band ? dec_trick : dec_gen;
  wire signed [47:0] dec_rounded = saturate_n(round_shift(dec_v, FBQ - FB));
  always @(posedge clk) begin
    if (rst) out_valid_e <= 1'b0;
    else begin
      out_valid_e <= dv[DIV_STAGES];
      out_e <= dec_rounded[N-1:0];
    end
  end
endmodule
