// Observability quickstart: run one of each instrumented workload with the
// metrics registry enabled, then dump every counter, gauge, and latency
// histogram as JSON.
//
//   ./metrics_dump
//   NACU_TRACE=trace.json ./metrics_dump   # also writes Chrome trace spans
//
// The dump shows the layer end to end: batch-engine table builds and
// path/backend tallies, thread-pool batch accounting, softmax-engine phase
// cycles, fault-campaign detection tallies, and per-layer nn timings. Load
// the NACU_TRACE file in chrome://tracing or https://ui.perfetto.dev to see
// the same run as a timeline.
#include <cstdint>
#include <iostream>
#include <vector>

#include "core/batch_nacu.hpp"
#include "fault/campaign.hpp"
#include "hwmodel/softmax_engine.hpp"
#include "nn/dataset.hpp"
#include "nn/mlp.hpp"
#include "nn/quantized_mlp.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

int main() {
  using namespace nacu;
  obs::set_metrics_enabled(true);

  const core::NacuConfig config = core::config_for_bits(16);

  // 1. Batched activations: big enough to build the dense tables and to
  //    fan out across the thread pool.
  {
    const core::BatchNacu batch{config};
    std::vector<fp::Fixed> xs;
    xs.reserve(1 << 15);
    for (std::size_t i = 0; i < (std::size_t{1} << 15); ++i) {
      xs.push_back(fp::Fixed::from_double(
          -6.0 + 12.0 * static_cast<double>(i) / (1 << 15), config.format));
    }
    std::vector<fp::Fixed> out = xs;
    batch.evaluate(core::BatchNacu::Function::Sigmoid, xs, out);
    batch.evaluate(core::BatchNacu::Function::Tanh, xs, out);
    (void)batch.softmax(std::vector<fp::Fixed>(
        xs.begin(), xs.begin() + 16));
  }

  // 2. Cycle-accurate softmax: phase counters mirror Result fields.
  {
    hw::SoftmaxEngine engine{config};
    std::vector<std::int64_t> logits;
    for (int i = 0; i < 10; ++i) {
      logits.push_back(
          fp::Fixed::from_double(0.25 * i - 1.0, config.format).raw());
    }
    (void)engine.run(logits);
  }

  // 3. A small MLP inference pass: per-layer timings.
  {
    const nn::Dataset data = nn::make_blobs(30, 3);
    nn::MlpConfig mlp_config;
    mlp_config.layer_sizes = {2, 8, 3};
    mlp_config.epochs = 5;
    nn::Mlp mlp{mlp_config};
    mlp.train(data);
    const nn::QuantizedMlp q{mlp, config};
    (void)q.accuracy(data);
  }

  // 4. A short fault campaign: detection/recovery tallies.
  {
    fault::CampaignConfig campaign;
    campaign.trials = 200;
    campaign.seed = 1;
    const fault::CampaignRunner runner{campaign};
    (void)runner.run();
  }

  std::cout << obs::registry().to_json();
  if (obs::trace_enabled()) {
    std::cerr << "trace: " << obs::trace_event_count()
              << " spans buffered (written at exit)\n";
  }
  return 0;
}
