// MLP inference — the workload the paper's CGRA hosts run.
//
// Trains a small float MLP on the two-spirals task, quantises it onto the
// NACU datapath, and runs fixed-point inference where every hidden tanh and
// the output softmax are bit-accurate NACU evaluations. Prints both
// accuracies and a sample of per-class probabilities side by side.
//
// Usage: ./build/examples/mlp_inference
#include <cstdio>

#include "nn/quantized_mlp.hpp"

int main() {
  using namespace nacu;

  std::printf("Training a 2-24-24-2 tanh MLP on two-spirals (float)...\n");
  const nn::Dataset data = nn::make_spirals(200);
  const nn::Split split = nn::train_test_split(data, 0.8);
  nn::MlpConfig config;
  config.layer_sizes = {2, 24, 24, 2};
  config.activation = nn::HiddenActivation::Tanh;
  config.epochs = 400;
  config.learning_rate = 0.04;
  nn::Mlp mlp{config};
  mlp.train(split.train);
  std::printf("  float test accuracy: %.3f\n", mlp.accuracy(split.test));
  std::printf("  largest |weight|:    %.3f (must fit the datapath format)\n",
              mlp.max_parameter_magnitude());

  const core::NacuConfig nacu_config = core::config_for_bits(16);
  std::printf("\nQuantising onto %s; all non-linearities -> NACU...\n",
              nacu_config.format.to_string().c_str());
  const nn::QuantizedMlp quantised{mlp, nacu_config};
  std::printf("  NACU test accuracy:  %.3f\n", quantised.accuracy(split.test));
  std::printf("  mean probability drift vs float: %.5f\n",
              quantised.mean_probability_drift(mlp, split.test));

  std::printf("\nSample predictions (class-0 probability):\n");
  std::printf("%10s %10s %12s %12s\n", "x", "y", "float", "NACU");
  for (std::size_t s = 0; s < 8; ++s) {
    const std::vector<double> input = {split.test.inputs(s, 0),
                                       split.test.inputs(s, 1)};
    std::printf("%10.3f %10.3f %12.5f %12.5f\n", input[0], input[1],
                mlp.predict_proba(input)[0],
                quantised.predict_proba(input)[0]);
  }
  return 0;
}
