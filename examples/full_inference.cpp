// Full-stack inference — the complete paper story in one run.
//
// Trains a float MLP, quantises it onto the Eq. 7-selected format, maps it
// across a 4-PE NACU CGRA fabric, runs cycle-accurate inference including
// the hardware softmax engine, and reports accuracy, per-inference cycles,
// simulated latency at 267 MHz, and a measured-activity energy estimate.
// The hardware probabilities are bit-identical to the functional quantised
// model (a tested invariant).
//
// Usage: ./build/examples/full_inference
#include <cstdio>

#include "cgra/inference.hpp"
#include "hwcost/nacu_cost.hpp"
#include "hwcost/technology.hpp"
#include "nn/quantized_mlp.hpp"

int main() {
  using namespace nacu;

  std::printf("1. Training a 2-12-3 sigmoid MLP on Gaussian blobs "
              "(float)...\n");
  const nn::Dataset data = nn::make_blobs(80, 3);
  const nn::Split split = nn::train_test_split(data, 0.8);
  nn::MlpConfig mlp_config;
  mlp_config.layer_sizes = {2, 12, 3};
  mlp_config.activation = nn::HiddenActivation::Sigmoid;
  mlp_config.epochs = 80;
  nn::Mlp mlp{mlp_config};
  mlp.train(split.train);
  std::printf("   float test accuracy: %.3f\n\n", mlp.accuracy(split.test));

  const core::NacuConfig config = core::config_for_bits(16);
  std::printf("2. Quantising onto %s (Eq. 7) and mapping onto a 4-PE NACU "
              "fabric...\n\n", config.format.to_string().c_str());
  cgra::InferenceEngine engine{mlp, config, 4};
  const nn::QuantizedMlp functional{mlp, config};

  std::printf("3. Cycle-accurate inference (dense layers on PEs, softmax on "
              "the engine):\n");
  const std::vector<double> sample = {split.test.inputs(0, 0),
                                      split.test.inputs(0, 1)};
  const auto result = engine.infer(sample);
  std::printf("   sample (%.2f, %.2f) -> class %d, probs [", sample[0],
              sample[1], result.predicted_class);
  for (const double p : result.probabilities) {
    std::printf(" %.4f", p);
  }
  std::printf(" ]\n");
  const auto func_probs = functional.predict_proba(sample);
  bool identical = true;
  for (std::size_t k = 0; k < func_probs.size(); ++k) {
    identical = identical && func_probs[k] == result.probabilities[k];
  }
  std::printf("   bit-identical to the functional quantised model: %s\n\n",
              identical ? "yes" : "NO");

  std::printf("4. Cost per inference:\n");
  std::printf("   cycles: %llu dense + %llu softmax = %llu total\n",
              static_cast<unsigned long long>(result.layer_cycles),
              static_cast<unsigned long long>(result.softmax_cycles),
              static_cast<unsigned long long>(result.total_cycles()));
  std::printf("   latency at 267 MHz: %.0f ns\n",
              static_cast<double>(result.total_cycles()) *
                  cost::Tech28::kClockNs);
  const cost::Breakdown breakdown = cost::nacu_breakdown(config);
  const cost::PowerEstimate power = cost::power_from_toggles(
      breakdown, result.nacu_toggles, result.total_cycles(),
      cost::Tech28::kClockNs);
  std::printf("   measured-activity PE power: %.3f mW -> ~%.2f pJ per "
              "inference (datapath only)\n\n", power.total_mw(),
              power.total_mw() * static_cast<double>(result.total_cycles()) *
                  cost::Tech28::kClockNs);

  std::printf("5. Hardware accuracy over the test set: %.3f (functional "
              "model: %.3f)\n", engine.accuracy(split.test),
              functional.accuracy(split.test));
  return 0;
}
