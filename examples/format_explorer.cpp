// Format explorer — apply the paper's Eq. 7 method to your own constraints.
//
// Given a total bit budget (argv[1], default 16), prints the minimum
// integer bits, the resulting format, and what that buys: In_max, output
// resolution, and the measured NACU accuracy at that width.
//
// Usage: ./build/examples/format_explorer [total_bits]
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "approx/error_analysis.hpp"
#include "core/nacu_approximator.hpp"
#include "fixedpoint/format_select.hpp"

int main(int argc, char** argv) {
  using namespace nacu;
  const int bits = argc > 1 ? std::atoi(argv[1]) : 16;
  if (bits < 6 || bits > 28) {
    std::fprintf(stderr, "total_bits must be in [6, 28]\n");
    return 1;
  }

  const auto fmt = fp::best_symmetric_format(bits);
  if (!fmt) {
    std::fprintf(stderr, "no format satisfies Eq. 7 at %d bits\n", bits);
    return 1;
  }
  std::printf("Eq. 7 at N = %d bits selects %s\n", bits,
              fmt->to_string().c_str());
  std::printf("  In_max          = %.6f   (Eq. 6)\n", fp::input_max(*fmt));
  std::printf("  output LSB      = %.3e\n", fmt->resolution());
  std::printf("  sigma tail      = e^-In_max = %.3e  (< LSB, so sigma\n"
              "                    saturates cleanly to 1)\n",
              std::exp(-fp::input_max(*fmt)));

  std::printf("\nNeighbouring ib choices (why %d is minimal):\n",
              fmt->integer_bits());
  for (int ib = std::max(0, fmt->integer_bits() - 2);
       ib <= fmt->integer_bits() + 1 && ib <= bits - 1; ++ib) {
    const fp::Format candidate{ib, bits - 1 - ib};
    std::printf("  %-7s %s Eq. 7\n", candidate.to_string().c_str(),
                fp::satisfies_eq7(candidate, candidate) ? "satisfies"
                                                        : "violates ");
  }

  std::printf("\nMeasured NACU accuracy at this width (exhaustive sweep):\n");
  for (const auto kind :
       {approx::FunctionKind::Sigmoid, approx::FunctionKind::Tanh,
        approx::FunctionKind::Exp}) {
    const auto stats = approx::analyze_natural(
        core::NacuApproximator::for_bits(bits, kind));
    std::printf("  %-8s max %.3e   mean %.3e   rmse %.3e\n",
                approx::to_string(kind).c_str(), stats.max_abs,
                stats.mean_abs, stats.rmse);
  }
  return 0;
}
