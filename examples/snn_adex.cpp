// AdEx spiking neuron — the SNN side of the paper's motivation (§I).
//
// Runs one adaptive-exponential integrate-and-fire neuron with its
// exponential current computed by a 16-bit NACU, side by side with the
// double-precision reference, and prints an ASCII voltage trace with spike
// markers.
//
// Usage: ./build/examples/snn_adex
#include <cstdio>
#include <string>

#include "snn/adex.hpp"

int main() {
  using namespace nacu;
  const snn::AdexParams params;
  const core::NacuConfig config = core::config_for_bits(16);
  snn::AdexNeuronRef ref{params};
  snn::AdexNeuronFixed fixed{params, config};

  std::printf("AdEx neuron, I = 2.0, datapath %s (exp = NACU, Eq. 14)\n\n",
              config.format.to_string().c_str());
  std::printf("%6s %9s %9s  trace (v from %.1f to %.1f)\n", "t", "v ref",
              "v NACU", params.v_reset, params.v_peak);

  constexpr int kSteps = 1200;
  constexpr int kPrintEvery = 24;
  for (int t = 1; t <= kSteps; ++t) {
    const snn::AdexState r = ref.step(2.0);
    const snn::AdexState f = fixed.step(2.0);
    if (t % kPrintEvery == 0 || f.spiked || r.spiked) {
      const double span = params.v_peak - params.v_reset;
      const int column = static_cast<int>(
          40.0 * (f.v - params.v_reset) / span);
      std::string bar(static_cast<std::size_t>(
                          std::max(0, std::min(40, column))), '#');
      std::printf("%6d %9.4f %9.4f  |%-40s|%s\n", t, r.v, f.v, bar.c_str(),
                  f.spiked ? " <- NACU spike" : (r.spiked ? " <- ref spike"
                                                          : ""));
    }
  }
  std::printf("\nspikes: reference %zu, NACU %zu\n", ref.spike_count(),
              fixed.spike_count());
  std::printf(
      "The same reconfigurable unit that computes ANN activations drives\n"
      "the neuron's exponential upswing — the mixed ANN/SNN fabric the\n"
      "paper targets.\n");
  return 0;
}
