// Serving demo — the async inference API end to end.
//
// Spins up one serve::InferenceServer over a 16-bit NACU, drives it from
// concurrent client threads with a mixed workload (activation batches,
// softmax rows, full QuantizedMlp forward passes), then demonstrates the
// three contracts the layer exists for: bit-identical micro-batched
// results, reject-with-error backpressure at the high-water mark, and a
// graceful shutdown that drains every accepted request. Finishes with the
// serving metrics dump.
//
// Usage: ./build/examples/serving_demo
#include <cstdio>
#include <future>
#include <thread>
#include <vector>

#include "core/batch_nacu.hpp"
#include "nn/quantized_mlp.hpp"
#include "obs/metrics.hpp"
#include "serve/server.hpp"

int main() {
  using namespace nacu;
  using Function = core::BatchNacu::Function;

  obs::set_metrics_enabled(true);
  const core::NacuConfig config = core::config_for_bits(16);

  // A small quantised MLP so the request mix includes model passes.
  std::printf("Training a small MLP for the request mix...\n");
  const nn::Dataset data = nn::make_blobs(60, 3);
  nn::MlpConfig mlp_config;
  mlp_config.layer_sizes = {2, 12, 3};
  mlp_config.epochs = 60;
  nn::Mlp mlp{mlp_config};
  mlp.train(data);
  const nn::QuantizedMlp model{mlp, config};

  // 1. Mixed workload from concurrent clients. The dispatcher coalesces
  //    whatever is pending per wake (max_wait = 0: adaptive batching).
  serve::InferenceServer server{config};
  const core::BatchNacu direct{config};

  std::vector<fp::Fixed> xs;
  for (double v = -4.0; v <= 4.0; v += 0.25) {
    xs.push_back(fp::Fixed::from_double(v, config.format));
  }

  constexpr int kClients = 4;
  constexpr int kRequestsPerClient = 64;
  std::vector<std::thread> clients;
  std::vector<int> mismatches(kClients, 0);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int r = 0; r < kRequestsPerClient; ++r) {
        const auto f = static_cast<Function>((c + r) % 3);
        auto future = server.submit(f, xs);
        auto probs = server.submit_mlp(model, {data.inputs(0, 0),
                                               data.inputs(0, 1)});
        const std::vector<fp::Fixed> got = future.get();
        const std::vector<fp::Fixed> want = direct.evaluate(f, xs);
        for (std::size_t i = 0; i < got.size(); ++i) {
          if (got[i].raw() != want[i].raw()) {
            ++mismatches[c];
          }
        }
        (void)probs.get();
      }
    });
  }
  for (std::thread& t : clients) {
    t.join();
  }
  int total_mismatches = 0;
  for (const int m : mismatches) {
    total_mismatches += m;
  }
  const auto counters = server.counters();
  std::printf("\n%d clients x %d rounds: %llu requests, %llu dispatch "
              "groups (avg %.1f req/group)\n",
              kClients, kRequestsPerClient,
              static_cast<unsigned long long>(counters.accepted),
              static_cast<unsigned long long>(counters.dispatches),
              static_cast<double>(counters.completed) /
                  static_cast<double>(counters.dispatches));
  std::printf("bit-identical to direct BatchNacu: %s\n",
              total_mismatches == 0 ? "yes (0 mismatching raws)" : "NO");

  // 2. Backpressure: a tiny queue with flushing disabled fills to its
  //    high-water mark, then rejects with OverloadedError.
  serve::ServerOptions tight;
  tight.batcher.queue_capacity = 4;
  tight.batcher.max_batch = 1 << 20;               // never flush on size
  tight.batcher.max_wait = std::chrono::seconds{30};  // nor on age
  serve::InferenceServer small{config, tight};
  std::vector<std::future<std::vector<fp::Fixed>>> accepted;
  int rejected = 0;
  for (int i = 0; i < 6; ++i) {
    try {
      accepted.push_back(small.submit(Function::Sigmoid, xs));
    } catch (const serve::OverloadedError&) {
      ++rejected;
    }
  }
  std::printf("\nbackpressure: capacity 4 -> %zu accepted, %d rejected "
              "with OverloadedError\n", accepted.size(), rejected);

  // 3. Graceful shutdown drains the accepted four; later submits are
  //    refused with ShutdownError.
  small.shutdown();
  int drained = 0;
  for (auto& f : accepted) {
    drained += static_cast<int>(f.get().size() == xs.size());
  }
  bool shutdown_rejected = false;
  try {
    (void)small.submit(Function::Tanh, xs);
  } catch (const serve::ShutdownError&) {
    shutdown_rejected = true;
  }
  std::printf("shutdown: %d/4 accepted futures resolved by the drain; "
              "post-shutdown submit %s\n", drained,
              shutdown_rejected ? "throws ShutdownError" : "NOT refused");

  // 4. The per-stage serving metrics (serve.* entries of the registry).
  std::printf("\nobs registry dump (see the serve.* entries):\n%s\n",
              obs::Registry::instance().to_json().c_str());
  return total_mismatches == 0 && shutdown_rejected ? 0 : 1;
}
