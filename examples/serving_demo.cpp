// Serving demo — the async inference API end to end.
//
// Spins up a sharded serve::InferenceServer over a 16-bit NACU, drives it
// from concurrent client threads with a mixed workload (activation
// batches, softmax rows, full QuantizedMlp forward passes), then
// demonstrates the contracts the layer exists for: bit-identical results
// across dispatcher shards and micro-batching, admission control
// (priority shedding, deadlines, per-tenant quotas), reject-with-error
// backpressure at the high-water mark, a graceful shutdown that drains
// every accepted request, a mid-flight single-event upset that is
// detected, quarantined and scrubbed with zero client-visible errors,
// and the same serving layer reached over real loopback TCP through the
// src/net/ wire protocol. Finishes with the serving metrics dump.
//
// Usage: ./build/examples/serving_demo
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <future>
#include <thread>
#include <vector>

#include "core/batch_nacu.hpp"
#include "fault/fault_injector.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "nn/quantized_mlp.hpp"
#include "obs/metrics.hpp"
#include "serve/server.hpp"

int main() {
  using namespace nacu;
  using Function = core::BatchNacu::Function;

  obs::set_metrics_enabled(true);
  const core::NacuConfig config = core::config_for_bits(16);

  // A small quantised MLP so the request mix includes model passes.
  std::printf("Training a small MLP for the request mix...\n");
  const nn::Dataset data = nn::make_blobs(60, 3);
  nn::MlpConfig mlp_config;
  mlp_config.layer_sizes = {2, 12, 3};
  mlp_config.epochs = 60;
  nn::Mlp mlp{mlp_config};
  mlp.train(data);
  const nn::QuantizedMlp model{mlp, config};

  // 1. Mixed workload from concurrent clients across two dispatcher
  //    shards. Each submitting thread sticks to its home shard; each
  //    shard's dispatcher coalesces whatever is pending per wake
  //    (max_wait = 0: adaptive batching); idle shards steal from loaded
  //    neighbours. None of that can change the bits.
  serve::ServerOptions sharded;
  sharded.shards = 2;
  serve::InferenceServer server{config, sharded};
  const core::BatchNacu direct{config};

  std::vector<fp::Fixed> xs;
  for (double v = -4.0; v <= 4.0; v += 0.25) {
    xs.push_back(fp::Fixed::from_double(v, config.format));
  }

  constexpr int kClients = 4;
  constexpr int kRequestsPerClient = 64;
  std::vector<std::thread> clients;
  std::vector<int> mismatches(kClients, 0);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int r = 0; r < kRequestsPerClient; ++r) {
        const auto f = static_cast<Function>((c + r) % 3);
        auto future = server.submit(f, xs);
        auto probs = server.submit_mlp(model, {data.inputs(0, 0),
                                               data.inputs(0, 1)});
        const std::vector<fp::Fixed> got = future.get();
        const std::vector<fp::Fixed> want = direct.evaluate(f, xs);
        for (std::size_t i = 0; i < got.size(); ++i) {
          if (got[i].raw() != want[i].raw()) {
            ++mismatches[c];
          }
        }
        (void)probs.get();
      }
    });
  }
  for (std::thread& t : clients) {
    t.join();
  }
  int total_mismatches = 0;
  for (const int m : mismatches) {
    total_mismatches += m;
  }
  const auto counters = server.counters();
  std::printf("\n%d clients x %d rounds over 2 shards: %llu requests, "
              "%llu dispatch groups (avg %.1f req/group), %llu steals\n",
              kClients, kRequestsPerClient,
              static_cast<unsigned long long>(counters.accepted),
              static_cast<unsigned long long>(counters.dispatches),
              static_cast<double>(counters.completed) /
                  static_cast<double>(counters.dispatches),
              static_cast<unsigned long long>(counters.steals));
  std::printf("bit-identical to direct BatchNacu: %s\n",
              total_mismatches == 0 ? "yes (0 mismatching raws)" : "NO");

  // 2. Admission control. Priorities: with a 4-deep queue, best-effort
  //    may only fill the first half (default fraction 0.5), so its third
  //    submission sheds while normal traffic still admits. Deadlines: an
  //    already-expired deadline is rejected at submit. Quotas: tenant 7
  //    gets a 2-token bucket and is rejected on its third burst
  //    submission; unlisted tenants are unmetered.
  serve::ServerOptions admission_opts;
  admission_opts.batcher.queue_capacity = 4;
  admission_opts.batcher.max_batch = 1 << 20;             // never flush
  admission_opts.batcher.max_wait = std::chrono::seconds{30};
  admission_opts.admission.quotas.push_back(
      {7, serve::TenantQuota{0.0, 2.0}});
  serve::InferenceServer gated{config, admission_opts};
  std::vector<std::future<std::vector<fp::Fixed>>> gated_futures;

  serve::SubmitOptions best_effort;
  best_effort.priority = serve::Priority::BestEffort;
  int be_shed = 0;
  for (int i = 0; i < 3; ++i) {
    try {
      gated_futures.push_back(
          gated.submit(Function::Sigmoid, xs, best_effort));
    } catch (const serve::OverloadedError&) {
      ++be_shed;
    }
  }
  std::printf("\nadmission: best-effort fills 2/4 (its depth fraction), "
              "then %d shed while normal still admits\n", be_shed);

  serve::SubmitOptions expired;
  expired.deadline = std::chrono::steady_clock::now() -
                     std::chrono::milliseconds{1};
  bool deadline_rejected = false;
  try {
    (void)gated.submit(Function::Tanh, xs, expired);
  } catch (const serve::DeadlineExpiredError&) {
    deadline_rejected = true;
  }
  std::printf("admission: already-expired deadline %s\n",
              deadline_rejected ? "throws DeadlineExpiredError"
                                : "NOT rejected");

  serve::SubmitOptions metered;
  metered.tenant = 7;
  int quota_rejected = 0;
  for (int i = 0; i < 3; ++i) {
    try {
      gated_futures.push_back(
          gated.submit(Function::Exp, xs, metered));
    } catch (const serve::QuotaExceededError&) {
      ++quota_rejected;
    }
  }
  std::printf("admission: tenant 7's 2-token bucket rejects %d of 3 "
              "burst submissions with QuotaExceededError\n",
              quota_rejected);
  gated.shutdown();  // drains the admitted requests
  for (auto& f : gated_futures) {
    (void)f.get();
  }

  // 3. Backpressure: a tiny queue with flushing disabled fills to its
  //    high-water mark, then rejects with OverloadedError.
  serve::ServerOptions tight;
  tight.batcher.queue_capacity = 4;
  tight.batcher.max_batch = 1 << 20;               // never flush on size
  tight.batcher.max_wait = std::chrono::seconds{30};  // nor on age
  serve::InferenceServer small{config, tight};
  std::vector<std::future<std::vector<fp::Fixed>>> accepted;
  int rejected = 0;
  for (int i = 0; i < 6; ++i) {
    try {
      accepted.push_back(small.submit(Function::Sigmoid, xs));
    } catch (const serve::OverloadedError&) {
      ++rejected;
    }
  }
  std::printf("\nbackpressure: capacity 4 -> %zu accepted, %d rejected "
              "with OverloadedError\n", accepted.size(), rejected);

  // 4. Graceful shutdown drains the accepted four; later submits are
  //    refused with ShutdownError.
  small.shutdown();
  int drained = 0;
  for (auto& f : accepted) {
    drained += static_cast<int>(f.get().size() == xs.size());
  }
  bool shutdown_rejected = false;
  try {
    (void)small.submit(Function::Tanh, xs);
  } catch (const serve::ShutdownError&) {
    shutdown_rejected = true;
  }
  std::printf("shutdown: %d/4 accepted futures resolved by the drain; "
              "post-shutdown submit %s\n", drained,
              shutdown_rejected ? "throws ShutdownError" : "NOT refused");

  // 5. Self-healing: a single-event upset flips one bit of a dense table
  //    word mid-flight. Verify-before-release catches the corrupt word on
  //    the very request that reads it, the client still receives correct
  //    bits (scalar-path recompute), the function quarantines, and the
  //    supervisor scrubs the table and lifts the quarantine — zero
  //    client-visible errors end to end. (poke_supervisor() drives the
  //    recovery deterministically here; in production the watchdog thread
  //    does it within its 500 us interval.)
  fault::FaultInjector seu;
  serve::ServerOptions healing;
  healing.shards = 1;
  healing.resilience.supervise = false;  // poke by hand for a stable demo
  healing.resilience.shard_fault_ports = {&seu};
  serve::InferenceServer resilient{config, healing};

  const std::int64_t hit_raw = xs[xs.size() / 2].raw();
  const std::vector<fp::Fixed> healing_want =
      direct.evaluate(Function::Sigmoid, xs);
  seu.arm(fault::Fault{fault::Surface::TableSigmoid,
                       static_cast<std::size_t>(hit_raw -
                                                config.format.min_raw()),
                       5, fault::FaultModel::TransientSeu});
  const std::vector<fp::Fixed> during = resilient.submit(
      Function::Sigmoid, xs).get();
  int seu_mismatches = 0;
  for (std::size_t i = 0; i < during.size(); ++i) {
    seu_mismatches += static_cast<int>(during[i].raw() !=
                                       healing_want[i].raw());
  }
  const serve::ShardHealthSnapshot hit = resilient.shard_health(0);
  std::printf("\nself-healing: SEU armed on the σ table word for raw %lld; "
              "served result had %d wrong elements (detections=%llu, "
              "quarantined mask=0x%x)\n",
              static_cast<long long>(hit_raw), seu_mismatches,
              static_cast<unsigned long long>(hit.detections),
              hit.quarantined);
  resilient.poke_supervisor();  // scrub-rebuild + re-verify + close circuit
  const serve::ShardHealthSnapshot healed = resilient.shard_health(0);
  const std::vector<fp::Fixed> after = resilient.submit(
      Function::Sigmoid, xs).get();
  int after_mismatches = 0;
  for (std::size_t i = 0; i < after.size(); ++i) {
    after_mismatches += static_cast<int>(after[i].raw() !=
                                         healing_want[i].raw());
  }
  const bool healed_ok = seu_mismatches == 0 && after_mismatches == 0 &&
                         hit.detections >= 1 && hit.quarantined != 0 &&
                         healed.quarantined == 0 && healed.scrubs == 1 &&
                         healed.state == serve::CircuitState::Closed;
  std::printf("self-healing: scrubbed (%llu scrub), quarantine lifted, "
              "circuit %s, post-recovery result %s\n",
              static_cast<unsigned long long>(healed.scrubs),
              serve::circuit_state_name(healed.state),
              after_mismatches == 0 ? "bit-identical" : "WRONG");
  resilient.shutdown();

  // 6. The same layer over the wire: a net::NetServer wraps an
  //    InferenceServer behind the length-prefixed TCP protocol
  //    (src/net/wire.hpp) on an ephemeral loopback port; a net::Client
  //    pipelines activation, softmax and hosted-MLP requests over one
  //    connection and responses stream back in submission order —
  //    bit-identical to direct evaluation, because the wire carries raw
  //    fixed-point words untouched. Shutdown drains the connection: every
  //    accepted request is answered before the socket closes.
  serve::ServerOptions wire_opts;
  wire_opts.shards = 2;
  serve::InferenceServer wire_inference{config, wire_opts};
  net::NetServerOptions net_opts;
  net_opts.mlp = &model;  // host the MLP so kSubmitMlp frames resolve
  net::NetServer net_server{wire_inference, net_opts};
  int wire_mismatches = -1;
  {
    net::Client client{net_server.port()};
    if (client.valid()) {
      wire_mismatches = 0;
      constexpr int kPipelined = 9;
      for (int r = 0; r < kPipelined; ++r) {
        (void)client.send_submit(static_cast<Function>(r % 3), xs);
      }
      const std::uint64_t mlp_id =
          client.send_mlp(std::vector<double>{data.inputs(0, 0),
                                              data.inputs(0, 1)});
      for (int r = 0; r < kPipelined; ++r) {
        const auto response = client.read_response();
        if (!response.has_value() || !response->ok()) {
          ++wire_mismatches;
          continue;
        }
        const std::vector<fp::Fixed> want =
            direct.evaluate(static_cast<Function>(r % 3), xs);
        for (std::size_t i = 0; i < want.size(); ++i) {
          wire_mismatches += static_cast<int>(
              response->values[i].raw() != want[i].raw());
        }
      }
      const auto mlp_response = client.read_response();
      wire_mismatches += static_cast<int>(
          !mlp_response.has_value() || !mlp_response->ok() ||
          mlp_response->id != mlp_id || mlp_response->doubles.size() != 3);
      client.close_send();            // half-close: done submitting
      while (client.read_response().has_value()) {
      }                               // drain to EOF
    }
  }
  net_server.shutdown();
  const net::NetServer::Stats wire_stats = net_server.stats();
  std::printf("\nover TCP (port was %u): %llu frames in, %llu requests, "
              "%llu responses written, result %s\n",
              static_cast<unsigned>(net_server.port()),
              static_cast<unsigned long long>(wire_stats.frames_read),
              static_cast<unsigned long long>(wire_stats.requests_submitted),
              static_cast<unsigned long long>(wire_stats.responses_written),
              wire_mismatches == 0 ? "bit-identical" : "WRONG");

  // 7. The per-stage serving metrics (serve.* entries of the registry).
  std::printf("\nobs registry dump (see the serve.* entries):\n%s\n",
              obs::Registry::instance().to_json().c_str());
  const bool admission_ok =
      be_shed == 1 && deadline_rejected && quota_rejected == 1;
  return total_mismatches == 0 && shutdown_rejected && admission_ok &&
                 healed_ok && wire_mismatches == 0
             ? 0
             : 1;
}
