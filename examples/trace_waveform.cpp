// Waveform tracer — dump a NACU pipeline run as a VCD file for GTKWave.
//
// Streams a short mixed σ/tanh/exp program through the cycle-accurate model
// and records the architectural ports each clock. Open the result with any
// VCD viewer to see the 3/3/8-cycle latencies as waveforms.
//
// Usage: ./build/examples/trace_waveform [out.vcd]
#include <cstdio>
#include <fstream>

#include "hwmodel/nacu_rtl.hpp"
#include "hwmodel/vcd.hpp"

int main(int argc, char** argv) {
  using namespace nacu;
  const char* path = argc > 1 ? argv[1] : "nacu_trace.vcd";
  std::ofstream out{path};
  if (!out) {
    std::fprintf(stderr, "cannot open %s\n", path);
    return 1;
  }

  const core::NacuConfig config = core::config_for_bits(16);
  hw::NacuRtl rtl{config};
  hw::VcdWriter vcd{out, 3.75};
  const int s_valid = vcd.add_signal("in_valid", 1);
  const int s_func = vcd.add_signal("in_func", 2);
  const int s_x = vcd.add_signal("in_x", 16);
  const int s_va = vcd.add_signal("out_valid_a", 1);
  const int s_a = vcd.add_signal("out_a", 16);
  const int s_ve = vcd.add_signal("out_valid_e", 1);
  const int s_e = vcd.add_signal("out_e", 16);

  struct Op {
    hw::Func func;
    double x;
  };
  const Op program[] = {
      {hw::Func::Sigmoid, 0.5},  {hw::Func::Exp, -1.0},
      {hw::Func::Tanh, -0.5},    {hw::Func::Sigmoid, 2.0},
      {hw::Func::Exp, -3.0},     {hw::Func::Tanh, 1.5},
      {hw::Func::Sigmoid, -4.0}, {hw::Func::Exp, -0.25},
  };

  constexpr int kCycles = 20;
  for (int cycle = 0; cycle < kCycles; ++cycle) {
    const bool drive = cycle < static_cast<int>(std::size(program));
    if (drive) {
      const Op& op = program[cycle];
      const fp::Fixed x = fp::Fixed::from_double(op.x, config.format);
      rtl.issue(op.func, x, static_cast<std::uint64_t>(cycle));
      vcd.set(s_valid, 1);
      vcd.set(s_func, static_cast<std::uint64_t>(op.func));
      vcd.set(s_x, static_cast<std::uint64_t>(x.raw()) & 0xFFFF);
    } else {
      vcd.set(s_valid, 0);
      vcd.set(s_func, 0);
      vcd.set(s_x, 0);
    }
    rtl.tick();
    std::uint64_t va = 0, a = 0, ve = 0, e = 0;
    for (const auto& retired : rtl.outputs()) {
      if (retired.func == hw::Func::Exp) {
        ve = 1;
        e = static_cast<std::uint64_t>(retired.value_raw) & 0xFFFF;
      } else {
        va = 1;
        a = static_cast<std::uint64_t>(retired.value_raw) & 0xFFFF;
      }
    }
    vcd.set(s_va, va);
    vcd.set(s_a, a);
    vcd.set(s_ve, ve);
    vcd.set(s_e, e);
    vcd.step();
  }
  std::printf("wrote %s (%llu cycles at 3.75 ns)\n", path,
              static_cast<unsigned long long>(vcd.steps()));
  std::printf("open with: gtkwave %s\n", path);
  return 0;
}
