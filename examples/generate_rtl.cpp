// RTL generator — emit the NACU Verilog artifact (paper §V footnote: "The
// RTL HDL design of NACU, test-bench, reference model ... on a publicly
// available repository").
//
// Writes rtl/nacu.v (design) and rtl/nacu_tb.v (self-checking bench with
// golden vectors from the verified C++ model). Run any Verilog simulator:
//
//   iverilog -o nacu_sim rtl/nacu.v rtl/nacu_tb.v && ./nacu_sim
//
// Usage: ./build/examples/generate_rtl [total_bits] [vectors]
#include <cstdio>
#include <cstdlib>

#include "rtlgen/nacu_verilog.hpp"

int main(int argc, char** argv) {
  using namespace nacu;
  const int bits = argc > 1 ? std::atoi(argv[1]) : 16;
  const int vectors = argc > 2 ? std::atoi(argv[2]) : 32;
  if (bits < 8 || bits > 24 || vectors < 1) {
    std::fprintf(stderr, "usage: generate_rtl [bits 8..24] [vectors >= 1]\n");
    return 1;
  }
  const core::NacuConfig config = core::config_for_bits(bits);
  const rtlgen::VerilogBundle bundle = rtlgen::emit_nacu_verilog(
      config, static_cast<std::size_t>(vectors));
  rtlgen::write_bundle(bundle, "rtl");
  std::printf("wrote rtl/nacu.v     (%zu bytes) — %s datapath, %zu-entry "
              "sigma LUT\n", bundle.design.size(),
              config.format.to_string().c_str(), config.lut_entries);
  std::printf("wrote rtl/nacu_tb.v  (%zu bytes) — %zu golden vectors from "
              "the C++ model\n", bundle.testbench.size(),
              bundle.vector_count);
  std::printf("\nsimulate with:  iverilog -o nacu_sim rtl/nacu.v "
              "rtl/nacu_tb.v && ./nacu_sim\n");
  return 0;
}
