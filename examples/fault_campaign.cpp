// Fault-injection campaign quickstart: rain single-bit upsets on the NACU
// state surfaces and watch the invariant detectors and recovery policies
// deal with them.
//
//   ./fault_campaign [trials] [seed] [--metrics]
//
// Runs [trials] randomized single-bit injections (default 10000) over the
// σ-LUT coefficients, the S1–S3 pipeline registers and the dense activation
// tables of the paper's Q4.11 configuration, then prints the
// masked / detected / silent-corruption breakdown per surface and which
// invariant caught what. Deterministic for a given seed regardless of how
// many threads the campaign fans out on.
//
// With --metrics the observability registry is enabled for the run and its
// JSON dump (campaign tallies, thread-pool and batch-engine counters) is
// printed at the end.
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <vector>

#include "fault/campaign.hpp"
#include "obs/metrics.hpp"

int main(int argc, char** argv) {
  bool metrics = false;
  std::vector<char*> args;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--metrics") == 0) {
      metrics = true;
    } else {
      args.push_back(argv[i]);
    }
  }
  if (metrics) {
    nacu::obs::set_metrics_enabled(true);
  }
  nacu::fault::CampaignConfig config;
  config.trials =
      !args.empty() ? std::strtoull(args[0], nullptr, 10) : 10000;
  config.seed = args.size() > 1 ? std::strtoull(args[1], nullptr, 10) : 1;

  const nacu::fault::CampaignRunner runner{config};
  std::cout << "datapath Q" << config.unit.format.integer_bits() << "."
            << config.unit.format.fractional_bits() << ", "
            << config.unit.lut_entries << "-entry sigma-LUT, seed "
            << config.seed << "\n\n";

  const nacu::fault::CampaignReport report = runner.run();
  std::cout << report.summary() << "\n";
  std::cout << "report fingerprint: 0x" << std::hex << report.fingerprint()
            << std::dec << "\n";

  // A demonstration single trial, narrated.
  const nacu::fault::TrialResult t = runner.run_trial(0);
  std::cout << "\ntrial 0: " << nacu::fault::fault_model_name(t.fault.model)
            << " on " << nacu::fault::surface_name(t.fault.surface)
            << " word " << t.fault.word << " bit " << t.fault.bit << " -> "
            << nacu::fault::outcome_name(t.outcome)
            << " (detectors: " << t.detection.to_string() << ")\n";

  if (metrics) {
    std::cout << "\n--- metrics ---\n" << nacu::obs::registry().to_json();
  }
  return 0;
}
