// Fault-injection campaign quickstart: rain single-bit upsets on the NACU
// state surfaces and watch the invariant detectors and recovery policies
// deal with them.
//
//   ./fault_campaign [trials] [seed]
//
// Runs [trials] randomized single-bit injections (default 10000) over the
// σ-LUT coefficients, the S1–S3 pipeline registers and the dense activation
// tables of the paper's Q4.11 configuration, then prints the
// masked / detected / silent-corruption breakdown per surface and which
// invariant caught what. Deterministic for a given seed regardless of how
// many threads the campaign fans out on.
#include <cstdint>
#include <cstdlib>
#include <iostream>

#include "fault/campaign.hpp"

int main(int argc, char** argv) {
  nacu::fault::CampaignConfig config;
  config.trials = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 10000;
  config.seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 1;

  const nacu::fault::CampaignRunner runner{config};
  std::cout << "datapath Q" << config.unit.format.integer_bits() << "."
            << config.unit.format.fractional_bits() << ", "
            << config.unit.lut_entries << "-entry sigma-LUT, seed "
            << config.seed << "\n\n";

  const nacu::fault::CampaignReport report = runner.run();
  std::cout << report.summary() << "\n";
  std::cout << "report fingerprint: 0x" << std::hex << report.fingerprint()
            << std::dec << "\n";

  // A demonstration single trial, narrated.
  const nacu::fault::TrialResult t = runner.run_trial(0);
  std::cout << "\ntrial 0: " << nacu::fault::fault_model_name(t.fault.model)
            << " on " << nacu::fault::surface_name(t.fault.surface)
            << " word " << t.fault.word << " bit " << t.fault.bit << " -> "
            << nacu::fault::outcome_name(t.outcome)
            << " (detectors: " << t.detection.to_string() << ")\n";
  return 0;
}
