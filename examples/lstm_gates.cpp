// LSTM gates — why the paper wants a *reconfigurable* non-linear unit.
//
// One LSTM cell step needs sigma three times (input/forget/output gates)
// and tanh twice (candidate, output) — per element, per timestep. This
// example runs the same random-weight cell in double precision and with
// every non-linearity computed by a 16-bit NACU, printing the hidden-state
// trajectory of one unit and the cumulative drift.
//
// Usage: ./build/examples/lstm_gates
#include <cstdio>
#include <vector>

#include "nn/lstm.hpp"
#include "nn/rng.hpp"

int main() {
  using namespace nacu;

  constexpr std::size_t kInput = 4;
  constexpr std::size_t kHidden = 8;
  constexpr int kSteps = 24;

  const nn::LstmWeights weights = nn::LstmWeights::random(kInput, kHidden);
  const core::NacuConfig config = core::config_for_bits(16);
  nn::LstmFixed fixed{weights, config};

  nn::LstmStateF ref;
  ref.h.assign(kHidden, 0.0);
  ref.c.assign(kHidden, 0.0);
  nn::LstmFixed::State state = fixed.initial_state();

  std::printf("LSTM cell, %zu inputs, %zu hidden units, datapath %s\n",
              kInput, kHidden, config.format.to_string().c_str());
  std::printf("(per step: %zu sigma + %zu tanh NACU evaluations)\n\n",
              3 * kHidden, 2 * kHidden);
  std::printf("%6s %14s %14s %12s\n", "step", "h[0] float", "h[0] NACU",
              "mean drift");

  nn::Rng rng{99};
  for (int t = 1; t <= kSteps; ++t) {
    std::vector<double> x(kInput);
    for (double& v : x) {
      v = rng.uniform(-1.0, 1.0);
    }
    ref = nn::lstm_step_ref(weights, ref, x);
    state = fixed.step(state, x);
    double drift = 0.0;
    for (std::size_t i = 0; i < kHidden; ++i) {
      drift += std::abs(state.h[i].to_double() - ref.h[i]);
    }
    drift /= kHidden;
    std::printf("%6d %14.6f %14.6f %12.6f\n", t, ref.h[0],
                state.h[0].to_double(), drift);
  }
  std::printf(
      "\nThe fixed-point trajectory tracks the float one to a few\n"
      "milli-units over %d recurrent steps — the NACU approximation is\n"
      "well inside an LSTM's own robustness margin.\n", kSteps);
  return 0;
}
