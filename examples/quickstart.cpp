// Quickstart — the NACU public API in one page.
//
// Builds a 16-bit NACU with the paper's method (Eq. 7 picks Q4.11, the σ
// LUT holds 53 PWL entries) and computes all four functions plus a MAC,
// printing each against the floating-point reference.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart
#include <cmath>
#include <cstdio>
#include <vector>

#include "core/nacu.hpp"

int main() {
  using namespace nacu;

  // 1. Pick the fixed-point format with the paper's formal method (Eq. 7).
  const core::NacuConfig config = core::config_for_bits(16);
  std::printf("16-bit NACU: datapath %s, coefficients %s, sigma LUT %zu "
              "entries\n\n",
              config.format.to_string().c_str(),
              config.coeff_format.to_string().c_str(), config.lut_entries);

  // 2. Instantiate the unit. One LUT, one multiply-add, one divider —
  //    reconfigured per call.
  const core::Nacu unit{config};

  // 3. Scalar non-linearities. Inputs/outputs are bit-accurate fp::Fixed.
  std::printf("%8s %22s %22s\n", "x", "sigmoid (NACU / ref)",
              "tanh (NACU / ref)");
  for (const double x : {-4.0, -1.0, -0.25, 0.0, 0.5, 2.0, 6.0}) {
    const fp::Fixed xq = fp::Fixed::from_double(x, config.format);
    std::printf("%8.2f    %9.6f / %9.6f   %9.6f / %9.6f\n", x,
                unit.sigmoid(xq).to_double(), 1.0 / (1.0 + std::exp(-x)),
                unit.tanh(xq).to_double(), std::tanh(x));
  }

  // 4. Exponential on the softmax-normalised domain (x <= 0, Eq. 14).
  std::printf("\n%8s %22s\n", "x", "exp (NACU / ref)");
  for (const double x : {-8.0, -2.0, -0.5, 0.0}) {
    const fp::Fixed xq = fp::Fixed::from_double(x, config.format);
    std::printf("%8.2f    %9.6f / %9.6f\n", x, unit.exp(xq).to_double(),
                std::exp(x));
  }

  // 5. Softmax over a logit vector (max-normalised internally, Eq. 13).
  std::vector<fp::Fixed> logits;
  for (const double v : {1.0, 2.0, 0.5, 3.0}) {
    logits.push_back(fp::Fixed::from_double(v, config.format));
  }
  std::printf("\nsoftmax([1, 2, 0.5, 3]) = [");
  for (const fp::Fixed& p : unit.softmax(logits)) {
    std::printf(" %.4f", p.to_double());
  }
  std::printf(" ]\n");

  // 6. The same multiply-add doubles as a MAC for convolution sums.
  fp::Fixed acc = fp::Fixed::zero(fp::Format{10, 11});
  acc = unit.mac(acc, fp::Fixed::from_double(1.5, config.format),
                 fp::Fixed::from_double(2.0, config.format));
  acc = unit.mac(acc, fp::Fixed::from_double(-0.5, config.format),
                 fp::Fixed::from_double(3.0, config.format));
  std::printf("mac: 1.5*2.0 + (-0.5)*3.0 = %.4f\n", acc.to_double());
  return 0;
}
