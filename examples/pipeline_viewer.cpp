// Pipeline viewer — watch operations move through the cycle-accurate NACU.
//
// Issues a short mixed stream of sigma / tanh / exp operations into the RTL
// model and prints, cycle by cycle, what was issued and what retired —
// making the 3/3/8-cycle latencies and the shared S1–S3 stages visible.
//
// Usage: ./build/examples/pipeline_viewer
#include <cstdio>
#include <string>

#include "hwmodel/nacu_rtl.hpp"
#include "hwmodel/sim.hpp"

int main() {
  using namespace nacu;
  const core::NacuConfig config = core::config_for_bits(16);
  hw::NacuRtl rtl{config};
  hw::Simulator sim;
  sim.add(rtl);

  struct Op {
    hw::Func func;
    double x;
  };
  const Op program[] = {
      {hw::Func::Sigmoid, 1.0}, {hw::Func::Exp, -0.5},
      {hw::Func::Tanh, -0.75},  {hw::Func::Sigmoid, -2.0},
      {hw::Func::Exp, -2.0},    {hw::Func::Tanh, 0.25},
  };
  const auto func_name = [](hw::Func f) {
    return f == hw::Func::Sigmoid ? "sigmoid"
           : f == hw::Func::Tanh  ? "tanh   "
                                  : "exp    ";
  };

  std::printf("cycle | issued                | retired\n");
  std::printf("------+----------------------+---------------------------\n");
  constexpr int kCycles = 16;
  for (int cycle = 0; cycle < kCycles; ++cycle) {
    std::string issued = "-";
    if (cycle < static_cast<int>(std::size(program))) {
      const Op& op = program[cycle];
      rtl.issue(op.func, fp::Fixed::from_double(op.x, config.format),
                static_cast<std::uint64_t>(cycle));
      char buf[40];
      std::snprintf(buf, sizeof buf, "#%d %s(%5.2f)", cycle,
                    func_name(op.func), op.x);
      issued = buf;
    }
    sim.step();
    std::string retired;
    for (const auto& out : rtl.outputs()) {
      char buf[48];
      std::snprintf(buf, sizeof buf, "#%llu %s= %8.5f  ",
                    static_cast<unsigned long long>(out.tag),
                    func_name(out.func),
                    fp::Fixed::from_raw(out.value_raw, config.format)
                        .to_double());
      retired += buf;
    }
    if (retired.empty()) retired = "-";
    std::printf("%5llu | %-20s | %s\n",
                static_cast<unsigned long long>(sim.cycle()), issued.c_str(),
                retired.c_str());
  }
  std::printf(
      "\nsigma/tanh retire 3 cycles after issue; exp retires 8 cycles after\n"
      "(3 shared PWL stages + 4 divider stages + decrementor), matching\n"
      "Table I. With back-to-back issues every function sustains one\n"
      "result per cycle.\n");
  return 0;
}
