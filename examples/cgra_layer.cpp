// CGRA layer mapping — run one dense layer across a row of NACU PEs.
//
// Configures a 4-PE fabric for a 32-in x 20-out sigmoid layer, runs it
// cycle-accurately, verifies the outputs are raw-identical to a sequential
// NACU evaluation, and prints the execution statistics.
//
// Usage: ./build/examples/cgra_layer
#include <cstdio>

#include "cgra/fabric.hpp"
#include "nn/rng.hpp"

int main() {
  using namespace nacu;
  const core::NacuConfig config = core::config_for_bits(16);

  nn::Rng rng{3};
  constexpr std::size_t kIn = 32;
  constexpr std::size_t kOut = 20;
  std::vector<std::vector<double>> weights(kOut, std::vector<double>(kIn));
  std::vector<double> biases(kOut);
  for (auto& row : weights) {
    for (double& v : row) v = rng.uniform(-0.5, 0.5);
  }
  for (double& v : biases) v = rng.uniform(-0.5, 0.5);
  const cgra::DenseLayer layer =
      cgra::DenseLayer::quantise(weights, biases, 0 /* sigmoid */,
                                 config.format);

  std::vector<std::int64_t> inputs;
  for (std::size_t i = 0; i < kIn; ++i) {
    inputs.push_back(
        fp::Fixed::from_double(rng.uniform(-1.0, 1.0), config.format).raw());
  }

  cgra::Fabric fabric{config, 4};
  fabric.configure(layer);
  const auto outputs = fabric.run(inputs);
  const auto reference = cgra::dense_layer_reference(layer, inputs, config);

  std::printf("32-in x 20-out sigmoid layer on a 4-PE NACU fabric\n\n");
  std::printf("%8s %12s %12s %6s\n", "neuron", "fabric", "reference", "ok");
  for (std::size_t n = 0; n < 8; ++n) {
    std::printf("%8zu %12.6f %12.6f %6s\n", n,
                fp::Fixed::from_raw(outputs[n], config.format).to_double(),
                fp::Fixed::from_raw(reference[n], config.format).to_double(),
                outputs[n] == reference[n] ? "yes" : "NO");
  }
  std::size_t exact = 0;
  for (std::size_t n = 0; n < outputs.size(); ++n) {
    exact += outputs[n] == reference[n];
  }
  const cgra::FabricStats& stats = fabric.stats();
  std::printf("  ... %zu/%zu neurons raw-identical\n\n", exact,
              outputs.size());
  std::printf("cycles:      %llu (%.0f ns at 267 MHz)\n",
              static_cast<unsigned long long>(stats.cycles),
              stats.simulated_ns);
  std::printf("PEs:         %zu, mean utilisation %.1f%%\n", stats.pe_count,
              100.0 * stats.utilisation);
  std::printf("per neuron:  LoadAcc + %zu MACs + Act (3-cycle sigmoid "
              "pipeline, overlapped)\n", kIn);
  return 0;
}
