// Softmax classifier head — Eq. 13's numerical-stability story, live.
//
// Feeds a batch of logit vectors through the NACU softmax and shows, for a
// deliberately hot pair of logits, what goes wrong WITHOUT max
// normalisation (both exponentials saturate to the format maximum and the
// classes collapse together) and how the normalised path keeps them apart.
//
// Usage: ./build/examples/softmax_classifier
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "core/nacu.hpp"

int main() {
  using namespace nacu;
  const core::NacuConfig config = core::config_for_bits(16);
  const core::Nacu unit{config};

  // A batch of 4-class logit vectors (e.g. the last dense layer's output).
  const std::vector<std::vector<double>> batch = {
      {2.0, 0.5, -1.0, 0.0},
      {0.1, 0.2, 0.15, 0.05},
      {-3.0, 4.0, 3.9, -2.0},
      {12.0, 10.0, -5.0, 0.0},  // hot logits: raw e^x would saturate
  };

  std::printf("NACU softmax (%s datapath):\n", config.format.to_string().c_str());
  for (const auto& logits : batch) {
    std::vector<fp::Fixed> xs;
    for (const double v : logits) {
      xs.push_back(fp::Fixed::from_double(v, config.format));
    }
    const auto probs = unit.softmax(xs);
    std::printf("  logits [");
    for (const double v : logits) std::printf(" %6.2f", v);
    std::printf(" ] -> probs [");
    double reference_denominator = 0.0;
    const double zmax = *std::max_element(logits.begin(), logits.end());
    for (const double v : logits) reference_denominator += std::exp(v - zmax);
    for (std::size_t i = 0; i < probs.size(); ++i) {
      std::printf(" %.4f", probs[i].to_double());
    }
    std::printf(" ]  (ref [");
    for (const double v : logits) {
      std::printf(" %.4f", std::exp(v - zmax) / reference_denominator);
    }
    std::printf(" ])\n");
  }

  // The instability Eq. 13 avoids: raw exponentials of hot logits saturate
  // to the same representable maximum, making the classes indistinguishable.
  std::printf("\nWhy normalisation matters (paper Sec. IV.B):\n");
  const fp::Fixed a = fp::Fixed::from_double(12.0, config.format);
  const fp::Fixed b = fp::Fixed::from_double(10.0, config.format);
  std::printf("  raw e^12 -> %.4f, raw e^10 -> %.4f  "
              "(both saturated at the %s max: classes collapse)\n",
              unit.exp(a).to_double(), unit.exp(b).to_double(),
              config.format.to_string().c_str());
  const auto pair = unit.softmax(std::vector<fp::Fixed>{a, b});
  std::printf("  normalised softmax(12, 10) -> [ %.4f %.4f ]  "
              "(ref [ %.4f %.4f ])\n",
              pair[0].to_double(), pair[1].to_double(),
              std::exp(2.0) / (std::exp(2.0) + 1.0),
              1.0 / (std::exp(2.0) + 1.0));
  return 0;
}
